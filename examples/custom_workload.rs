//! Writing a *new* workload against the Mosaic public API: a parallel
//! histogram built from the low-level `spawn`/`wait` primitives plus
//! an `spm_malloc`-managed per-core privatization buffer — the
//! recipe a domain programmer would follow to port code to the
//! manycore.
//!
//! Pattern: each task histograms a slice into its core's *scratchpad*
//! buffer (fast local updates), then flushes it into the global DRAM
//! histogram with AMOs — the privatize-then-combine idiom the paper's
//! SPM reservation API (`spm_reserve`/`spm_malloc`) exists to support.
//!
//! ```sh
//! cargo run --release -p mosaic-xtests --example custom_workload
//! ```

use mosaic_runtime::{AmoOp, Mosaic, RuntimeConfig, TaskCtx};
use mosaic_sim::MachineConfig;

const BINS: u32 = 64;
const N: u32 = 8192;
const SLICE: u32 = 256;

/// Histogram `data[lo, hi)` using this core's SPM buffer, then merge.
fn histogram_slice(
    ctx: &mut TaskCtx<'_>,
    data: mosaic_runtime::Addr,
    global: mosaic_runtime::Addr,
    lo: u32,
    hi: u32,
) {
    // Per-core SPM privatization buffer. `spm_malloc` is a per-core
    // bump allocator over the `spm_reserve` region, so on the first
    // task per core this allocates, and we reuse it afterwards by
    // taking the region base (same address every call on a core).
    let (spm_buf, spm_bytes) = ctx.spm_user_region();
    assert!(spm_bytes >= BINS * 4, "reserve enough SPM for the bins");

    // Zero the local bins (fast local SPM stores).
    for b in 0..BINS {
        ctx.store(spm_buf.offset_words(b as u64), 0);
    }
    // Count into local SPM.
    for i in lo..hi {
        let v = ctx.load(data.offset_words(i as u64));
        let bin = v % BINS;
        let cur = ctx.load(spm_buf.offset_words(bin as u64));
        ctx.store(spm_buf.offset_words(bin as u64), cur + 1);
        ctx.compute(3, 3);
    }
    // Merge into the shared DRAM histogram with atomics.
    for b in 0..BINS {
        let c = ctx.load(spm_buf.offset_words(b as u64));
        if c > 0 {
            ctx.amo(global.offset_words(b as u64), AmoOp::Add, c);
        }
        ctx.compute(2, 2);
    }
}

/// Divide-and-conquer over the input with raw spawn/wait (the paper's
/// Fig. 3a style, without the templated patterns).
fn histogram_rec(
    ctx: &mut TaskCtx<'_>,
    data: mosaic_runtime::Addr,
    global: mosaic_runtime::Addr,
    lo: u32,
    hi: u32,
) {
    if hi - lo <= SLICE {
        histogram_slice(ctx, data, global, lo, hi);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    // Spawn the right half; recurse into the left like FibTask does.
    ctx.spawn(move |ctx| histogram_rec(ctx, data, global, mid, hi));
    ctx.call(move |ctx| histogram_rec(ctx, data, global, lo, mid));
    ctx.wait();
}

fn main() {
    let mut runtime = RuntimeConfig::work_stealing();
    runtime.spm_user_reserve = BINS * 4; // spm_reserve(256 B)
    let mut sys = Mosaic::new(MachineConfig::small(8, 4), runtime);

    let data: Vec<u32> = (0..N).map(|i| i.wrapping_mul(2654435761)).collect();
    let ddata = sys.machine_mut().dram_alloc_init(&data);
    let dhist = sys.machine_mut().dram_alloc_words(BINS as u64);

    let report = sys.run(move |ctx| {
        histogram_rec(ctx, ddata, dhist, 0, N);
    });

    // Verify against a host histogram.
    let mut want = vec![0u32; BINS as usize];
    for v in &data {
        want[(v % BINS) as usize] += 1;
    }
    let got = report.machine.peek_slice(dhist, BINS as usize);
    assert_eq!(got, want, "simulated histogram must match the host");
    let t = report.totals();
    println!(
        "histogram of {N} values into {BINS} bins: correct\n\
         {} cycles, {} tasks executed, {} stolen, max stack {} words",
        report.cycles, t.tasks_executed, t.steals, t.max_stack_words
    );
}
