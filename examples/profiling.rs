//! Profiling: attach the cycle-attribution profiler to a run and read
//! back where every simulated cycle went.
//!
//! ```sh
//! cargo run --release -p mosaic-xtests --example profiling
//! ```
//!
//! Set `MachineConfig::profile = true` and `RunReport::profile` comes
//! back `Some(MachineProfile)`: per-core cycle buckets (compute,
//! queue-lock wait, steal search, SPM/LLC/DRAM stalls, fence/AMO wait,
//! stack-overflow handling, idle), per-LLC-bank access counts, and
//! per-core NoC flit counters. The profiler is a host-side observer —
//! it charges zero simulated cycles, so cycle counts are byte-identical
//! with it on or off, and on every core the nine bucket totals sum
//! *exactly* to that core's elapsed cycles.

use mosaic_runtime::{Mosaic, RuntimeConfig, TaskCtx};
use mosaic_sim::{Bucket, MachineConfig};

/// A deliberately unbalanced fib: one spawn per level keeps thieves
/// busy, so the steal-search and queue-lock buckets light up.
fn fib(ctx: &mut TaskCtx<'_>, n: u32) -> u32 {
    if n < 2 {
        ctx.compute(1, 1);
        return n;
    }
    let (x, y) = ctx.parallel_invoke(move |ctx| fib(ctx, n - 1), move |ctx| fib(ctx, n - 2));
    ctx.compute(1, 1);
    x + y
}

fn main() {
    // Same machine and runtime as quickstart, plus the profiler flag.
    let mut machine = MachineConfig::small(4, 2);
    machine.profile = true;
    let sys = Mosaic::new(machine, RuntimeConfig::work_stealing());

    let report = sys.run(move |ctx| {
        let f = fib(ctx, 14);
        ctx.mark(format!("fib={f}"));
    });

    let p = report.profile.as_ref().expect("profile was enabled");

    // The accounting contract: attribution is span-complete per core.
    assert_eq!(p.accounting_error(), None);

    println!("fib(14) on {} cores: {} cycles\n", p.cores(), report.cycles);
    println!("cycles by bucket (machine-wide):");
    print!("{}", p.render_totals());
    println!("\ncore-inbound NoC flits (1.00 = hottest core):");
    print!("{}", p.render_inbound_heatmap());

    let steal = p.bucket_total(Bucket::StealSearch);
    let total: u64 = p.totals().iter().sum();
    println!(
        "\nsteal search: {} cycles ({:.1}% of all attributed cycles)",
        steal,
        100.0 * steal as f64 / total as f64
    );

    // Per-core drill-down: the most idle core vs the busiest.
    let idle_of = |c: usize| p.buckets[c][Bucket::Idle.index()];
    let laziest = (0..p.cores()).max_by_key(|&c| idle_of(c)).unwrap_or(0);
    println!(
        "core {} was idle longest: {} of its {} cycles",
        laziest,
        idle_of(laziest),
        p.elapsed[laziest]
    );
}
