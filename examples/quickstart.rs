//! Quickstart: run a dynamic task parallel program on the simulated
//! 128-core manycore in a dozen lines.
//!
//! ```sh
//! cargo run --release -p mosaic-xtests --example quickstart
//! ```
//!
//! Shows the three core patterns from the paper's Fig. 3 —
//! `parallel_for` (vvadd), `parallel_invoke` (fib), and
//! `parallel_reduce` (sum) — and reads results back out of simulated
//! DRAM.

use mosaic_runtime::{Mosaic, RuntimeConfig, TaskCtx};
use mosaic_sim::MachineConfig;

/// Fig. 3(c): fib with `parallel_invoke`.
fn fib(ctx: &mut TaskCtx<'_>, n: u32) -> u32 {
    if n < 2 {
        return n;
    }
    let (x, y) = ctx.parallel_invoke(move |ctx| fib(ctx, n - 1), move |ctx| fib(ctx, n - 2));
    ctx.compute(1, 1);
    x + y
}

fn main() {
    // A 32-core machine with the paper's headline configuration:
    // work-stealing, stack and task queue both in scratchpad.
    let mut sys = Mosaic::new(MachineConfig::small(8, 4), RuntimeConfig::work_stealing());

    // Allocate inputs in simulated DRAM before the run.
    let n = 1024u32;
    let a: Vec<u32> = (0..n).collect();
    let b: Vec<u32> = (0..n).map(|i| 10 * i).collect();
    let da = sys.machine_mut().dram_alloc_init(&a);
    let db = sys.machine_mut().dram_alloc_init(&b);
    let dst = sys.machine_mut().dram_alloc_words(n as u64);

    let report = sys.run(move |ctx| {
        // Fig. 3(d): vvadd with parallel_for.
        ctx.parallel_for(0, n, 16, 4, move |ctx, i| {
            let x = ctx.load(da.offset_words(i as u64));
            let y = ctx.load(db.offset_words(i as u64));
            ctx.compute(1, 1);
            ctx.store(dst.offset_words(i as u64), x + y);
        });

        // Fig. 3(e): sum with parallel_reduce.
        let total = ctx.parallel_reduce(
            0,
            n,
            16,
            2,
            0u64,
            move |ctx, i| ctx.load(dst.offset_words(i as u64)) as u64,
            |x, y| x + y,
        );
        ctx.mark(format!("sum={total}"));

        // Fig. 3(a/c): fib with parallel_invoke.
        let f = fib(ctx, 12);
        ctx.mark(format!("fib={f}"));
    });

    // Check the results straight out of simulated memory.
    let got = report.machine.peek_slice(dst, n as usize);
    assert!(got.iter().enumerate().all(|(i, &v)| v == 11 * i as u32));
    println!("vvadd of {n} elements: correct");
    for (mark, cycle) in &report.marks {
        println!("mark {mark:12} at cycle {cycle}");
    }
    let t = report.totals();
    println!(
        "{} cycles, {} instructions, {} tasks ({} stolen)",
        report.cycles,
        report.instructions(),
        t.tasks_executed,
        t.steals
    );
}
