//! Design-space exploration: how does the work-stealing runtime's
//! advantage change with the machine? Sweeps SPM size, ruche factor,
//! and DRAM queue capacity on the UTS workload — the kind of
//! architecture study this simulator exists to make cheap.
//!
//! ```sh
//! cargo run --release -p mosaic-xtests --example design_space
//! ```

use mosaic_runtime::{Placement, RuntimeConfig};
use mosaic_sim::MachineConfig;
use mosaic_workloads::gen::UtsParams;
use mosaic_workloads::uts::Uts;
use mosaic_workloads::Benchmark;

fn bench() -> Uts {
    Uts {
        params: UtsParams {
            root_children: 16,
            max_depth: 24,
            ..UtsParams::t3(7)
        },
        label: "t3",
    }
}

fn main() {
    println!("Design-space sweeps on 32 cores (work-stealing, stack+queue in SPM)\n");

    println!("SPM size sweep on NQueens-7 (deep stacks; smaller SPM = more");
    println!("frames overflowing to DRAM):");
    for spm in [1024u32, 2048, 4096, 8192] {
        let mut m = MachineConfig::small(8, 4);
        m.spm_size = spm;
        let out =
            mosaic_workloads::nqueens::NQueens { n: 7 }.run(m, RuntimeConfig::work_stealing());
        out.assert_verified();
        let t = out.report.totals();
        println!(
            "  spm={spm:5} B  {:>8} cycles  overflows={:<6} max-stack={} words",
            out.report.cycles, t.stack_overflows, t.max_stack_words
        );
    }
    println!();

    println!("\nRuche (express link) factor sweep on UTS-t3:");
    for ruche in [0u16, 2, 3, 4] {
        let mut m = MachineConfig::small(8, 4);
        m.ruche_x = ruche;
        let out = bench().run(m, RuntimeConfig::work_stealing());
        out.assert_verified();
        println!("  ruche={ruche}  {:>8} cycles", out.report.cycles);
    }

    println!("\nDRAM-queue capacity sweep on UTS-t3 (queue in DRAM):");
    for cap in [8u32, 32, 128, 1024] {
        let cfg = RuntimeConfig {
            queue: Placement::Dram,
            dram_queue_capacity: cap,
            ..RuntimeConfig::work_stealing()
        };
        let out = bench().run(MachineConfig::small(8, 4), cfg);
        out.assert_verified();
        let t = out.report.totals();
        println!(
            "  cap={cap:4}  {:>8} cycles  inlined={} max-depth={}",
            out.report.cycles, t.inline_executions, t.max_queue_depth
        );
    }
}
