//! Fast mode: answer a sweep cell from the calibrated analytic model
//! instead of the cycle-accurate engine, and see what that trade
//! buys. Runs the same UTS cell through both backends, compares the
//! answers against the calibration table's promised error band, and
//! shows how the auto backend decides when the model is trustworthy
//! enough to skip simulation.
//!
//! Run from the repository root (the committed calibration table is
//! loaded from `results/model/calibration.json`):
//!
//! ```sh
//! cargo run --release -p mosaic-xtests --example fast_mode
//! ```

use mosaic_model::CalibrationTable;
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::backend::{
    AnalyticBackend, AutoBackend, Backend, BackendJob, CycleBackend, CycleOutcome, FamilyKey,
};
use mosaic_sim::MachineConfig;
use mosaic_workloads::{uts, Benchmark, Scale};
use std::time::Instant;

/// One sweep cell seen through the backend seam: its calibration
/// identity plus the real cycle-accurate execution path.
struct Cell {
    bench: Box<dyn Benchmark>,
    config_label: &'static str,
    runtime: RuntimeConfig,
}

impl BackendJob for Cell {
    fn family(&self) -> FamilyKey {
        FamilyKey {
            workload: self.bench.name(),
            config: self.config_label.to_string(),
            scale: "tiny".to_string(),
        }
    }
    fn execute(&self, machine: &MachineConfig) -> CycleOutcome {
        let out = self.bench.run(machine.clone(), self.runtime.clone());
        CycleOutcome {
            cycles: out.report.cycles,
            instructions: out.report.instructions(),
            verified: out.verified,
            sanitizer: None,
        }
    }
}

fn main() {
    let table = CalibrationTable::parse(
        &std::fs::read_to_string("results/model/calibration.json")
            .expect("run from the repo root: results/model/calibration.json not found"),
    )
    .expect("calibration table parses");
    println!(
        "calibration: {} families, acceptance bound {}ppm\n",
        table.families.len(),
        table.bound_ppm
    );

    // The heaviest Table-1 family: UTS-t3 under the full SPM runtime.
    let (label, runtime) = RuntimeConfig::table1_sweep()
        .into_iter()
        .find(|(l, _)| *l == "ws/spm-stack/spm-q")
        .expect("table1 sweep carries the ws/spm-stack/spm-q config");
    let cell = Cell {
        bench: uts::instances(Scale::Tiny).pop().expect("UTS instances"),
        config_label: label,
        runtime,
    };
    let machine = MachineConfig::small(8, 4);
    let key = cell.family();
    println!("cell: {key} on {}x{}", machine.cols, machine.rows);

    // The same cell, both fidelities.
    let t0 = Instant::now();
    let slow = CycleBackend.run_cell(&machine, &cell).expect("cycle run");
    let t_cycle = t0.elapsed();
    let analytic = AnalyticBackend::new(table.clone());
    let t0 = Instant::now();
    let fast = analytic.run_cell(&machine, &cell).expect("analytic run");
    let t_model = t0.elapsed();

    let err_ppm = fast.cycles.abs_diff(slow.cycles) * 1_000_000 / slow.cycles;
    println!(
        "  cycle    {:>8} cycles   {:>10.1?} wall",
        slow.cycles, t_cycle
    );
    println!(
        "  analytic {:>8} cycles   {:>10.1?} wall",
        fast.cycles, t_model
    );
    println!(
        "  relative error {}ppm ({:.2}%), calibrated family bound {}ppm",
        err_ppm,
        err_ppm as f64 / 10_000.0,
        table
            .family(&key.workload, &key.config, &key.scale)
            .expect("family is calibrated")
            .max_err_ppm
    );

    // The auto backend only answers fast inside the calibrated band;
    // anything uncovered (here: a scale never calibrated) escalates
    // back to the cycle engine.
    let auto = AutoBackend::new(table, 100_000);
    let uncovered = FamilyKey {
        scale: "small".to_string(),
        ..key.clone()
    };
    println!("\nauto backend at a 100000ppm escalation bound:");
    println!("  {key}  -> fast = {}", auto.answers_fast(&key));
    println!("  {uncovered} -> fast = {}", auto.answers_fast(&uncovered));
}
