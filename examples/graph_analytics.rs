//! Graph analytics on the simulated manycore: PageRank and BFS over an
//! `email`-like power-law graph, comparing the traditional static-loop
//! scheduler against the work-stealing runtime — the paper's headline
//! comparison, as a library user would run it.
//!
//! ```sh
//! cargo run --release -p mosaic-xtests --example graph_analytics
//! ```

use mosaic_runtime::{Placement, RuntimeConfig};
use mosaic_sim::MachineConfig;
use mosaic_workloads::bfs::{Bfs, BfsInput};
use mosaic_workloads::pagerank::{GraphKind, PageRank};
use mosaic_workloads::Benchmark;

fn main() {
    let machine = MachineConfig::small(8, 4); // 32 cores
    let configs = [
        (
            "static loops (SPM stack)",
            RuntimeConfig::static_loops(Placement::Spm),
        ),
        (
            "work-stealing (naive, all DRAM)",
            RuntimeConfig::work_stealing_naive(),
        ),
        (
            "work-stealing (SPM stack+queue)",
            RuntimeConfig::work_stealing(),
        ),
    ];

    println!("PageRank, power-law graph (n=2048, 1 iteration):");
    let pr = PageRank {
        n: 2048,
        kind: GraphKind::PowerLaw,
        iters: 1,
        seed: 7,
    };
    let mut baseline = None;
    for (name, cfg) in &configs {
        let out = pr.run(machine.clone(), cfg.clone());
        out.assert_verified();
        let cycles = out.report.cycles;
        let base = *baseline.get_or_insert(cycles);
        println!(
            "  {name:34} {cycles:>9} cycles  ({:.2}x vs static)",
            base as f64 / cycles as f64
        );
    }

    println!("\nBFS, uniform graph (n=1024):");
    let bfs = Bfs {
        n: 1024,
        input: BfsInput::Uniform,
        source: 1,
        seed: 7,
    };
    let mut baseline = None;
    for (name, cfg) in &configs {
        let out = bfs.run(machine.clone(), cfg.clone());
        out.assert_verified();
        let cycles = out.report.cycles;
        let base = *baseline.get_or_insert(cycles);
        let t = out.report.totals();
        println!(
            "  {name:34} {cycles:>9} cycles  ({:.2}x vs static, {} steals)",
            base as f64 / cycles as f64,
            t.steals
        );
    }
}
