//! Where should runtime data live? A user-level replication of the
//! paper's data-placement study (§4.4) on NQueens — the most
//! stack-hungry workload — sweeping all four stack/queue placements
//! and reporting stack-overflow behaviour.
//!
//! ```sh
//! cargo run --release -p mosaic-xtests --example placement_study
//! ```

use mosaic_runtime::{Placement, RuntimeConfig};
use mosaic_sim::MachineConfig;
use mosaic_workloads::nqueens::NQueens;
use mosaic_workloads::Benchmark;

fn main() {
    let machine = MachineConfig::small(8, 4);
    let q = NQueens { n: 6 };
    println!("NQueens(6) on 32 cores:\n");
    println!(
        "{:<12} {:<12} {:>10} {:>10} {:>12} {:>10}",
        "stack", "queue", "cycles", "DI", "overflows", "max-stack"
    );
    let mut best: Option<(u64, &str, &str)> = None;
    for stack in [Placement::Dram, Placement::Spm] {
        for queue in [Placement::Dram, Placement::Spm] {
            let cfg = RuntimeConfig {
                stack,
                queue,
                ..RuntimeConfig::work_stealing()
            };
            let out = q.run(machine.clone(), cfg);
            out.assert_verified();
            let t = out.report.totals();
            let (sl, ql) = (
                if stack == Placement::Spm {
                    "SPM"
                } else {
                    "DRAM"
                },
                if queue == Placement::Spm {
                    "SPM"
                } else {
                    "DRAM"
                },
            );
            println!(
                "{:<12} {:<12} {:>10} {:>10} {:>12} {:>10}",
                sl,
                ql,
                out.report.cycles,
                out.report.instructions(),
                t.stack_overflows,
                t.max_stack_words
            );
            if best.is_none() || out.report.cycles < best.unwrap().0 {
                best = Some((out.report.cycles, sl, ql));
            }
        }
    }
    let (cycles, sl, ql) = best.unwrap();
    println!("\nbest: stack={sl} queue={ql} at {cycles} cycles");
    println!("(the paper finds NQueens best with the SPM reserved for the stack)");
}
