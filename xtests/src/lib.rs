//! Carrier package for workspace-level integration tests (../tests) and examples (../examples).
