//! [`Mosaic`]: configure a machine + runtime, load inputs, run `main`.

use crate::config::{RuntimeConfig, SchedulerKind};
use crate::costs::CostModel;
use crate::ctx::{Shared, TaskCtx};
use crate::layout::Layout;
use crate::static_sched;
use crate::stats::{RunReport, WorkerStats};
use crate::task::Registry;
use mosaic_sim::{Engine, Machine, MachineConfig, SimError};
use parking_lot::Mutex;
use std::sync::Arc;

/// A configured Mosaic system: a simulated machine plus a runtime.
///
/// Typical use: construct, allocate and initialize inputs through
/// [`Mosaic::machine_mut`], then [`Mosaic::run`] a `main` closure that
/// uses the [`TaskCtx`] API ([`TaskCtx::parallel_for`] and friends).
///
/// # Example
///
/// ```
/// use mosaic_runtime::{Mosaic, RuntimeConfig};
/// use mosaic_sim::MachineConfig;
///
/// let mut sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
/// let data = sys.machine_mut().dram_alloc_init(&[1, 2, 3, 4, 5, 6, 7, 8]);
/// let out = sys.machine_mut().dram_alloc_words(8);
/// let report = sys.run(move |ctx| {
///     ctx.parallel_for(0, 8, 2, 2, move |ctx, i| {
///         let v = ctx.load(data.offset_words(i as u64));
///         ctx.store(out.offset_words(i as u64), v * 10);
///     });
/// });
/// assert_eq!(report.machine.peek(out.offset_words(3)), 40);
/// ```
pub struct Mosaic {
    machine: Machine,
    config: RuntimeConfig,
    costs: CostModel,
}

impl Mosaic {
    /// A Mosaic system on a fresh machine.
    ///
    /// # Panics
    ///
    /// Panics on an invalid machine configuration or an SPM budget the
    /// runtime cannot lay out (see [`Mosaic::try_new`]).
    pub fn new(machine: MachineConfig, config: RuntimeConfig) -> Self {
        match Mosaic::try_new(machine, config) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates the machine configuration and
    /// checks the runtime's SPM budget up front (user reservation plus
    /// queue block plus misc plus minimum stack must fit the
    /// scratchpad), so a bad configuration is an `Err` here instead of
    /// a silent mis-layout or a panic mid-run.
    pub fn try_new(machine: MachineConfig, config: RuntimeConfig) -> Result<Self, String> {
        machine.validate()?;
        // Dry-run the layout arithmetic with a dummy allocator; the
        // real DRAM blocks are allocated in `run`.
        let mut brk = mosaic_mem::AddrMap::DRAM_BASE;
        Layout::try_compute(
            &config,
            machine.core_count() as u32,
            machine.spm_size,
            |b| {
                let a = mosaic_mem::Addr(brk);
                brk += (b + 15) & !15;
                a
            },
        )?;
        Ok(Mosaic {
            machine: Machine::new(machine),
            config,
            costs: CostModel::default(),
        })
    }

    /// The machine, for pre-run input loading (`dram_alloc*`, `poke`).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The machine, read-only.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Override the instruction-cost model (ablation studies).
    pub fn set_costs(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    /// Run `main` on core 0 to completion and return the report.
    ///
    /// # Panics
    ///
    /// Panics if any task panics, if the simulation fails to
    /// terminate, or if the SPM budget is over-committed by the
    /// configuration. Use [`Mosaic::try_run`] to receive a
    /// [`SimError`] instead of a panic.
    pub fn run<F>(self, main: F) -> RunReport
    where
        F: FnOnce(&mut TaskCtx<'_>) + Send + 'static,
    {
        match self.try_run(main) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Mosaic::run`], but simulation failures (a panicked task,
    /// a watchdog trip, a deadlock) come back as a [`SimError`] — an
    /// embedding service can treat one poisoned run as a failed job
    /// instead of aborting its process. Watchdog and deadlock errors
    /// carry diagnostics with per-core engine state, per-core task
    /// queue depths, and any active fault-injection windows.
    pub fn try_run<F>(self, main: F) -> Result<RunReport, SimError>
    where
        F: FnOnce(&mut TaskCtx<'_>) + Send + 'static,
    {
        let Mosaic {
            mut machine,
            config,
            costs,
        } = self;
        let cores = machine.core_count();
        let spm_size = machine.config().spm_size;
        let layout = Layout::compute(&config, cores as u32, spm_size, |bytes| {
            machine.dram_alloc(bytes)
        });
        let map = machine.addr_map().clone();
        layout.initialize(&map, |addr, value| machine.poke(addr, value));

        // Watchdog diagnostics: teach the machine to read per-core
        // task-queue depths out of simulated memory, so a livelock or
        // deadlock dump shows where work piled up. Host-side only;
        // consulted only when a watchdog/deadlock error is built.
        let queue_blocks: Vec<mosaic_sim::Addr> = (0..cores as u32)
            .map(|c| layout.queue_block(&map, c))
            .collect();
        machine.set_watchdog_probe(Box::new(move |m| {
            let mut out = String::from("  task queues (head/tail/depth):");
            let mut any = false;
            for (core, qa) in queue_blocks.iter().enumerate() {
                let head = m.peek(qa.offset_words(1));
                let tail = m.peek(qa.offset_words(2));
                let depth = tail.wrapping_sub(head);
                if depth != 0 {
                    out.push_str(&format!(" core {core}: {head}/{tail}/{depth};"));
                    any = true;
                }
            }
            if !any {
                out.push_str(" all empty");
            }
            out
        }));

        // Teach the attached sanitizer (if any) this run's layout —
        // lock words, intentional sync ranges, stack geometry — and
        // open the note channel for stack/environment events.
        let san_notes = machine.sanitizer_mut().map(|san| {
            san.set_spec(layout.san_spec(&map));
            san.note_sink()
        });

        let scheduler = config.scheduler;
        let trace = config.trace.then(|| Mutex::new(Vec::new()));
        let shared = Arc::new(Shared {
            config,
            costs,
            layout,
            map,
            registry: Registry::new(),
            static_slot: Mutex::new(None),
            marks: Mutex::new(Vec::new()),
            finished_stats: Mutex::new(Vec::new()),
            seed: machine.config().seed,
            sw_overflow_penalty: machine.config().sw_overflow_penalty,
            cores,
            mesh_cols: machine.config().cols,
            trace,
            san_notes,
        });
        let main_cell: Arc<Mutex<Option<crate::task::TaskBody>>> =
            Arc::new(Mutex::new(Some(Box::new(main))));

        let sh_factory = shared.clone();
        let mut report = Engine::try_run(machine, move |core| {
            let sh = sh_factory.clone();
            let main_cell = main_cell.clone();
            Box::new(move |api| {
                let mut ctx = TaskCtx::new(api, &sh, core);
                if core == 0 {
                    let main = main_cell.lock().take().expect("main already taken");
                    ctx.run_main(main);
                } else {
                    match scheduler {
                        SchedulerKind::WorkStealing => ctx.scheduling_loop(None),
                        SchedulerKind::WorkDealing => ctx.dealing_loop(None),
                        SchedulerKind::Static => static_sched::static_worker_loop(&mut ctx),
                    }
                }
                ctx.finish();
            })
        })?;

        debug_assert!(
            shared.registry.is_empty(),
            "tasks left unexecuted at shutdown"
        );
        let mut worker_stats = vec![WorkerStats::default(); cores];
        for (core, stats) in shared.finished_stats.lock().drain(..) {
            worker_stats[core] = stats;
        }
        let marks = shared.marks.lock().clone();
        let trace = shared
            .trace
            .as_ref()
            .map(|t| std::mem::take(&mut *t.lock()))
            .unwrap_or_default();
        let sanitizer = report.machine.take_sanitizer_report();
        let profile = report.machine.take_profile();
        Ok(RunReport {
            cycles: report.cycles,
            counters: report.counters,
            machine: report.machine,
            worker_stats,
            marks,
            trace,
            sanitizer,
            profile,
        })
    }
}

impl std::fmt::Debug for Mosaic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mosaic")
            .field("cores", &self.machine.core_count())
            .field("config", &self.config)
            .finish()
    }
}
