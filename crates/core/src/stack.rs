//! The per-core call-stack engine with DRAM overflow.
//!
//! Models the paper's §4.1 mechanism: when the stack is SPM-placed, a
//! hardware extension snoops the stack pointer against an overflow
//! threshold CSR; frames that would cross below the threshold are
//! redirected to a per-core DRAM overflow buffer ("overflowing to
//! DRAM"). The *bottom* frames stay in SPM, deep frames go to DRAM,
//! and popping back re-enters SPM — exactly the simple-but-less-ideal
//! scheme the paper chose. When the stack is DRAM-placed, every frame
//! lives in the DRAM buffer.
//!
//! This type is pure bookkeeping (which addresses a frame occupies);
//! the caller charges the actual save/restore memory traffic.

use crate::config::Placement;
use mosaic_mem::{Addr, AddrMap};
use mosaic_sim::Phase;

/// One live frame (or anonymous in-frame allocation).
#[derive(Debug, Clone, Copy)]
struct Frame {
    base: Addr,
    words: u32,
    in_dram: bool,
}

/// Per-core stack state.
#[derive(Debug)]
pub struct StackEngine {
    core: u32,
    placement: Placement,
    /// SPM byte offset of the stack top (grows down toward 0).
    spm_top_off: u32,
    /// SPM stack capacity in words.
    spm_words: u32,
    /// Top (exclusive) of the DRAM stack/overflow buffer.
    dram_top: Addr,
    /// DRAM stack capacity in words.
    dram_words: u32,
    /// Words currently allocated in the SPM region.
    spm_depth: u32,
    /// Words currently allocated in the DRAM region.
    dram_depth: u32,
    frames: Vec<Frame>,
    /// Frames that overflowed to DRAM while SPM-placed.
    pub overflowed_frames: u64,
    /// High-water mark of total depth, in words.
    pub max_depth_words: u32,
}

impl StackEngine {
    /// A fresh, empty stack for `core`.
    pub fn new(
        core: u32,
        placement: Placement,
        spm_top_off: u32,
        dram_top: Addr,
        dram_words: u32,
    ) -> Self {
        StackEngine {
            core,
            placement,
            spm_top_off,
            spm_words: spm_top_off / 4,
            dram_top,
            dram_words,
            spm_depth: 0,
            dram_depth: 0,
            frames: Vec::new(),
            overflowed_frames: 0,
            max_depth_words: 0,
        }
    }

    /// Allocate a frame of `words`; returns the address of its lowest
    /// word (word `i` of the frame is at `base + 4*i`).
    ///
    /// # Panics
    ///
    /// Panics if even the DRAM buffer is exhausted (a true stack
    /// overflow — a program bug at the modeled scale).
    pub fn push(&mut self, words: u32, map: &AddrMap) -> Addr {
        let use_dram = match self.placement {
            Placement::Dram => true,
            Placement::Spm => {
                // A frame that would cross the overflow threshold is
                // redirected entirely to DRAM (the pointer-rewrite in
                // the paper's SW scheme / CSR swap in the HW scheme).
                // Once frames live in DRAM, later frames stay there
                // until the DRAM ones pop (the stack pointer is in the
                // DRAM buffer region).
                self.dram_depth > 0 || self.spm_depth + words > self.spm_words
            }
        };
        let base = if use_dram {
            if self.placement == Placement::Spm {
                self.overflowed_frames += 1;
            }
            assert!(
                self.dram_depth + words <= self.dram_words,
                "core {}: DRAM stack buffer exhausted at depth {} words",
                self.core,
                self.dram_depth
            );
            self.dram_depth += words;
            Addr(self.dram_top.raw() - self.dram_depth as u64 * 4)
        } else {
            self.spm_depth += words;
            map.spm_addr(self.core, self.spm_top_off - self.spm_depth * 4)
        };
        self.frames.push(Frame {
            base,
            words,
            in_dram: use_dram,
        });
        self.max_depth_words = self.max_depth_words.max(self.spm_depth + self.dram_depth);
        base
    }

    /// Free the most recent frame; returns its `(base, words, in_dram)`
    /// so callers can report the freed range (sanitizer shadow stack).
    ///
    /// # Panics
    ///
    /// Panics on pop of an empty stack.
    pub fn pop(&mut self) -> (Addr, u32, bool) {
        let f = self.frames.pop().expect("stack pop with no frames");
        if f.in_dram {
            self.dram_depth -= f.words;
        } else {
            self.spm_depth -= f.words;
        }
        (f.base, f.words, f.in_dram)
    }

    /// Total live words (SPM + DRAM).
    pub fn depth_words(&self) -> u32 {
        self.spm_depth + self.dram_depth
    }

    /// Live frame count.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the most recent frame lives in DRAM.
    pub fn top_in_dram(&self) -> bool {
        self.frames.last().is_some_and(|f| f.in_dram)
    }

    /// Profiler phase for save/restore traffic on the top frame:
    /// `Some(StackOverflow)` when that frame overflowed out of SPM (the
    /// traffic is then overflow handling, not useful work), `None` for
    /// an SPM-resident frame.
    pub fn overflow_phase(&self) -> Option<Phase> {
        self.top_in_dram().then_some(Phase::StackOverflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddrMap {
        AddrMap::new(4, 4096)
    }

    fn engine(placement: Placement, spm_top: u32) -> StackEngine {
        StackEngine::new(0, placement, spm_top, Addr(0x9000_0000), 1024)
    }

    #[test]
    fn spm_frames_grow_down_from_top() {
        let m = map();
        let mut s = engine(Placement::Spm, 256);
        let f1 = s.push(4, &m);
        let f2 = s.push(4, &m);
        assert_eq!(f1, m.spm_addr(0, 256 - 16));
        assert_eq!(f2, m.spm_addr(0, 256 - 32));
        assert!(!s.top_in_dram());
    }

    #[test]
    fn dram_placement_never_touches_spm() {
        let m = map();
        let mut s = engine(Placement::Dram, 256);
        let f = s.push(4, &m);
        assert!(f.raw() < 0x9000_0000 && f.raw() >= 0x9000_0000 - 1024 * 4);
        assert!(s.top_in_dram());
        assert_eq!(s.overflowed_frames, 0, "DRAM placement is not overflow");
    }

    #[test]
    fn overflow_to_dram_and_back() {
        let m = map();
        let mut s = engine(Placement::Spm, 64); // 16 words of SPM stack
        let _a = s.push(10, &m); // fits (10 <= 16)
        let b = s.push(10, &m); // crosses: goes to DRAM
        assert!(b.raw() >= 0x8000_0000, "overflow frame must be in DRAM");
        assert_eq!(s.overflowed_frames, 1);
        // While DRAM frames are live, new frames stay in DRAM even if
        // small (the stack pointer is in the DRAM region).
        let c = s.push(2, &m);
        assert!(c.raw() >= 0x8000_0000);
        s.pop();
        s.pop();
        // Back under the threshold: SPM again.
        let d = s.push(4, &m);
        assert!(d.raw() < 0x8000_0000, "post-overflow frames return to SPM");
        assert_eq!(s.depth_words(), 14);
    }

    #[test]
    fn exact_fit_stays_in_spm() {
        let m = map();
        let mut s = engine(Placement::Spm, 64);
        s.push(16, &m); // exactly 16 words
        assert!(!s.top_in_dram());
        assert_eq!(s.overflowed_frames, 0);
    }

    #[test]
    fn max_depth_tracks_high_water() {
        let m = map();
        let mut s = engine(Placement::Spm, 256);
        s.push(8, &m);
        s.push(8, &m);
        s.pop();
        s.push(2, &m);
        assert_eq!(s.max_depth_words, 16);
    }

    #[test]
    #[should_panic(expected = "DRAM stack buffer exhausted")]
    fn dram_exhaustion_panics() {
        let m = map();
        let mut s = engine(Placement::Dram, 256);
        s.push(2048, &m);
    }

    #[test]
    #[should_panic(expected = "no frames")]
    fn underflow_panics() {
        engine(Placement::Spm, 256).pop();
    }
}
