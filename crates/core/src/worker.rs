//! The work-stealing protocol: spawn, wait, the scheduling loop, and
//! task execution. This is the Rust rendering of the paper's Figure 4.
//!
//! The key structural property is that `wait()` enters the scheduling
//! loop *on the same call stack*, so a waiting parent executes other
//! tasks (its own children first, then stolen work) exactly like a
//! Cilk/TBB worker. Where runtime data lives — the queue block, the
//! queue lock, the stack frames holding task records — is decided by
//! the [`Layout`](crate::layout::Layout), which is how the SPM
//! optimizations change performance without changing this protocol.

use crate::config::{Placement, SchedulerKind, StealAmount, VictimPolicy};
use crate::ctx::TaskCtx;
use crate::layout::misc;
use crate::task::{rec, TaskBody, REC_WORDS};
use crate::{lock, queue};
use mosaic_mem::{Addr, AmoOp};
use mosaic_sim::Phase;
use rand::Rng;

impl TaskCtx<'_> {
    /// The executing core's queue block address (no memory traffic:
    /// the owner knows where its queue is).
    fn own_queue(&self) -> Addr {
        self.sh.layout.queue_block(&self.sh.map, self.st.core)
    }

    /// Resolve a victim's queue block address. With an SPM queue this
    /// is pure address arithmetic (`get_remote_ptr`, Fig. 4b); with a
    /// DRAM queue the thief must first load `tq[vid]` from the DRAM
    /// directory (Fig. 4a) — a real timed access.
    fn resolve_victim_queue(&mut self, victim: u32) -> Addr {
        match self.sh.layout.queue_placement() {
            Placement::Spm => {
                self.api.charge(3, 3); // base + offset arithmetic
                self.sh.layout.queue_block(&self.sh.map, victim)
            }
            Placement::Dram => {
                let ptr = self.api.load(self.sh.layout.queue_dir_entry(victim));
                Addr(ptr as u64)
            }
        }
    }

    /// Pick a victim other than ourselves.
    fn choose_victim(&mut self) -> u32 {
        let cores = self.sh.cores as u32;
        debug_assert!(cores > 1);
        let costs = self.sh.costs;
        self.api.charge(costs.victim_select, costs.victim_select);
        match self.sh.config.victim {
            VictimPolicy::Random => loop {
                let v = self.st.rng.random_range(0..cores);
                if v != self.st.core {
                    return v;
                }
            },
            VictimPolicy::RoundRobin => {
                self.st.rr_victim = (self.st.rr_victim + 1) % cores;
                if self.st.rr_victim == self.st.core {
                    self.st.rr_victim = (self.st.rr_victim + 1) % cores;
                }
                self.st.rr_victim
            }
            VictimPolicy::Nearest => {
                // Walk cores in Manhattan-distance order from us,
                // advancing one position per attempt (so repeated
                // failures expand the search ring).
                let cols = self.sh.mesh_cols as u32;
                let me = self.st.core;
                let (mx, my) = (me % cols, me / cols);
                let mut order: Vec<u32> = (0..cores).filter(|&c| c != me).collect();
                order.sort_by_key(|&c| {
                    let (cx, cy) = (c % cols, c / cols);
                    (cx.abs_diff(mx) + cy.abs_diff(my), c)
                });
                self.st.rr_victim = (self.st.rr_victim + 1) % (cores - 1);
                order[self.st.rr_victim as usize]
            }
        }
    }

    /// Create a child task record on the current stack and register its
    /// body, then enqueue it on this core's queue (the paper's
    /// `task::spawn`). If the queue is full the task executes inline.
    ///
    /// # Panics
    ///
    /// Panics when called outside a task (before `run_main` set up the
    /// root record), or under the static scheduler.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce(&mut TaskCtx<'_>) + Send + 'static,
    {
        let costs = self.sh.costs;
        let parent_rc = *self.st.cur_rec.last().expect("spawn called outside a task");
        self.api.charge(costs.task_create, costs.task_create);
        // ready_count++ before the child becomes visible.
        self.api.amo(parent_rc, AmoOp::Add, 1);
        // The task record lives on the spawning core's stack (Fig. 3a:
        // `FibTask a(...)` is a stack object).
        let rec_addr = self.push_frame(REC_WORDS);
        self.api.store(rec_addr.offset_words(rec::RC), 0);
        self.api.store(
            rec_addr.offset_words(rec::PARENT_RC),
            parent_rc.raw() as u32,
        );
        self.api.store(rec_addr.offset_words(rec::RESULT), 0);
        if self.sh.config.scheduler == SchedulerKind::WorkDealing {
            self.spawn_dealing(rec_addr, Box::new(f));
            return;
        }
        self.sh.registry.insert(rec_addr.raw(), Box::new(f));
        self.st.stats.spawns += 1;

        let q = self.own_queue();
        let lk = queue::lock_addr(q);
        self.st.stats.lock_retries += lock::acquire(self.api, lk, &costs);
        let ok = queue::enqueue(self.api, q, rec_addr.raw() as u32, &costs);
        if ok {
            let depth = queue::len(self.api, q);
            self.st.stats.max_queue_depth = self.st.stats.max_queue_depth.max(depth);
        }
        lock::release(self.api, lk);
        if !ok {
            // Queue full: run the child inline (fully-strict order is
            // preserved; this bounds queue memory).
            self.st.stats.inline_executions += 1;
            self.execute_record(rec_addr);
        }
    }

    /// Block until every child of the current task has joined (the
    /// paper's `task::wait`): runs the scheduling loop until this
    /// task's `ready_count` reaches zero.
    pub fn wait(&mut self) {
        let rc = *self.st.cur_rec.last().expect("wait called outside a task");
        if self.sh.config.scheduler == SchedulerKind::WorkDealing {
            self.dealing_loop(Some(rc));
        } else {
            self.scheduling_loop(Some(rc));
        }
    }

    /// The scheduling loop (Fig. 4): with `wait_rc` set, run until that
    /// counter drains (a waiting parent); with `None`, run until the
    /// shutdown flag rises (an idle worker).
    pub(crate) fn scheduling_loop(&mut self, wait_rc: Option<Addr>) {
        let costs = self.sh.costs;
        let own_q = self.own_queue();
        let own_lk = queue::lock_addr(own_q);
        let done = self.done_flag(self.st.core);
        loop {
            self.api
                .charge(costs.sched_loop_overhead, costs.sched_loop_overhead);
            match wait_rc {
                Some(rc) => {
                    if self.api.load(rc) == 0 {
                        return;
                    }
                }
                None => {
                    if self.api.load(done) != 0 {
                        return;
                    }
                }
            }
            // LIFO pop from our own queue (unlocked emptiness peek
            // first, so a waiting parent doesn't bounce its own lock).
            let task = if queue::len(self.api, own_q) > 0 {
                self.st.stats.lock_retries += lock::acquire(self.api, own_lk, &costs);
                let t = queue::dequeue(self.api, own_q, &costs);
                lock::release(self.api, own_lk);
                t
            } else {
                None
            };
            if let Some(t) = task {
                self.execute_record(Addr(t as u64));
                continue;
            }
            // Empty: become a thief. Peek the victim's head/tail
            // without the lock first — thieves must not serialize a
            // busy victim's own queue operations just to discover an
            // empty queue.
            if self.sh.cores > 1 {
                // Victim selection, remote queue resolution, the
                // unlocked peek, and the transfer itself are all the
                // paper's steal-search overhead.
                let sprev = self.api.phase_begin(Phase::StealSearch);
                let victim = self.choose_victim();
                let vq = self.resolve_victim_queue(victim);
                let vlk = queue::lock_addr(vq);
                let stolen = if queue::len(self.api, vq) > 0 {
                    self.st.stats.lock_retries += lock::acquire(self.api, vlk, &costs);
                    let t = match self.sh.config.steal_amount {
                        StealAmount::One => queue::steal(self.api, vq, &costs),
                        StealAmount::Half => {
                            let avail = queue::len(self.api, vq);
                            let take = avail.div_ceil(2);
                            let mut got = queue::steal_up_to(self.api, vq, take, &costs);
                            let first = if got.is_empty() {
                                None
                            } else {
                                Some(got.remove(0))
                            };
                            if !got.is_empty() {
                                // Re-home the surplus on our own queue
                                // after releasing the victim's lock.
                                lock::release(self.api, vlk);
                                self.st.stats.lock_retries +=
                                    lock::acquire(self.api, own_lk, &costs);
                                for t in got {
                                    if !queue::enqueue(self.api, own_q, t, &costs) {
                                        // Our queue is full: hand it
                                        // straight back to execution
                                        // (real task work, not search).
                                        lock::release(self.api, own_lk);
                                        self.api.phase_restore(sprev);
                                        self.execute_record(Addr(t as u64));
                                        let _ = self.api.phase_begin(Phase::StealSearch);
                                        self.st.stats.lock_retries +=
                                            lock::acquire(self.api, own_lk, &costs);
                                    }
                                }
                                lock::release(self.api, own_lk);
                                // Victim lock already released.
                                match first {
                                    Some(t) => {
                                        self.st.stats.steals += 1;
                                        self.st.steal_fail_streak = 0;
                                        self.api.phase_restore(sprev);
                                        self.execute_record(Addr(t as u64));
                                        continue;
                                    }
                                    None => unreachable!("got was nonempty"),
                                }
                            }
                            first
                        }
                    };
                    lock::release(self.api, vlk);
                    t
                } else {
                    None
                };
                self.api.phase_restore(sprev);
                match stolen {
                    Some(t) => {
                        self.st.stats.steals += 1;
                        self.st.steal_fail_streak = 0;
                        self.trace_event(crate::trace::TraceEvent::Steal {
                            thief: self.st.core,
                            victim,
                            at: self.api.now(),
                        });
                        self.execute_record_traced(Addr(t as u64), true);
                    }
                    None => {
                        self.st.stats.failed_steals += 1;
                        let iprev = self.api.phase_begin(Phase::Idle);
                        if wait_rc.is_some() {
                            // A waiting parent must notice its join
                            // promptly; keep the retry tight.
                            self.api.charge(2, 8);
                        } else {
                            // Idle workers back off exponentially so
                            // they don't congest the network and the
                            // victims' queues.
                            let shift = self.st.steal_fail_streak.min(3);
                            self.st.steal_fail_streak += 1;
                            self.api.charge(2, 32u64 << shift);
                        }
                        self.api.phase_restore(iprev);
                    }
                }
            } else {
                self.api.charge(1, 32);
            }
        }
    }

    /// Execute the task whose record is at `rec_addr`: model the
    /// `execute()` call frame, run the body, then signal the parent by
    /// decrementing its `ready_count` with release semantics.
    pub(crate) fn execute_record(&mut self, rec_addr: Addr) {
        self.execute_record_traced(rec_addr, false)
    }

    pub(crate) fn execute_record_traced(&mut self, rec_addr: Addr, stolen: bool) {
        let body = self
            .sh
            .registry
            .take(rec_addr.raw())
            .expect("task record has no registered body");
        self.st.stats.tasks_executed += 1;
        let trace_start = self.sh.trace.as_ref().map(|_| self.api.now());
        self.run_body(rec_addr, body);
        if let Some(start) = trace_start {
            self.trace_event(crate::trace::TraceEvent::Task {
                core: self.st.core,
                record: rec_addr.raw(),
                start,
                end: self.api.now(),
                stolen,
            });
        }
        // Invariant: write the completion result, then release-
        // decrement the parent's counter — the parent's `wait()` spins
        // on the counter alone, so the result (and every store the
        // task made) must be ordered before the decrement lands.
        let parent_rc = self.api.load(rec_addr.offset_words(rec::PARENT_RC));
        self.api.store(rec_addr.offset_words(rec::RESULT), 1);
        if parent_rc != 0 {
            self.api.amo_release(Addr(parent_rc as u64), AmoOp::Sub, 1);
        }
    }

    /// Run `body` inside a modeled call frame with `rec_addr` as the
    /// current task record.
    fn run_body(&mut self, rec_addr: Addr, body: TaskBody) {
        let costs = self.sh.costs;
        let penalty = self.sh.sw_overflow_penalty;
        let extra = if penalty > 0 { 2 } else { 0 };
        self.api
            .charge(costs.call_overhead + extra, costs.call_overhead + penalty);
        let entry_frames = self.st.stack.frame_count();
        let base = self.push_frame(costs.frame_save_words);
        let ov = self.begin_overflow_phase();
        for i in 0..costs.frame_save_words {
            self.api.store(base.offset_words(i as u64), 0);
        }
        self.end_overflow_phase(ov);
        self.st.cur_rec.push(rec_addr);
        body(self);
        self.st.cur_rec.pop();
        while self.st.stack.frame_count() > entry_frames + 1 {
            self.pop_frame();
        }
        let ov = self.begin_overflow_phase();
        for i in 0..costs.frame_save_words {
            self.api.load(base.offset_words(i as u64));
        }
        self.end_overflow_phase(ov);
        self.pop_frame();
        self.api
            .charge(costs.call_overhead + extra, costs.call_overhead + penalty);
    }

    /// Core-0 entry: set up the root task record, run `main`, drain any
    /// unjoined children, and shut the workers down.
    pub(crate) fn run_main(&mut self, main: TaskBody) {
        let root = self.push_frame(REC_WORDS);
        self.api.store(root.offset_words(rec::RC), 0);
        self.api.store(root.offset_words(rec::PARENT_RC), 0);
        self.api.store(root.offset_words(rec::RESULT), 0);
        self.st.cur_rec.push(root);
        main(self);
        // Safety net: join anything `main` spawned without waiting for.
        self.wait();
        self.st.cur_rec.pop();
        self.shutdown_workers();
    }

    /// Raise every worker's shutdown flag (remote SPM stores).
    fn shutdown_workers(&mut self) {
        for core in 1..self.sh.cores as u32 {
            let flag = self.misc_addr(core, misc::DONE_FLAG);
            self.api.store(flag, 1);
        }
        // Invariant: all shutdown flags must be globally visible before
        // main halts — once main stops advancing time, nothing would
        // drain its store queue for the still-polling workers.
        self.api.fence();
    }
}
