//! [`TaskCtx`]: the programming interface tasks run against.
//!
//! A `TaskCtx` is handed to every task body, to the `main` closure on
//! core 0, and to loop bodies of the high-level patterns. It wraps the
//! simulator's [`CoreApi`] (timed loads/stores/AMOs) with the runtime
//! state of the executing core: its call stack (with DRAM overflow),
//! its SPM allocator, its task-record bookkeeping, and the shared
//! runtime structures.
//!
//! All data that tasks share must live in *simulated memory* and be
//! accessed through `TaskCtx` so the access is timed; Rust-side
//! captures should be limited to `Copy` values such as [`Addr`]s and
//! scalars (task bodies must be `'static`).

use crate::config::{RuntimeConfig, SchedulerKind};
use crate::costs::CostModel;
use crate::layout::{misc, Layout};
use crate::stack::StackEngine;
use crate::static_sched::StaticKernel;
use crate::stats::WorkerStats;
use crate::task::Registry;
use mosaic_mem::{Addr, AddrMap, AmoOp};
use mosaic_san::{Note, NoteSink};
use mosaic_sim::{CoreApi, Cycle, Phase};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runtime state shared (host-side) by all cores. Mutexes here are
/// never contended — the engine serializes core execution — they only
/// make the structure `Sync`.
pub struct Shared {
    /// The runtime configuration in force.
    pub config: RuntimeConfig,
    /// Instruction-cost model.
    pub costs: CostModel,
    /// Resolved memory layout.
    pub layout: Layout,
    /// The PGAS address map.
    pub map: AddrMap,
    /// Spawned-but-not-executed task bodies.
    pub registry: Registry,
    /// The static scheduler's published kernel.
    pub static_slot: Mutex<Option<StaticKernel>>,
    /// Timestamped marks recorded by tasks.
    pub marks: Mutex<Vec<(String, Cycle)>>,
    /// Per-core stats pushed by workers as they finish.
    pub finished_stats: Mutex<Vec<(usize, WorkerStats)>>,
    /// Machine seed (victim-selection RNG derives from it).
    pub seed: u64,
    /// Extra cycles per call/return for the software overflow scheme.
    pub sw_overflow_penalty: u64,
    /// Core count.
    pub cores: usize,
    /// Mesh columns (for locality-aware victim selection).
    pub mesh_cols: u16,
    /// Trace buffer (None when tracing is off).
    pub trace: Option<Mutex<Vec<crate::trace::TraceEvent>>>,
    /// Channel to the memory-model sanitizer for stack-frame and
    /// environment-freeze events (None when `--sanitize` is off).
    pub san_notes: Option<NoteSink>,
}

/// A captured-environment block for loop patterns: `words` words of
/// read-only captured state living at `addr` in simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvHandle {
    /// Base address of the environment block.
    pub addr: Addr,
    /// Number of captured words.
    pub words: u32,
}

/// Per-core mutable runtime state.
pub struct WorkerState {
    /// This core's id.
    pub core: u32,
    /// Call stack with DRAM overflow.
    pub stack: StackEngine,
    /// Victim-selection RNG (deterministic per core).
    pub rng: SmallRng,
    /// Stack of task records currently executing (innermost last).
    pub cur_rec: Vec<Addr>,
    /// Bump pointer into the user SPM region, bytes from region base.
    pub spm_user_brk: u32,
    /// Host-side statistics.
    pub stats: WorkerStats,
    /// Static-scheduler kernel generation (core 0: issued count).
    pub static_gen: u32,
    /// Round-robin victim cursor.
    pub rr_victim: u32,
    /// Consecutive failed steal attempts (drives backoff).
    pub steal_fail_streak: u32,
    /// `true` while running inside a statically scheduled kernel
    /// (nested parallel loops then execute inline).
    pub in_static_kernel: bool,
}

/// The task execution context. See the module docs.
pub struct TaskCtx<'a> {
    pub(crate) api: &'a mut CoreApi,
    pub(crate) sh: &'a Shared,
    pub(crate) st: WorkerState,
}

impl<'a> TaskCtx<'a> {
    /// Build the context for `core` (runtime-internal).
    pub(crate) fn new(api: &'a mut CoreApi, sh: &'a Shared, core: usize) -> Self {
        let layout = &sh.layout;
        let stack = StackEngine::new(
            core as u32,
            layout.stack_placement(),
            layout.spm_stack_top(),
            layout.dram_stack_top(core as u32),
            layout.dram_stack_words(),
        );
        let st = WorkerState {
            core: core as u32,
            stack,
            rng: SmallRng::seed_from_u64(
                sh.seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            cur_rec: Vec::new(),
            spm_user_brk: 0,
            stats: WorkerStats::default(),
            static_gen: 0,
            rr_victim: core as u32,
            steal_fail_streak: 0,
            in_static_kernel: false,
        };
        TaskCtx { api, sh, st }
    }

    // ------------------------------------------------------------------
    // Identity and configuration
    // ------------------------------------------------------------------

    /// The executing core's id.
    pub fn core_id(&self) -> usize {
        self.st.core as usize
    }

    /// Number of cores in the machine.
    pub fn cores(&self) -> usize {
        self.sh.cores
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.api.now()
    }

    /// The active scheduler.
    pub fn scheduler(&self) -> SchedulerKind {
        self.sh.config.scheduler
    }

    /// The PGAS address map (for computing data addresses).
    pub fn addr_map(&self) -> &AddrMap {
        &self.sh.map
    }

    // ------------------------------------------------------------------
    // Timed memory and compute
    // ------------------------------------------------------------------

    /// Timed blocking load.
    pub fn load(&mut self, addr: Addr) -> u32 {
        self.api.load(addr)
    }

    /// Timed non-blocking store.
    pub fn store(&mut self, addr: Addr, value: u32) {
        self.api.store(addr, value)
    }

    /// Timed blocking load annotated as a relaxed atomic: an
    /// intentional benign race (e.g. pull-direction BFS peeking at the
    /// level array while claimers update it). Identical timing to
    /// [`TaskCtx::load`]; the sanitizer treats relaxed↔relaxed pairs
    /// as non-racing but grants no acquire edge.
    pub fn load_relaxed(&mut self, addr: Addr) -> u32 {
        self.api.load_relaxed(addr)
    }

    /// Timed non-blocking store annotated as a relaxed atomic; the
    /// write-side counterpart of [`TaskCtx::load_relaxed`].
    pub fn store_relaxed(&mut self, addr: Addr, value: u32) {
        self.api.store_relaxed(addr, value)
    }

    /// Timed load of an IEEE-754 single.
    pub fn loadf(&mut self, addr: Addr) -> f32 {
        f32::from_bits(self.api.load(addr))
    }

    /// Timed store of an IEEE-754 single.
    pub fn storef(&mut self, addr: Addr, value: f32) {
        self.api.store(addr, value.to_bits())
    }

    /// Timed atomic; returns the old value.
    pub fn amo(&mut self, addr: Addr, op: AmoOp, operand: u32) -> u32 {
        self.api.amo(addr, op, operand)
    }

    /// Timed atomic with release semantics (fence first).
    pub fn amo_release(&mut self, addr: Addr, op: AmoOp, operand: u32) -> u32 {
        self.api.amo_release(addr, op, operand)
    }

    /// Drain outstanding stores.
    pub fn fence(&mut self) {
        self.api.fence()
    }

    /// Charge `instrs` instructions of pure compute taking `cycles`.
    pub fn compute(&mut self, instrs: u64, cycles: Cycle) {
        self.api.charge(instrs, cycles)
    }

    // ------------------------------------------------------------------
    // Stack and SPM allocation
    // ------------------------------------------------------------------

    /// Push a stack frame and tell the sanitizer about it (no simulated
    /// cost; all frame traffic is charged by the caller).
    pub(crate) fn push_frame(&mut self, words: u32) -> Addr {
        let base = self.st.stack.push(words, &self.sh.map);
        if let Some(s) = &self.sh.san_notes {
            s.lock().push(Note::StackPush {
                core: self.st.core as usize,
                base: base.raw(),
                words,
                in_dram: self.st.stack.top_in_dram(),
            });
        }
        base
    }

    /// Pop the most recent stack frame, telling the sanitizer which
    /// address range was freed.
    pub(crate) fn pop_frame(&mut self) {
        let (base, words, in_dram) = self.st.stack.pop();
        if let Some(s) = &self.sh.san_notes {
            s.lock().push(Note::StackPop {
                core: self.st.core as usize,
                base: base.raw(),
                words,
                in_dram,
            });
        }
    }

    /// Enter the profiler's stack-overflow phase when the top frame has
    /// been redirected to DRAM — its save/restore traffic is overflow
    /// handling, not useful work. Returns the phase to hand back to
    /// [`TaskCtx::end_overflow_phase`]; `None` (nothing to restore)
    /// when profiling is off or the frame is SPM-resident.
    pub(crate) fn begin_overflow_phase(&mut self) -> Option<Phase> {
        if !self.api.profiling() {
            return None;
        }
        self.st
            .stack
            .overflow_phase()
            .map(|ph| self.api.phase_begin(ph))
    }

    /// Leave the phase entered by [`TaskCtx::begin_overflow_phase`].
    pub(crate) fn end_overflow_phase(&mut self, prev: Option<Phase>) {
        if let Some(prev) = prev {
            self.api.phase_restore(prev);
        }
    }

    /// Run `f` inside a modeled function call: charges call/return
    /// overhead and saved-register traffic, allocates a frame (subject
    /// to SPM-overflow placement), and reclaims any leftover
    /// [`TaskCtx::stack_alloc`]s on exit.
    pub fn call<R>(&mut self, f: impl FnOnce(&mut TaskCtx<'_>) -> R) -> R {
        let costs = self.sh.costs;
        let penalty = self.sh.sw_overflow_penalty;
        let extra_instr = if penalty > 0 { 2 } else { 0 };
        self.api.charge(
            costs.call_overhead + extra_instr,
            costs.call_overhead + penalty,
        );
        let entry_frames = self.st.stack.frame_count();
        let base = self.push_frame(costs.frame_save_words);
        let ov = self.begin_overflow_phase();
        for i in 0..costs.frame_save_words {
            self.api.store(base.offset_words(i as u64), 0);
        }
        self.end_overflow_phase(ov);
        let r = f(self);
        while self.st.stack.frame_count() > entry_frames + 1 {
            self.pop_frame();
        }
        let ov = self.begin_overflow_phase();
        for i in 0..costs.frame_save_words {
            self.api.load(base.offset_words(i as u64));
        }
        self.end_overflow_phase(ov);
        self.pop_frame();
        self.api.charge(
            costs.call_overhead + extra_instr,
            costs.call_overhead + penalty,
        );
        r
    }

    /// Allocate `words` of stack space in the current frame; freed by
    /// the matching [`TaskCtx::stack_free`] or, at the latest, when the
    /// enclosing [`TaskCtx::call`] or task returns.
    pub fn stack_alloc(&mut self, words: u32) -> Addr {
        self.api.charge(1, 1); // sp adjustment
        self.push_frame(words)
    }

    /// Free the most recent [`TaskCtx::stack_alloc`].
    pub fn stack_free(&mut self) {
        self.api.charge(1, 1);
        self.pop_frame();
    }

    /// Allocate `bytes` from this core's `spm_reserve` region, like the
    /// paper's `spm_malloc`. Returns `None` when the request exceeds
    /// the reservation (the paper's null-pointer failure).
    pub fn spm_malloc(&mut self, bytes: u32) -> Option<Addr> {
        let layout = &self.sh.layout;
        let aligned = (self.st.spm_user_brk + 3) & !3;
        if aligned + bytes > layout.user_region_bytes() {
            return None;
        }
        self.st.spm_user_brk = aligned + bytes;
        Some(
            self.sh
                .map
                .spm_addr(self.st.core, layout.user_region_off() + aligned),
        )
    }

    /// Base address and size of this core's `spm_reserve` region (the
    /// pointer `spm_malloc` allocates from). Workloads that manage the
    /// whole reservation themselves (e.g. MatMul's tile buffer) use
    /// this directly.
    pub fn spm_user_region(&self) -> (Addr, u32) {
        let layout = &self.sh.layout;
        let bytes = layout.user_region_bytes();
        if bytes == 0 {
            return (Addr(0), 0);
        }
        (
            self.sh.map.spm_addr(self.st.core, layout.user_region_off()),
            bytes,
        )
    }

    // ------------------------------------------------------------------
    // Environment blocks (read-only data duplication, §4.3)
    // ------------------------------------------------------------------

    /// Materialize a `words`-word captured environment on the current
    /// stack (the lambda's captures, written once by the creating task).
    pub fn make_env(&mut self, words: u32) -> EnvHandle {
        if words == 0 {
            return EnvHandle {
                addr: Addr(0),
                words: 0,
            };
        }
        let addr = self.stack_alloc(words);
        for i in 0..words {
            self.api.store(addr.offset_words(i as u64), 0);
        }
        self.freeze_env(addr, words);
        EnvHandle { addr, words }
    }

    /// Read every captured word (a leaf task consuming its
    /// environment). With reference capture this hits the environment's
    /// home location; callers decide which handle to pass.
    pub fn env_read(&mut self, env: EnvHandle) {
        for i in 0..env.words {
            self.api.load(env.addr.offset_words(i as u64));
        }
    }

    /// Duplicate `env` into this core's current stack frame (capture by
    /// value): the read-only-data-duplication optimization.
    pub fn env_dup(&mut self, env: EnvHandle) -> EnvHandle {
        if env.words == 0 {
            return env;
        }
        let copy = self.stack_alloc(env.words);
        for i in 0..env.words {
            let v = self.api.load(env.addr.offset_words(i as u64));
            self.api.store(copy.offset_words(i as u64), v);
        }
        self.freeze_env(copy, env.words);
        EnvHandle {
            addr: copy,
            words: env.words,
        }
    }

    /// Tell the sanitizer an environment block is now read-only (it
    /// stays frozen until the frame holding it pops).
    fn freeze_env(&mut self, base: Addr, words: u32) {
        if let Some(s) = &self.sh.san_notes {
            s.lock().push(Note::FreezeEnv {
                core: self.st.core as usize,
                base: base.raw(),
                words,
            });
        }
    }

    // ------------------------------------------------------------------
    // Instrumentation
    // ------------------------------------------------------------------

    /// Record a timestamped mark (e.g. kernel boundaries for Fig. 6).
    pub fn mark(&mut self, label: impl Into<String>) {
        let now = self.api.now();
        let label = label.into();
        if let Some(tr) = &self.sh.trace {
            tr.lock().push(crate::trace::TraceEvent::Mark {
                core: self.st.core,
                label: label.clone(),
                at: now,
            });
        }
        self.sh.marks.lock().push((label, now));
    }

    /// Append a trace event if tracing is enabled (runtime-internal).
    pub(crate) fn trace_event(&self, e: crate::trace::TraceEvent) {
        if let Some(tr) = &self.sh.trace {
            tr.lock().push(e);
        }
    }

    /// This core's statistics so far.
    pub fn stats(&self) -> &WorkerStats {
        &self.st.stats
    }

    /// Address of a misc runtime word in `core`'s SPM.
    pub(crate) fn misc_addr(&self, core: u32, which: u32) -> Addr {
        self.sh.layout.misc_addr(&self.sh.map, core, which)
    }

    /// Address of `core`'s shutdown flag.
    pub(crate) fn done_flag(&self, core: u32) -> Addr {
        self.misc_addr(core, misc::DONE_FLAG)
    }

    /// Fold stack-engine stats into `stats` and publish them (called
    /// once when the core's behaviour finishes).
    pub(crate) fn finish(mut self) {
        self.st.stats.stack_overflows = self.st.stack.overflowed_frames;
        self.st.stats.max_stack_words = self.st.stack.max_depth_words;
        self.sh
            .finished_stats
            .lock()
            .push((self.st.core as usize, self.st.stats.clone()));
    }
}

impl std::fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCtx")
            .field("core", &self.st.core)
            .field("stack_depth", &self.st.stack.depth_words())
            .finish()
    }
}
