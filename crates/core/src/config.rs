//! Runtime configuration: the axes the paper evaluates.
//!
//! Table 1 sweeps six configurations: a static-loop scheduler and the
//! work-stealing runtime, each with the stack and (for work-stealing)
//! the task queue placed in DRAM or SPM. Read-only-data duplication
//! (§4.3) is a further toggle, enabled by default for all
//! work-stealing configurations as in the paper.

/// Which scheduler runs the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Statically partitioned parallel loops (the traditional manycore
    /// baseline, paper §5.2). `parallel_invoke` degenerates to
    /// sequential execution.
    Static,
    /// The Cilk/TBB-like work-stealing runtime (the contribution).
    WorkStealing,
    /// Work-*dealing* (related work: Zakkak & Pratikakis's JVM for
    /// non-coherent manycores): loaded cores push tasks to cores that
    /// advertise hunger; idle cores never touch remote queues. Shares
    /// the queue/stack placement machinery with work-stealing.
    WorkDealing,
}

/// Where a runtime data structure lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// In the shared DRAM address space (behind the LLC).
    Dram,
    /// In software-managed scratchpad memory.
    Spm,
}

/// How a thief picks its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimPolicy {
    /// Uniformly random among other cores (the paper's policy).
    Random,
    /// Cycle through cores in id order (ablation).
    RoundRobin,
    /// Prefer mesh-nearest victims, expanding outward (ablation:
    /// trades steal latency against finding work quickly).
    Nearest,
}

/// How much a successful steal takes from the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealAmount {
    /// One task from the head (the paper's policy).
    One,
    /// Half the victim's queue (steal-half, Dinan et al. SC'09);
    /// the extra tasks are re-enqueued on the thief's own queue.
    Half,
}

/// Complete runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Scheduler family.
    pub scheduler: SchedulerKind,
    /// Stack placement (both schedulers).
    pub stack: Placement,
    /// Task-queue placement (work-stealing only).
    pub queue: Placement,
    /// Read-only data duplication: capture loop environments by value
    /// along the task tree instead of by reference to the root frame.
    pub rd_duplication: bool,
    /// Victim selection policy.
    pub victim: VictimPolicy,
    /// How much to steal per successful attempt.
    pub steal_amount: StealAmount,
    /// Task-queue capacity in entries when DRAM-allocated. (The SPM
    /// queue derives its capacity from its 512-byte region.)
    pub dram_queue_capacity: u32,
    /// Bytes of SPM reserved for user data via `spm_reserve` (paper
    /// §4: programmers declare their maximum SPM use up front).
    pub spm_user_reserve: u32,
    /// Bytes of the SPM dedicated to the task queue when SPM-placed.
    pub spm_queue_bytes: u32,
    /// Per-core DRAM stack / overflow buffer, in bytes (paper: 256 KB).
    pub dram_stack_bytes: u32,
    /// Record per-task execution spans and steal events (see
    /// [`crate::trace`]); adds host-side overhead only.
    pub trace: bool,
}

impl RuntimeConfig {
    /// Work-dealing with the same SPM placements as
    /// [`RuntimeConfig::work_stealing`] (related-work comparison).
    pub fn work_dealing() -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::WorkDealing,
            ..RuntimeConfig::work_stealing()
        }
    }

    /// The paper's headline configuration: work-stealing with both the
    /// stack and the task queue in SPM.
    pub fn work_stealing() -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::WorkStealing,
            stack: Placement::Spm,
            queue: Placement::Spm,
            rd_duplication: true,
            victim: VictimPolicy::Random,
            steal_amount: StealAmount::One,
            dram_queue_capacity: 1024,
            spm_user_reserve: 0,
            spm_queue_bytes: 512,
            dram_stack_bytes: 256 * 1024,
            trace: false,
        }
    }

    /// The naive work-stealing runtime of §3.2: all runtime data in
    /// DRAM.
    pub fn work_stealing_naive() -> Self {
        RuntimeConfig {
            stack: Placement::Dram,
            queue: Placement::Dram,
            ..RuntimeConfig::work_stealing()
        }
    }

    /// The static-loop baseline with the given stack placement.
    pub fn static_loops(stack: Placement) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Static,
            stack,
            ..RuntimeConfig::work_stealing()
        }
    }

    /// All six configurations of Table 1, in column order, with a
    /// short label for each.
    pub fn table1_sweep() -> Vec<(&'static str, RuntimeConfig)> {
        vec![
            (
                "static/dram-stack",
                RuntimeConfig::static_loops(Placement::Dram),
            ),
            (
                "static/spm-stack",
                RuntimeConfig::static_loops(Placement::Spm),
            ),
            ("ws/dram-stack/dram-q", RuntimeConfig::work_stealing_naive()),
            (
                "ws/dram-stack/spm-q",
                RuntimeConfig {
                    stack: Placement::Dram,
                    queue: Placement::Spm,
                    ..RuntimeConfig::work_stealing()
                },
            ),
            (
                "ws/spm-stack/dram-q",
                RuntimeConfig {
                    stack: Placement::Spm,
                    queue: Placement::Dram,
                    ..RuntimeConfig::work_stealing()
                },
            ),
            ("ws/spm-stack/spm-q", RuntimeConfig::work_stealing()),
        ]
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::work_stealing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sweep_has_six_configs() {
        let sweep = RuntimeConfig::table1_sweep();
        assert_eq!(sweep.len(), 6);
        assert_eq!(
            sweep
                .iter()
                .filter(|(_, c)| c.scheduler == SchedulerKind::Static)
                .count(),
            2
        );
    }

    #[test]
    fn naive_config_is_all_dram() {
        let c = RuntimeConfig::work_stealing_naive();
        assert_eq!(c.stack, Placement::Dram);
        assert_eq!(c.queue, Placement::Dram);
        assert_eq!(c.scheduler, SchedulerKind::WorkStealing);
    }
}
