//! The static-loop baseline scheduler (paper §5.2).
//!
//! The traditional manycore runtime: a parallel loop is split into one
//! contiguous chunk per core, dispatched through per-core SPM
//! mailboxes, and joined at a DRAM barrier. There is no load
//! balancing; nested parallel loops execute inline on the core that
//! encounters them; `parallel_invoke` degenerates to sequential calls
//! (which is why MatrixTranspose and CilkSort have no static baseline
//! in the paper).

use crate::ctx::{EnvHandle, TaskCtx};
use crate::layout::misc;
use mosaic_mem::AmoOp;
use std::sync::Arc;

/// A loop body shared by every core executing the pattern.
pub type LoopBody = Arc<dyn Fn(&mut TaskCtx<'_>, u32) + Send + Sync>;

/// The kernel core 0 publishes for the workers under the static
/// scheduler.
#[derive(Clone)]
pub struct StaticKernel {
    /// Per-index body.
    pub body: LoopBody,
    /// The loop's captured environment (read once per chunk).
    pub env: EnvHandle,
}

impl std::fmt::Debug for StaticKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticKernel")
            .field("env", &self.env)
            .finish()
    }
}

/// `core`'s chunk of `[lo, hi)` split evenly over `p` cores.
pub fn chunk(lo: u32, hi: u32, core: u32, p: u32) -> (u32, u32) {
    let n = (hi - lo) as u64;
    let a = lo + (n * core as u64 / p as u64) as u32;
    let b = lo + (n * (core as u64 + 1) / p as u64) as u32;
    (a, b)
}

/// Run one chunk: read the environment once, then execute the body per
/// index with loop overhead.
fn run_chunk(ctx: &mut TaskCtx<'_>, lo: u32, hi: u32, env: EnvHandle, body: &LoopBody) {
    let iter_cost = ctx.sh.costs.loop_iter_overhead;
    ctx.env_read(env);
    let was_nested = ctx.st.in_static_kernel;
    ctx.st.in_static_kernel = true;
    for i in lo..hi {
        ctx.api.charge(iter_cost, iter_cost);
        body(ctx, i);
    }
    ctx.st.in_static_kernel = was_nested;
}

/// Statically schedule `body` over `[lo, hi)`. Must be reached on
/// core 0 unless nested inside an already-running kernel.
pub(crate) fn static_for(ctx: &mut TaskCtx<'_>, lo: u32, hi: u32, env: EnvHandle, body: LoopBody) {
    if lo >= hi {
        return;
    }
    let p = ctx.sh.cores as u32;
    if ctx.st.in_static_kernel || p == 1 {
        // Nested (or single-core) loops run inline.
        run_chunk(ctx, lo, hi, env, &body);
        return;
    }
    assert_eq!(ctx.st.core, 0, "static parallel loops must start on core 0");
    let costs = ctx.sh.costs;
    ctx.api.charge(costs.static_dispatch, costs.static_dispatch);

    *ctx.sh.static_slot.lock() = Some(StaticKernel {
        body: body.clone(),
        env,
    });
    ctx.st.static_gen += 1;
    let generation = ctx.st.static_gen;

    // Mail each worker its chunk, then raise the command word.
    for c in 1..p {
        let (clo, chi) = chunk(lo, hi, c, p);
        let arg_lo = ctx.misc_addr(c, misc::ARG_LO);
        let arg_hi = ctx.misc_addr(c, misc::ARG_HI);
        ctx.api.store(arg_lo, clo);
        ctx.api.store(arg_hi, chi);
    }
    // Invariant: the mailed chunk bounds must be globally visible
    // before the command word that tells the worker to read them.
    ctx.api.fence();
    for c in 1..p {
        let cmd = ctx.misc_addr(c, misc::CMD);
        ctx.api.store(cmd, generation);
    }
    // Invariant: drain the command stores before core 0 starts its own
    // chunk, so worker start-up latency is bounded by the network, not
    // by core 0's store queue backlog.
    ctx.api.fence();

    // Core 0 runs its own chunk...
    let (clo, chi) = chunk(lo, hi, 0, p);
    run_chunk(ctx, clo, chi, env, &body);

    // ...then waits at the barrier for the other p-1 cores. Barrier
    // waiting is modeled as a low-power wait (cycles elapse, next to
    // no instructions retire), matching the paper's Table-1 DI
    // accounting where static idle cores are quiet.
    let barrier = ctx.sh.layout.barrier_addr();
    while ctx.api.load(barrier) < p - 1 {
        ctx.api.charge(0, 48);
    }
    ctx.api.store(barrier, 0);
    // Invariant: the barrier reset must be globally visible before the
    // next generation's command goes out, or a fast worker's check-in
    // could be overwritten by the stale reset.
    ctx.api.fence();
}

/// The worker loop under the static scheduler: poll the local SPM
/// command word; on a new generation, fetch the published kernel, run
/// the mailed chunk, and check in at the barrier.
pub(crate) fn static_worker_loop(ctx: &mut TaskCtx<'_>) {
    let mut expected = 1u32;
    let core = ctx.st.core;
    let done = ctx.done_flag(core);
    let cmd_addr = ctx.misc_addr(core, misc::CMD);
    let arg_lo = ctx.misc_addr(core, misc::ARG_LO);
    let arg_hi = ctx.misc_addr(core, misc::ARG_HI);
    let barrier = ctx.sh.layout.barrier_addr();
    loop {
        // Low-power mailbox polling: the paper's static runtime leaves
        // idle cores nearly silent in the dynamic instruction counts.
        ctx.api.charge(0, 2);
        if ctx.api.load(done) != 0 {
            return;
        }
        let cmd = ctx.api.load(cmd_addr);
        if cmd >= expected {
            let lo = ctx.api.load(arg_lo);
            let hi = ctx.api.load(arg_hi);
            let kernel = ctx
                .sh
                .static_slot
                .lock()
                .clone()
                .expect("command raised without a published kernel");
            run_chunk(ctx, lo, hi, kernel.env, &kernel.body);
            // Invariant: release-increment — the chunk's result stores
            // must be globally visible before the check-in that core 0
            // counts, since core 0 reads results right after the
            // barrier fills.
            ctx.api.amo_release(barrier, AmoOp::Add, 1);
            expected = cmd + 1;
        } else {
            ctx.api.charge(0, 62); // poll backoff (low-power wait)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_the_range() {
        for (lo, hi, p) in [(0u32, 100u32, 7u32), (5, 6, 4), (0, 3, 8), (10, 10, 3)] {
            let mut covered = 0;
            for c in 0..p {
                let (a, b) = chunk(lo, hi, c, p);
                assert!(a <= b && a >= lo && b <= hi);
                if c > 0 {
                    assert_eq!(a, chunk(lo, hi, c - 1, p).1, "chunks must be contiguous");
                }
                covered += b - a;
            }
            assert_eq!(covered, hi - lo);
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let p = 8;
        let sizes: Vec<u32> = (0..p)
            .map(|c| {
                let (a, b) = chunk(0, 1000, c, p);
                b - a
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }
}
