//! Runtime-level statistics and the run report.

use mosaic_sim::{Cycle, MachineCounters};

/// Host-side counters one worker collects while running.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks spawned onto this core's queue.
    pub spawns: u64,
    /// Tasks executed by this core (popped, stolen, or inlined).
    pub tasks_executed: u64,
    /// Tasks executed inline because the queue was full.
    pub inline_executions: u64,
    /// Successful steals by this core.
    pub steals: u64,
    /// Tasks this core dealt to hungry cores (work-dealing mode).
    pub deals: u64,
    /// Steal attempts that found an empty victim queue.
    pub failed_steals: u64,
    /// Failed spin-lock acquire attempts.
    pub lock_retries: u64,
    /// Stack frames that overflowed to DRAM.
    pub stack_overflows: u64,
    /// High-water stack depth in words.
    pub max_stack_words: u32,
    /// High-water mark of this core's task-queue occupancy.
    pub max_queue_depth: u32,
}

impl WorkerStats {
    /// Fold `other` into an aggregate.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.spawns += other.spawns;
        self.tasks_executed += other.tasks_executed;
        self.inline_executions += other.inline_executions;
        self.steals += other.steals;
        self.deals += other.deals;
        self.failed_steals += other.failed_steals;
        self.lock_retries += other.lock_retries;
        self.stack_overflows += other.stack_overflows;
        self.max_stack_words = self.max_stack_words.max(other.max_stack_words);
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

/// Everything a completed run reports.
#[derive(Debug)]
pub struct RunReport {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Per-core architectural counters from the simulator.
    pub counters: MachineCounters,
    /// The machine, for reading results out of simulated memory.
    pub machine: mosaic_sim::Machine,
    /// Per-core runtime statistics.
    pub worker_stats: Vec<WorkerStats>,
    /// Timestamped marks recorded via `TaskCtx::mark` (label, cycle).
    pub marks: Vec<(String, Cycle)>,
    /// Trace events (empty unless `RuntimeConfig::trace` was set).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Sanitizer findings (None unless `MachineConfig::sanitize` was
    /// set; the sanitizer charges no simulated cycles, so `cycles` is
    /// identical either way).
    pub sanitizer: Option<mosaic_san::SanReport>,
    /// Cycle-attribution profile (None unless `MachineConfig::profile`
    /// was set; like the sanitizer, the profiler charges no simulated
    /// cycles, so `cycles` is identical either way).
    pub profile: Option<mosaic_sim::MachineProfile>,
}

impl RunReport {
    /// Total dynamic instructions.
    pub fn instructions(&self) -> u64 {
        self.counters.total_instructions()
    }

    /// Aggregate of all per-core runtime statistics.
    pub fn totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.worker_stats {
            t.merge(w);
        }
        t
    }

    /// Approximate per-core utilization: the fraction of the run each
    /// core spent issuing instructions or waiting on its own memory
    /// accesses (the remainder is scheduling backoff / low-power
    /// waiting). Instructions are counted at the modeled 1 IPC.
    pub fn utilization(&self) -> Vec<f64> {
        let total = self.cycles.max(1) as f64;
        self.counters
            .iter()
            .map(|c| ((c.instructions + c.mem_stall_cycles) as f64 / total).min(1.0))
            .collect()
    }

    /// Machine-wide mean utilization (see [`RunReport::utilization`]).
    pub fn mean_utilization(&self) -> f64 {
        let u = self.utilization();
        // detlint: allow(D004) -- derived report metric summed in fixed Vec order; not a golden number
        u.iter().sum::<f64>() / u.len().max(1) as f64
    }

    /// Cycles between two marks, by label.
    ///
    /// # Panics
    ///
    /// Panics if either label was never recorded.
    pub fn span(&self, from: &str, to: &str) -> Cycle {
        let find = |l: &str| {
            self.marks
                .iter()
                .find(|(m, _)| m == l)
                .unwrap_or_else(|| panic!("mark {l:?} not recorded"))
                .1
        };
        find(to) - find(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = WorkerStats {
            spawns: 2,
            max_stack_words: 10,
            ..WorkerStats::default()
        };
        let b = WorkerStats {
            spawns: 3,
            steals: 1,
            max_stack_words: 7,
            ..WorkerStats::default()
        };
        a.merge(&b);
        assert_eq!(a.spawns, 5);
        assert_eq!(a.steals, 1);
        assert_eq!(a.max_stack_words, 10);
    }
}
