//! The runtime's instruction-cost model.
//!
//! Workload memory traffic is simulated directly (every load/store/AMO
//! is a timed event), but the *pure-compute* instructions surrounding
//! them — address generation, branches, register shuffling — are
//! charged from this table so dynamic instruction counts (Table 1's
//! "DI") have the right relative magnitudes between the static and
//! work-stealing runtimes. Values are small RV32 instruction counts
//! estimated from the paper's description of each operation; at the
//! modeled 1 instruction/cycle issue rate, instructions == cycles.

/// Instruction/cycle charges for runtime-internal operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Constructing a task object (fields, vtable, metadata).
    pub task_create: u64,
    /// Bookkeeping around a queue push beyond its memory traffic.
    pub enqueue_overhead: u64,
    /// Bookkeeping around a queue pop / steal beyond memory traffic.
    pub dequeue_overhead: u64,
    /// One iteration of the scheduling loop (branches, checks).
    pub sched_loop_overhead: u64,
    /// Random victim selection (xorshift + bounds).
    pub victim_select: u64,
    /// Spin-lock backoff between failed acquire attempts, in cycles.
    pub lock_backoff: u64,
    /// Instructions per failed lock attempt (branch + retry setup).
    pub lock_retry_overhead: u64,
    /// Call/return overhead of a modeled function call (jal/ret plus
    /// callee prologue/epilogue arithmetic).
    pub call_overhead: u64,
    /// Words of saved registers written on frame push (and read back
    /// on pop): return address and frame pointer.
    pub frame_save_words: u32,
    /// Per-index overhead of a `parallel_for` leaf loop iteration.
    pub loop_iter_overhead: u64,
    /// Overhead of the static scheduler dispatching one kernel chunk.
    pub static_dispatch: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            task_create: 8,
            enqueue_overhead: 4,
            dequeue_overhead: 4,
            sched_loop_overhead: 4,
            victim_select: 6,
            lock_backoff: 16,
            lock_retry_overhead: 2,
            call_overhead: 4,
            frame_save_words: 2,
            loop_iter_overhead: 2,
            static_dispatch: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_small_and_nonzero() {
        let c = CostModel::default();
        for v in [
            c.task_create,
            c.enqueue_overhead,
            c.dequeue_overhead,
            c.sched_loop_overhead,
            c.victim_select,
            c.lock_backoff,
            c.call_overhead,
            c.loop_iter_overhead,
            c.static_dispatch,
        ] {
            assert!(v > 0 && v < 64, "cost {v} out of sane range");
        }
    }
}
