//! The work-*dealing* scheduler (related-work comparison).
//!
//! Zakkak & Pratikakis built a JVM for non-cache-coherent manycores
//! around work-dealing rather than work-stealing (paper §7); this
//! module implements that policy over the same substrate so the two
//! can be compared under identical placement and cost models:
//!
//! - Idle cores raise a *hunger* flag on a shared DRAM board and then
//!   spin only on their **own** queue — no remote queue traffic from
//!   the receiving side.
//! - A core whose queue has piled past [`DEAL_THRESHOLD`] probes a few
//!   hunger-board entries at spawn time; on finding a hungry core it
//!   claims the flag with an AMO and pushes the new task onto the
//!   hungry core's queue directly (remote lock + enqueue).
//!
//! The interesting contrast with stealing is *who pays*: dealing puts
//! the distribution cost on the busy core's critical path and relies
//! on the donor's guess about future imbalance, which is exactly why
//! the paper's work-stealing choice wins on irregular workloads.

use crate::ctx::TaskCtx;
use crate::task::TaskBody;
use crate::{lock, queue};
use mosaic_mem::{Addr, AmoOp};
use rand::Rng;

/// Own-queue depth at which a spawning core starts dealing.
pub const DEAL_THRESHOLD: u32 = 2;

/// Hunger-board probes per dealing attempt.
pub const DEAL_PROBES: u32 = 4;

impl TaskCtx<'_> {
    /// Try to find and claim a hungry core (returns its id).
    fn claim_hungry(&mut self) -> Option<u32> {
        let cores = self.sh.cores as u32;
        for _ in 0..DEAL_PROBES {
            let c = self.st.rng.random_range(0..cores);
            if c == self.st.core {
                continue;
            }
            let flag = self.sh.layout.hungry_addr(c);
            if self.api.load(flag) != 0 {
                // Claim it so two donors don't dogpile one core.
                let old = self.api.amo(flag, AmoOp::Swap, 0);
                if old != 0 {
                    return Some(c);
                }
            }
            self.api.charge(2, 2);
        }
        None
    }

    /// Work-dealing spawn path: if our queue is saturated and someone
    /// is hungry, push the freshly created record (already registered)
    /// onto their queue; otherwise enqueue locally. Returns `false`
    /// when the task could not be enqueued anywhere (caller inlines).
    pub(crate) fn deal_or_enqueue(&mut self, rec_addr: Addr) -> bool {
        let costs = self.sh.costs;
        let own_q = self.sh.layout.queue_block(&self.sh.map, self.st.core);
        let own_lk = queue::lock_addr(own_q);

        let backlog = queue::len(self.api, own_q);
        if backlog >= DEAL_THRESHOLD {
            if let Some(victim) = self.claim_hungry() {
                let vq = self.sh.layout.queue_block(&self.sh.map, victim);
                let vlk = queue::lock_addr(vq);
                self.st.stats.lock_retries += lock::acquire(self.api, vlk, &costs);
                let ok = queue::enqueue(self.api, vq, rec_addr.raw() as u32, &costs);
                lock::release(self.api, vlk);
                if ok {
                    self.st.stats.deals += 1;
                    return true;
                }
                // Their queue was full after all; fall through to ours.
            }
        }
        self.st.stats.lock_retries += lock::acquire(self.api, own_lk, &costs);
        let ok = queue::enqueue(self.api, own_q, rec_addr.raw() as u32, &costs);
        lock::release(self.api, own_lk);
        ok
    }

    /// The work-dealing scheduling loop: advertise hunger while idle,
    /// execute from the own queue only.
    pub(crate) fn dealing_loop(&mut self, wait_rc: Option<Addr>) {
        let costs = self.sh.costs;
        let own_q = self.sh.layout.queue_block(&self.sh.map, self.st.core);
        let own_lk = queue::lock_addr(own_q);
        let done = self.done_flag(self.st.core);
        let hungry = self.sh.layout.hungry_addr(self.st.core);
        let mut advertised = false;
        loop {
            self.api
                .charge(costs.sched_loop_overhead, costs.sched_loop_overhead);
            match wait_rc {
                Some(rc) => {
                    if self.api.load(rc) == 0 {
                        break;
                    }
                }
                None => {
                    if self.api.load(done) != 0 {
                        break;
                    }
                }
            }
            let task = if queue::len(self.api, own_q) > 0 {
                self.st.stats.lock_retries += lock::acquire(self.api, own_lk, &costs);
                let t = queue::dequeue(self.api, own_q, &costs);
                lock::release(self.api, own_lk);
                t
            } else {
                None
            };
            match task {
                Some(t) => {
                    if advertised {
                        // We got fed (or produced our own work): stop
                        // advertising while busy.
                        self.api.store(hungry, 0);
                        advertised = false;
                    }
                    self.execute_record(Addr(t as u64));
                }
                None => {
                    if !advertised {
                        self.api.store(hungry, 1);
                        // Invariant: the hunger advert (and the
                        // queue-empty state preceding it) must be
                        // globally visible before this core starts its
                        // poll backoff — a dealer only feeds cores
                        // whose advert has landed.
                        self.api.fence();
                        advertised = true;
                    }
                    self.api.charge(1, 24);
                }
            }
        }
        if advertised {
            self.api.store(hungry, 0);
        }
    }

    /// Work-dealing body for [`TaskCtx::spawn`]: create the record the
    /// same way, then route through [`TaskCtx::deal_or_enqueue`].
    pub(crate) fn spawn_dealing(&mut self, rec_addr: Addr, body: TaskBody) {
        self.sh.registry.insert(rec_addr.raw(), body);
        self.st.stats.spawns += 1;
        if !self.deal_or_enqueue(rec_addr) {
            self.st.stats.inline_executions += 1;
            self.execute_record(rec_addr);
        }
    }
}
