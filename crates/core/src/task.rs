//! Task records and the body registry.
//!
//! A *task record* is the simulated-memory footprint of a task object
//! (the paper's `Task` base class, Fig. 3b): it lives on the spawning
//! core's stack and holds the fields other cores touch remotely —
//! the reference counter (`ready_count`) that children decrement with
//! release-semantics AMOs, the parent's counter address, and a result
//! slot.
//!
//! The task's *behaviour* (the `execute()` override) is a Rust closure
//! kept host-side in a [`Registry`] keyed by the record address; it is
//! moved to whichever core dequeues or steals the record.

use crate::ctx::TaskCtx;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Words in a task record: `[ready_count, parent_rc_addr, result]`.
pub const REC_WORDS: u32 = 3;

/// Word offsets inside a task record.
pub mod rec {
    /// The `ready_count` reference counter (AMO target).
    pub const RC: u64 = 0;
    /// Address of the parent record's `ready_count` (0 = no parent).
    pub const PARENT_RC: u64 = 1;
    /// Result slot written by the child on completion.
    pub const RESULT: u64 = 2;
}

/// A task body: runs on whichever core executes the task.
pub type TaskBody = Box<dyn FnOnce(&mut TaskCtx<'_>) + Send>;

/// Host-side map from task-record address to body closure.
///
/// The engine serializes core execution, so the mutex is never
/// contended; it exists to make the type `Sync` across core threads.
/// Keyed by address with only point lookups today, but stored in a
/// `BTreeMap` so that any future iteration (debug dumps, leak checks)
/// is deterministic by construction.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<u64, TaskBody>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `body` under record address `rec`.
    ///
    /// # Panics
    ///
    /// Panics if a body is already registered at `rec` (would indicate
    /// a record being spawned twice before execution).
    pub fn insert(&self, rec: u64, body: TaskBody) {
        let prev = self.inner.lock().insert(rec, body);
        assert!(prev.is_none(), "duplicate task body at record {rec:#x}");
    }

    /// Remove and return the body for `rec`.
    pub fn take(&self, rec: u64) -> Option<TaskBody> {
        self.inner.lock().remove(&rec)
    }

    /// Number of registered (spawned but not yet executed) bodies.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when no bodies are pending.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let r = Registry::new();
        r.insert(0x100, Box::new(|_| {}));
        assert_eq!(r.len(), 1);
        assert!(r.take(0x100).is_some());
        assert!(r.take(0x100).is_none());
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate task body")]
    fn duplicate_record_panics() {
        let r = Registry::new();
        r.insert(0x100, Box::new(|_| {}));
        r.insert(0x100, Box::new(|_| {}));
    }
}
