//! Spin locks over simulated memory.
//!
//! The task queues are protected by spin locks (paper Fig. 4). Acquire
//! is an `amoswap` loop with constant backoff; release is a fence (so
//! critical-section writes drain) followed by a plain store of zero —
//! release semantics built from HammerBlade's primitives.

use crate::costs::CostModel;
use mosaic_mem::{Addr, AmoOp};
use mosaic_sim::{CoreApi, Phase};

/// Acquire the spin lock at `lock`. Returns the number of failed
/// attempts before success (for contention statistics).
pub fn acquire(api: &mut CoreApi, lock: Addr, costs: &CostModel) -> u64 {
    let prev = api.phase_begin(Phase::QueueLock);
    let mut failures = 0;
    let failures = loop {
        let old = api.amo(lock, AmoOp::Swap, 1);
        if old == 0 {
            break failures;
        }
        failures += 1;
        api.charge(costs.lock_retry_overhead, costs.lock_backoff);
    };
    api.phase_restore(prev);
    failures
}

/// Try to acquire once; `true` on success.
pub fn try_acquire(api: &mut CoreApi, lock: Addr) -> bool {
    let prev = api.phase_begin(Phase::QueueLock);
    let ok = api.amo(lock, AmoOp::Swap, 1) == 0;
    api.phase_restore(prev);
    ok
}

/// Release the spin lock at `lock` with release semantics.
pub fn release(api: &mut CoreApi, lock: Addr) {
    let prev = api.phase_begin(Phase::QueueLock);
    // Invariant: every store made inside the critical section (queue
    // words, task records) must be globally visible before the unlock
    // store — the next holder acquires through the lock amoswap alone.
    api.fence();
    api.store(lock, 0);
    api.phase_restore(prev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sim::{Engine, Machine, MachineConfig};

    #[test]
    fn lock_provides_mutual_exclusion() {
        let mut machine = Machine::new(MachineConfig::small(4, 1));
        let lock = machine.dram_alloc_words(1);
        let counter = machine.dram_alloc_words(1);
        let costs = CostModel::default();
        // Four cores each do 50 lock-protected read-modify-writes with
        // plain loads/stores; the total is only correct under mutual
        // exclusion.
        let r = Engine::run(machine, move |_| {
            Box::new(move |api| {
                for _ in 0..50 {
                    acquire(api, lock, &costs);
                    let v = api.load(counter);
                    api.charge(1, 1);
                    api.store(counter, v + 1);
                    release(api, lock);
                }
            })
        });
        assert_eq!(r.machine.peek(lock), 0, "lock left locked");
        assert_eq!(r.machine.peek(counter), 200);
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let mut machine = Machine::new(MachineConfig::small(2, 1));
        let lock = machine.dram_alloc_words(1);
        machine.poke(lock, 1); // pre-locked
        let r = Engine::run(machine, move |core| {
            Box::new(move |api| {
                if core == 0 {
                    assert!(!try_acquire(api, lock));
                }
            })
        });
        assert_eq!(r.machine.peek(lock), 1);
    }

    #[test]
    fn contended_acquire_reports_failures() {
        let mut machine = Machine::new(MachineConfig::small(2, 1));
        let lock = machine.dram_alloc_words(1);
        let fail_count = machine.dram_alloc_words(1);
        let costs = CostModel::default();
        let r = Engine::run(machine, move |core| {
            Box::new(move |api| {
                if core == 0 {
                    acquire(api, lock, &costs);
                    api.charge(1, 2000); // hold for a long time
                    release(api, lock);
                } else {
                    api.charge(1, 200); // let core 0 grab it first
                    let fails = acquire(api, lock, &costs);
                    api.store(fail_count, fails as u32);
                    release(api, lock);
                }
            })
        });
        assert!(r.machine.peek(fail_count) > 0, "expected contention");
    }
}
