//! Memory layout of runtime data structures.
//!
//! Per the paper (§4): the runtime claims whatever scratchpad the
//! programmer did not reserve. From the top of each 4 KB SPM:
//!
//! ```text
//! +--------------------------+  spm_size
//! |  user data (spm_reserve) |
//! +--------------------------+
//! |  task queue (512 B)      |  only when queue placement = SPM;
//! |   [lock][head][tail][..] |  SAME offset on every core, so a thief
//! +--------------------------+  computes remote queue/lock addresses
//! |  misc runtime words      |  directly (get_remote_ptr, Fig. 4b)
//! +--------------------------+  <- stack top (grows down)
//! |  stack ...               |
//! |  v                       |
//! +--------------------------+  0   <- DRAM-overflow threshold
//! ```
//!
//! When the queue is DRAM-placed, thieves must first load the victim's
//! queue pointer from a DRAM directory (`tq[]` in Fig. 4a) — the extra
//! dependent access the SPM layout eliminates.

use crate::config::{Placement, RuntimeConfig};
use mosaic_mem::{Addr, AddrMap};
use mosaic_san::LayoutSpec;

/// Number of header words in a task-queue block: lock, head, tail,
/// capacity.
pub const QUEUE_HDR_WORDS: u32 = 4;

/// Minimum SPM stack bytes an SPM-placed stack must be left with; a
/// reservation that squeezes the stack below this is a configuration
/// error, not a layout.
pub const MIN_SPM_STACK_BYTES: u32 = 64;

/// Bytes of SPM kept for miscellaneous runtime words (done flag,
/// static-scheduler mailbox).
pub const MISC_BYTES: u32 = 32;

/// Extra bytes per core of DRAM stack used to stagger (color) stack
/// bases across cache banks and sets.
pub const STACK_COLOR_BYTES: u64 = 4096;

/// Byte offsets inside the misc region.
pub mod misc {
    /// Worker shutdown flag (written remotely by core 0 at exit).
    pub const DONE_FLAG: u32 = 0;
    /// Static-scheduler kernel generation mailbox.
    pub const CMD: u32 = 4;
    /// Static-scheduler chunk low bound.
    pub const ARG_LO: u32 = 8;
    /// Static-scheduler chunk high bound.
    pub const ARG_HI: u32 = 12;
}

/// Resolved addresses/offsets of every runtime structure.
#[derive(Debug, Clone)]
pub struct Layout {
    cores: u32,
    spm_size: u32,
    stack: Placement,
    queue: Placement,
    /// SPM byte offset of the misc region (uniform across cores).
    misc_off: u32,
    /// SPM byte offset of the queue block when SPM-placed.
    spm_queue_off: u32,
    /// Entries in the SPM queue.
    spm_queue_cap: u32,
    /// Stack top offset: SPM stack occupies `[0, stack_top)`.
    spm_stack_top: u32,
    /// SPM byte offset of the user (`spm_reserve`) region.
    user_off: u32,
    /// DRAM base of the queue-pointer directory (`tq[]`), one word per
    /// core; used only when the queue is DRAM-placed.
    dram_dir: Addr,
    /// DRAM base of the per-core queue blocks.
    dram_queue_blocks: Addr,
    /// Entries in each DRAM queue.
    dram_queue_cap: u32,
    /// Words per DRAM queue block (header + entries).
    dram_queue_words: u32,
    /// DRAM base of the per-core stack / overflow buffers.
    dram_stacks: Addr,
    /// Bytes per core of DRAM stack.
    dram_stack_bytes: u32,
    /// DRAM word used as the static scheduler's barrier counter.
    barrier: Addr,
    /// DRAM base of the work-dealing hunger board (one word per core).
    hungry: Addr,
}

impl Layout {
    /// Compute the layout for `config` on a machine with `cores` cores
    /// of `spm_size`-byte SPMs, allocating DRAM blocks via `alloc`
    /// (which must return 16-byte-aligned addresses).
    ///
    /// # Panics
    ///
    /// Panics if the SPM budget is over-committed (user reservation +
    /// queue + misc exceed the SPM, or no room is left for the stack
    /// when the stack is SPM-placed).
    pub fn compute(
        config: &RuntimeConfig,
        cores: u32,
        spm_size: u32,
        alloc: impl FnMut(u64) -> Addr,
    ) -> Layout {
        match Layout::try_compute(config, cores, spm_size, alloc) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Layout::compute`]: rejects configurations
    /// whose SPM reservation leaves no room for the queue block, misc
    /// words, or (when SPM-placed) a [`MIN_SPM_STACK_BYTES`] stack,
    /// instead of silently mis-laying-out the scratchpad.
    pub fn try_compute(
        config: &RuntimeConfig,
        cores: u32,
        spm_size: u32,
        mut alloc: impl FnMut(u64) -> Addr,
    ) -> Result<Layout, String> {
        let user = config.spm_user_reserve;
        if user > spm_size {
            return Err(format!(
                "spm_reserve exceeds the scratchpad ({user} > {spm_size} bytes)"
            ));
        }
        let user_off = spm_size - user;

        let queue_bytes = if config.queue == Placement::Spm {
            config.spm_queue_bytes
        } else {
            0
        };
        if queue_bytes % 4 != 0 || (queue_bytes != 0 && queue_bytes / 4 <= QUEUE_HDR_WORDS) {
            return Err(format!(
                "SPM queue region too small for header ({queue_bytes} bytes)"
            ));
        }
        if user + queue_bytes + MISC_BYTES > spm_size {
            return Err(format!(
                "SPM over-committed: user {user} + queue {queue_bytes} + misc {MISC_BYTES} \
                 exceed the {spm_size}-byte scratchpad"
            ));
        }
        let spm_queue_off = user_off - queue_bytes;
        let spm_queue_cap = if queue_bytes > 0 {
            queue_bytes / 4 - QUEUE_HDR_WORDS
        } else {
            0
        };
        let misc_off = spm_queue_off - MISC_BYTES;
        let spm_stack_top = misc_off;
        if config.stack == Placement::Spm && spm_stack_top < MIN_SPM_STACK_BYTES {
            return Err(format!(
                "no usable SPM left for the stack ({spm_stack_top} bytes, \
                 need {MIN_SPM_STACK_BYTES})"
            ));
        }

        let dram_queue_cap = config.dram_queue_capacity;
        let dram_queue_words = QUEUE_HDR_WORDS + dram_queue_cap;
        let dram_dir = alloc(cores as u64 * 4);
        let dram_queue_blocks = alloc(cores as u64 * dram_queue_words as u64 * 4);
        // Per-core stacks get an extra coloring page: a power-of-two
        // stride would alias every core's hot stack lines onto the
        // same LLC bank/set and DRAM bank (real allocators stagger
        // mappings; see dram_stack_top).
        let dram_stacks =
            alloc(cores as u64 * (config.dram_stack_bytes as u64 + STACK_COLOR_BYTES));
        let barrier = alloc(4);
        let hungry = alloc(cores as u64 * 4);

        Ok(Layout {
            cores,
            spm_size,
            stack: config.stack,
            queue: config.queue,
            misc_off,
            spm_queue_off,
            spm_queue_cap,
            spm_stack_top,
            user_off,
            dram_dir,
            dram_queue_blocks,
            dram_queue_cap,
            dram_queue_words,
            dram_stacks,
            dram_stack_bytes: config.dram_stack_bytes,
            barrier,
            hungry,
        })
    }

    /// Describe this layout to the memory-model sanitizer: which words
    /// are locks, which DRAM ranges are intentional synchronization
    /// structures (exempt from data-race checking), and the stack /
    /// user-region geometry.
    pub fn san_spec(&self, map: &AddrMap) -> LayoutSpec {
        let lock_words = (0..self.cores)
            .map(|c| self.queue_block(map, c).raw())
            .collect();
        let mut sync_ranges = Vec::new();
        if self.queue == Placement::Dram {
            // Queue headers and entries: head/tail are peeked without
            // the lock (intentional benign race in `queue::len`).
            let qb = self.dram_queue_blocks.raw();
            sync_ranges.push((
                qb,
                qb + self.cores as u64 * self.dram_queue_words as u64 * 4,
            ));
            let dir = self.dram_dir.raw();
            sync_ranges.push((dir, dir + self.cores as u64 * 4));
        }
        let h = self.hungry.raw();
        sync_ranges.push((h, h + self.cores as u64 * 4));
        let b = self.barrier.raw();
        sync_ranges.push((b, b + 4));
        LayoutSpec {
            user_off: self.user_off,
            spm_size: self.spm_size,
            spm_stack_words: self.spm_stack_words(),
            dram_stack_words: self.dram_stack_words(),
            lock_words,
            sync_ranges,
        }
    }

    /// The work-dealing hunger flag of `core` (a DRAM word).
    pub fn hungry_addr(&self, core: u32) -> Addr {
        self.hungry.offset(core as u64 * 4)
    }

    /// The static scheduler's barrier counter (a DRAM word).
    pub fn barrier_addr(&self) -> Addr {
        self.barrier
    }

    /// Stack placement.
    pub fn stack_placement(&self) -> Placement {
        self.stack
    }

    /// Queue placement.
    pub fn queue_placement(&self) -> Placement {
        self.queue
    }

    /// Address of a misc word (see [`misc`]) in `core`'s SPM.
    pub fn misc_addr(&self, map: &AddrMap, core: u32, which: u32) -> Addr {
        debug_assert!(which < MISC_BYTES);
        map.spm_addr(core, self.misc_off + which)
    }

    /// Base address of `core`'s task-queue block (header word 0 is the
    /// lock).
    pub fn queue_block(&self, map: &AddrMap, core: u32) -> Addr {
        match self.queue {
            Placement::Spm => map.spm_addr(core, self.spm_queue_off),
            Placement::Dram => self
                .dram_queue_blocks
                .offset(core as u64 * self.dram_queue_words as u64 * 4),
        }
    }

    /// Queue capacity in entries.
    pub fn queue_capacity(&self) -> u32 {
        match self.queue {
            Placement::Spm => self.spm_queue_cap,
            Placement::Dram => self.dram_queue_cap,
        }
    }

    /// Address of the DRAM directory entry holding `core`'s queue
    /// pointer (`&tq[core]`, Fig. 4a). Only meaningful for DRAM queues.
    pub fn queue_dir_entry(&self, core: u32) -> Addr {
        self.dram_dir.offset(core as u64 * 4)
    }

    /// Top (exclusive, grows down) of `core`'s SPM stack region, as a
    /// byte offset; the DRAM-overflow threshold is offset 0.
    pub fn spm_stack_top(&self) -> u32 {
        self.spm_stack_top
    }

    /// SPM stack capacity in words.
    pub fn spm_stack_words(&self) -> u32 {
        self.spm_stack_top / 4
    }

    /// Top (exclusive, grows down) of `core`'s DRAM stack / overflow
    /// buffer. Tops are staggered by a per-core line-granular color so
    /// hot stack lines spread across LLC banks, sets, and DRAM banks.
    pub fn dram_stack_top(&self, core: u32) -> Addr {
        let stride = self.dram_stack_bytes as u64 + STACK_COLOR_BYTES;
        let color = (core as u64 % (STACK_COLOR_BYTES / 64)) * 64;
        self.dram_stacks.offset((core as u64 + 1) * stride - color)
    }

    /// DRAM stack capacity in words (per core).
    pub fn dram_stack_words(&self) -> u32 {
        self.dram_stack_bytes / 4
    }

    /// Base byte offset of the user `spm_reserve` region.
    pub fn user_region_off(&self) -> u32 {
        self.user_off
    }

    /// Bytes available to `spm_malloc`.
    pub fn user_region_bytes(&self) -> u32 {
        self.spm_size - self.user_off
    }

    /// Number of cores this layout spans.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Initialize simulated memory: queue headers (capacity word) and,
    /// for DRAM queues, the `tq[]` pointer directory.
    pub fn initialize(&self, map: &AddrMap, mut poke: impl FnMut(Addr, u32)) {
        for core in 0..self.cores {
            let q = self.queue_block(map, core);
            poke(q.offset_words(3), self.queue_capacity());
            if self.queue == Placement::Dram {
                poke(self.queue_dir_entry(core), q.raw() as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;

    fn layout(cfg: &RuntimeConfig) -> (Layout, AddrMap) {
        let map = AddrMap::new(8, 4096);
        let mut brk = 0u64;
        let l = Layout::compute(cfg, 8, 4096, |bytes| {
            let a = Addr(mosaic_mem::AddrMap::DRAM_BASE + brk);
            brk += (bytes + 15) & !15;
            a
        });
        (l, map)
    }

    #[test]
    fn spm_regions_are_disjoint_and_ordered() {
        let cfg = RuntimeConfig {
            spm_user_reserve: 1024,
            ..RuntimeConfig::work_stealing()
        };
        let (l, _) = layout(&cfg);
        assert_eq!(l.user_region_off(), 4096 - 1024);
        assert_eq!(l.user_region_bytes(), 1024);
        // queue sits right below user, misc below queue, stack below misc
        assert_eq!(l.spm_queue_off, 4096 - 1024 - 512);
        assert_eq!(l.misc_off, l.spm_queue_off - MISC_BYTES);
        assert_eq!(l.spm_stack_top(), l.misc_off);
        assert!(l.spm_stack_words() > 0);
    }

    #[test]
    fn dram_queue_frees_spm_for_stack() {
        let spm_q = RuntimeConfig::work_stealing();
        let dram_q = RuntimeConfig {
            queue: Placement::Dram,
            ..RuntimeConfig::work_stealing()
        };
        let (l_spm, _) = layout(&spm_q);
        let (l_dram, _) = layout(&dram_q);
        assert_eq!(
            l_dram.spm_stack_top() - l_spm.spm_stack_top(),
            spm_q.spm_queue_bytes
        );
    }

    #[test]
    fn spm_queue_capacity_matches_512_bytes() {
        let (l, _) = layout(&RuntimeConfig::work_stealing());
        assert_eq!(l.queue_capacity(), 512 / 4 - QUEUE_HDR_WORDS);
    }

    #[test]
    fn queue_block_offset_uniform_across_cores() {
        let (l, map) = layout(&RuntimeConfig::work_stealing());
        let base0 = l.queue_block(&map, 0).raw() - map.spm_addr(0, 0).raw();
        let base5 = l.queue_block(&map, 5).raw() - map.spm_addr(5, 0).raw();
        assert_eq!(base0, base5, "thieves rely on a fixed offset");
    }

    #[test]
    fn dram_queues_are_disjoint_per_core() {
        let cfg = RuntimeConfig {
            queue: Placement::Dram,
            ..RuntimeConfig::work_stealing()
        };
        let (l, map) = layout(&cfg);
        let b0 = l.queue_block(&map, 0);
        let b1 = l.queue_block(&map, 1);
        assert!(b1.raw() >= b0.raw() + (QUEUE_HDR_WORDS + l.queue_capacity()) as u64 * 4);
    }

    #[test]
    fn initialize_writes_capacity_and_directory() {
        let cfg = RuntimeConfig {
            queue: Placement::Dram,
            ..RuntimeConfig::work_stealing()
        };
        let (l, map) = layout(&cfg);
        let mut writes = std::collections::BTreeMap::new();
        l.initialize(&map, |a, v| {
            writes.insert(a, v);
        });
        let q0 = l.queue_block(&map, 0);
        assert_eq!(writes[&q0.offset_words(3)], l.queue_capacity());
        assert_eq!(writes[&l.queue_dir_entry(0)], q0.raw() as u32);
    }

    #[test]
    #[should_panic(expected = "over-committed")]
    fn over_reservation_panics() {
        let cfg = RuntimeConfig {
            spm_user_reserve: 4096,
            ..RuntimeConfig::work_stealing()
        };
        layout(&cfg);
    }

    #[test]
    fn dram_stack_regions_are_disjoint() {
        let (l, _) = layout(&RuntimeConfig::work_stealing());
        for core in 0..7u32 {
            // Region of core (top-down dram_stack_bytes) must not
            // cross into core+1's region.
            let top = l.dram_stack_top(core).raw();
            let next_base = l.dram_stack_top(core + 1).raw() - l.dram_stack_bytes as u64;
            assert!(top <= next_base, "core {core} stack overlaps successor");
        }
    }

    #[test]
    fn dram_stack_tops_are_colored_across_banks() {
        let (l, _) = layout(&RuntimeConfig::work_stealing());
        // With a 64 B line and power-of-two bank count, identical
        // (top % (banks * 64)) across cores would mean single-bank
        // aliasing; coloring must spread them.
        let banks = 16u64;
        let mut seen = std::collections::BTreeSet::new();
        for core in 0..16u32 {
            seen.insert(l.dram_stack_top(core).raw() / 64 % banks);
        }
        assert!(seen.len() > 8, "stack tops alias to {} banks", seen.len());
    }
}
