//! The high-level templated patterns: `parallel_invoke`,
//! `parallel_for`, and `parallel_reduce` (paper Fig. 3c–e).
//!
//! Under the work-stealing scheduler these build fork-join task trees
//! by recursive binary splitting (the continuation — the right half —
//! is spawned onto the queue, the left half executes inline, Cilk
//! style). Under the static scheduler, `parallel_for`/`parallel_reduce`
//! dispatch contiguous chunks and `parallel_invoke` runs sequentially.
//!
//! Each loop materializes a captured-environment block ([`EnvHandle`])
//! on the creating task's stack. With read-only data duplication *off*
//! every leaf reads the root block (the congestion of paper Fig. 5);
//! with it *on* each spawned subtree carries its own copy (§4.3).

use crate::config::SchedulerKind;
use crate::ctx::{EnvHandle, TaskCtx};
use crate::static_sched::{self, LoopBody};
use parking_lot::Mutex;
use std::sync::Arc;

/// A shared per-index map function for [`TaskCtx::parallel_reduce`].
pub type ReduceMap<R> = Arc<dyn Fn(&mut TaskCtx<'_>, u32) -> R + Send + Sync>;
/// A shared combiner for [`TaskCtx::parallel_reduce`].
pub type ReduceCombine<R> = Arc<dyn Fn(R, R) -> R + Send + Sync>;

impl TaskCtx<'_> {
    /// Run `f1` and `f2` as parallel tasks and return both results
    /// (divide-and-conquer; paper Fig. 3c). `f2` is spawned, `f1` runs
    /// inline, then the task waits for the join.
    pub fn parallel_invoke<R1, R2, F1, F2>(&mut self, f1: F1, f2: F2) -> (R1, R2)
    where
        F1: FnOnce(&mut TaskCtx<'_>) -> R1 + Send + 'static,
        F2: FnOnce(&mut TaskCtx<'_>) -> R2 + Send + 'static,
        R1: Send + 'static,
        R2: Send + 'static,
    {
        if self.scheduler() == SchedulerKind::Static {
            // No dynamic runtime: spawn-and-sync serializes (paper
            // §5.3: such workloads run on a single core).
            let r1 = self.call(f1);
            let r2 = self.call(f2);
            return (r1, r2);
        }
        // The whole pattern runs inside a modeled call frame so the
        // spawned child's task record (allocated on this stack) is
        // reclaimed when the pattern returns.
        self.call(move |ctx| {
            let slot: Arc<Mutex<Option<R2>>> = Arc::new(Mutex::new(None));
            let out = slot.clone();
            ctx.spawn(move |ctx| {
                let r = f2(ctx);
                *out.lock() = Some(r);
            });
            let r1 = ctx.call(f1);
            ctx.wait();
            let r2 = slot
                .lock()
                .take()
                .expect("joined child did not produce a result");
            (r1, r2)
        })
    }

    /// Apply `body` to every index in `[lo, hi)` in parallel (paper
    /// Fig. 3d). `grain` is the maximum indices per leaf task;
    /// `env_words` models the words the lambda captures.
    pub fn parallel_for<F>(&mut self, lo: u32, hi: u32, grain: u32, env_words: u32, body: F)
    where
        F: Fn(&mut TaskCtx<'_>, u32) + Send + Sync + 'static,
    {
        self.parallel_for_arc(lo, hi, grain, env_words, Arc::new(body));
    }

    /// [`TaskCtx::parallel_for`] taking a shared body (avoids re-wrapping in
    /// recursive workloads).
    pub fn parallel_for_arc(
        &mut self,
        lo: u32,
        hi: u32,
        grain: u32,
        env_words: u32,
        body: LoopBody,
    ) {
        if lo >= hi {
            return;
        }
        // A call frame bounds the lifetime of the environment block,
        // duplicated environments, and spawned task records.
        self.call(move |ctx| {
            let env = ctx.make_env(env_words);
            match ctx.scheduler() {
                SchedulerKind::Static => static_sched::static_for(ctx, lo, hi, env, body),
                SchedulerKind::WorkStealing | SchedulerKind::WorkDealing => {
                    let grain = grain.max(1);
                    ctx.pf_split(lo, hi, grain, env, body);
                }
            }
        });
    }

    /// Recursive splitting for work-stealing `parallel_for`.
    pub(crate) fn pf_split(
        &mut self,
        lo: u32,
        hi: u32,
        grain: u32,
        env: EnvHandle,
        body: LoopBody,
    ) {
        if hi - lo <= grain {
            let iter_cost = self.sh.costs.loop_iter_overhead;
            self.env_read(env);
            for i in lo..hi {
                self.compute(iter_cost, iter_cost);
                // Reference-captured state is re-read per use (paper
                // §4.3: e.g. the `dst` pointer in Fig. 3d); with
                // duplication off every one of these loads lands on
                // the root task's frame — the Fig. 5 hot spot.
                if env.words > 0 {
                    self.load(env.addr);
                }
                body(self, i);
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        // With duplication on, the spawned half re-captures the
        // environment *by value on whichever core executes it* (TBB
        // copy-constructs the body functor when a range task runs), so
        // a stolen subtree's leaves read a local copy. With it off,
        // the root environment is shared by reference all the way down
        // — the Fig. 5 hot spot.
        let rd = self.sh.config.rd_duplication;
        let rbody = body.clone();
        self.spawn(move |ctx| {
            let myenv = if rd { ctx.env_dup(env) } else { env };
            ctx.pf_split(mid, hi, grain, myenv, rbody)
        });
        // Left half executes inline (its environment is already local).
        self.call(|ctx| ctx.pf_split(lo, mid, grain, env, body));
        self.wait();
    }

    /// Parallel reduction over `[lo, hi)` (paper Fig. 3e): `map`
    /// produces a value per index, `combine` folds values, `ident` is
    /// the identity.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's reduce signature; bundling would hide the API
    pub fn parallel_reduce<R, M, C>(
        &mut self,
        lo: u32,
        hi: u32,
        grain: u32,
        env_words: u32,
        ident: R,
        map: M,
        combine: C,
    ) -> R
    where
        R: Clone + Send + 'static,
        M: Fn(&mut TaskCtx<'_>, u32) -> R + Send + Sync + 'static,
        C: Fn(R, R) -> R + Send + Sync + 'static,
    {
        if lo >= hi {
            return ident;
        }
        let map: ReduceMap<R> = Arc::new(map);
        let combine: ReduceCombine<R> = Arc::new(combine);
        self.call(move |ctx| {
            ctx.parallel_reduce_inner(lo, hi, grain, env_words, ident, map, combine)
        })
    }

    /// Body of [`TaskCtx::parallel_reduce`], inside its call frame.
    #[allow(clippy::too_many_arguments)] // same parameter list as the public entry point it implements
    fn parallel_reduce_inner<R>(
        &mut self,
        lo: u32,
        hi: u32,
        grain: u32,
        env_words: u32,
        ident: R,
        map: ReduceMap<R>,
        combine: ReduceCombine<R>,
    ) -> R
    where
        R: Clone + Send + 'static,
    {
        let env = self.make_env(env_words);
        match self.scheduler() {
            SchedulerKind::WorkStealing | SchedulerKind::WorkDealing => {
                let grain = grain.max(1);
                self.pr_split(lo, hi, grain, env, ident, map, combine)
            }
            SchedulerKind::Static => {
                // Per-core partials folded through the generic static
                // kernel, combined on core 0 after the barrier.
                let partials: Arc<Vec<Mutex<R>>> = Arc::new(
                    (0..self.cores())
                        .map(|_| Mutex::new(ident.clone()))
                        .collect(),
                );
                let p2 = partials.clone();
                let m2 = map.clone();
                let c2 = combine.clone();
                let body: LoopBody = Arc::new(move |ctx, i| {
                    let v = m2(ctx, i);
                    let cell = &p2[ctx.core_id()];
                    let old = cell.lock().clone();
                    // Local accumulate: one ALU op class of work.
                    ctx.compute(2, 2);
                    *cell.lock() = c2(old, v);
                });
                static_sched::static_for(self, lo, hi, env, body);
                let mut acc = ident;
                for cell in partials.iter() {
                    // Core 0 gathers one partial per core.
                    self.compute(2, 2);
                    acc = combine(acc, cell.lock().clone());
                }
                acc
            }
        }
    }

    /// Recursive splitting for work-stealing `parallel_reduce`.
    #[allow(clippy::too_many_arguments)] // split state rides the recursion explicitly (no heap env struct)
    fn pr_split<R>(
        &mut self,
        lo: u32,
        hi: u32,
        grain: u32,
        env: EnvHandle,
        ident: R,
        map: ReduceMap<R>,
        combine: ReduceCombine<R>,
    ) -> R
    where
        R: Clone + Send + 'static,
    {
        if hi - lo <= grain {
            let iter_cost = self.sh.costs.loop_iter_overhead;
            self.env_read(env);
            let mut acc = ident;
            for i in lo..hi {
                self.compute(iter_cost, iter_cost);
                if env.words > 0 {
                    self.load(env.addr);
                }
                let v = map(self, i);
                self.compute(2, 2); // fold ALU work
                acc = combine(acc, v);
            }
            return acc;
        }
        let mid = lo + (hi - lo) / 2;
        let rd = self.sh.config.rd_duplication;
        let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let out = slot.clone();
        let rmap = map.clone();
        let rcombine = combine.clone();
        let rident = ident.clone();
        self.spawn(move |ctx| {
            let myenv = if rd { ctx.env_dup(env) } else { env };
            let r = ctx.pr_split(mid, hi, grain, myenv, rident, rmap, rcombine);
            *out.lock() = Some(r);
        });
        let lcombine = combine.clone();
        let left = self.call(move |ctx| ctx.pr_split(lo, mid, grain, env, ident, map, combine));
        self.wait();
        let right = slot
            .lock()
            .take()
            .expect("joined reduce child did not produce a result");
        self.compute(2, 2);
        lcombine(left, right)
    }
}
