#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # mosaic-runtime
//!
//! A dynamic task parallel programming framework — a Cilk/TBB-like
//! **work-stealing runtime** — for manycore architectures with
//! software-managed scratchpad memories, reproducing the ASPLOS '23
//! paper *"Beyond Static Parallel Loops: Supporting Dynamic Task
//! Parallelism on Manycore Architectures with Software-Managed
//! Scratchpad Memories"* (Cheng, Ruttenberg, et al.).
//!
//! The runtime executes on the simulated HammerBlade-class machine
//! provided by [`mosaic-sim`](mosaic_sim): every load, store, AMO,
//! lock acquisition, queue operation, and stack-frame save is a timed
//! event in the machine model, so the performance effects the paper
//! measures — SPM vs. DRAM placement of the stack and task queues,
//! read-only data duplication, steal traffic, stack overflow to DRAM —
//! emerge from the same mechanisms.
//!
//! ## What's here
//!
//! - the work-stealing protocol ([`TaskCtx::spawn`] / [`TaskCtx::wait`],
//!   per-core lock-protected deques, random victim selection,
//!   release-semantics ready counters) — paper §3;
//! - the three SPM optimizations — §4: SPM-allocated stacks with
//!   hardware (or 2-instruction software, "Fib-S") overflow to DRAM,
//!   SPM-allocated task queues at a fixed offset, and read-only data
//!   duplication for loop environments;
//! - the high-level patterns [`TaskCtx::parallel_invoke`],
//!   [`TaskCtx::parallel_for`], [`TaskCtx::parallel_reduce`] — Fig. 3;
//! - the traditional **static-loop scheduler** baseline — §5.2;
//! - `spm_reserve`/`spm_malloc` for user scratchpad data — §4.
//!
//! ## Quick start
//!
//! ```
//! use mosaic_runtime::{Mosaic, RuntimeConfig};
//! use mosaic_sim::MachineConfig;
//!
//! // fib(10) with parallel_invoke on an 8-core machine.
//! fn fib(ctx: &mut mosaic_runtime::TaskCtx<'_>, n: u32) -> u32 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let (x, y) = ctx.parallel_invoke(
//!         move |ctx| fib(ctx, n - 1),
//!         move |ctx| fib(ctx, n - 2),
//!     );
//!     ctx.compute(1, 1);
//!     x + y
//! }
//!
//! let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
//! let out = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
//! let out2 = out.clone();
//! let report = sys.run(move |ctx| {
//!     let f = fib(ctx, 10);
//!     out2.store(f, std::sync::atomic::Ordering::Relaxed);
//! });
//! assert_eq!(out.load(std::sync::atomic::Ordering::Relaxed), 55);
//! assert!(report.totals().tasks_executed > 0);
//! ```

pub mod config;
pub mod costs;
pub mod ctx;
pub mod dealing;
pub mod layout;
pub mod lock;
pub mod patterns;
pub mod queue;
pub mod runtime;
pub mod stack;
pub mod static_sched;
pub mod stats;
pub mod task;
pub mod trace;
pub mod worker;

pub use config::{Placement, RuntimeConfig, SchedulerKind, StealAmount, VictimPolicy};
pub use costs::CostModel;
pub use ctx::{EnvHandle, TaskCtx};
pub use runtime::Mosaic;
pub use static_sched::LoopBody;
pub use stats::{RunReport, WorkerStats};
pub use trace::TraceEvent;

pub use mosaic_mem::{Addr, AmoOp};
pub use mosaic_sim::{Cycle, FaultPlan, MachineConfig, SimError};
