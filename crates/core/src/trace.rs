//! Execution tracing: per-core task spans and steal events, exportable
//! as a Chrome trace (`chrome://tracing` / Perfetto JSON) so schedules
//! can be inspected visually.
//!
//! Tracing is off by default ([`RuntimeConfig::trace`]); when on, the
//! runtime records one span per executed task and one instant event
//! per successful steal. Spans carry the executing core as the trace
//! "thread", so the Perfetto timeline shows exactly how work spread
//! across the machine.
//!
//! [`RuntimeConfig::trace`]: crate::RuntimeConfig

use mosaic_sim::Cycle;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task executed on `core` over `[start, end)`; `record` is the
    /// task-record address (a stable task identity).
    Task {
        /// Executing core.
        core: u32,
        /// Task-record address.
        record: u64,
        /// First cycle of execution.
        start: Cycle,
        /// Cycle the task (and its join) completed.
        end: Cycle,
        /// Whether this core stole the task.
        stolen: bool,
    },
    /// A successful steal: `thief` took a task from `victim` at `at`.
    Steal {
        /// The stealing core.
        thief: u32,
        /// The core whose queue was robbed.
        victim: u32,
        /// Cycle of the steal.
        at: Cycle,
    },
    /// A user mark (label + cycle), duplicated from `RunReport::marks`
    /// so exported traces are self-contained.
    Mark {
        /// Core that recorded the mark.
        core: u32,
        /// Label.
        label: String,
        /// Cycle.
        at: Cycle,
    },
}

/// Render events as Chrome trace-event JSON (the `traceEvents` array
/// format understood by `chrome://tracing` and Perfetto). Cycles map
/// to microseconds 1:1 so the UI's zoom levels behave.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&s);
    };
    for e in events {
        match e {
            TraceEvent::Task {
                core,
                record,
                start,
                end,
                stolen,
            } => {
                push(
                    format!(
                        "{{\"name\":\"task {record:#x}\",\"cat\":\"{}\",\"ph\":\"X\",\
                         \"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{core}}}",
                        if *stolen { "stolen" } else { "local" },
                        end.saturating_sub(*start).max(1),
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::Steal { thief, victim, at } => {
                push(
                    format!(
                        "{{\"name\":\"steal from {victim}\",\"cat\":\"steal\",\"ph\":\"i\",\
                         \"ts\":{at},\"pid\":0,\"tid\":{thief},\"s\":\"t\"}}"
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::Mark { core, label, at } => {
                push(
                    format!(
                        "{{\"name\":{},\"cat\":\"mark\",\"ph\":\"i\",\
                         \"ts\":{at},\"pid\":0,\"tid\":{core},\"s\":\"g\"}}",
                        json_string(label)
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Minimal JSON string escaping (labels are runtime-generated ASCII).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_is_well_formed_enough() {
        let events = vec![
            TraceEvent::Task {
                core: 3,
                record: 0x1000,
                start: 10,
                end: 50,
                stolen: true,
            },
            TraceEvent::Steal {
                thief: 3,
                victim: 0,
                at: 9,
            },
            TraceEvent::Mark {
                core: 0,
                label: "iter0:\"K1\"".into(),
                at: 5,
            },
        ];
        let json = to_chrome_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\\\"K1\\\""));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces (cheap sanity without a JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn zero_length_tasks_get_min_duration() {
        let json = to_chrome_json(&[TraceEvent::Task {
            core: 0,
            record: 1,
            start: 7,
            end: 7,
            stolen: false,
        }]);
        assert!(json.contains("\"dur\":1"));
    }
}
