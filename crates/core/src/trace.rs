//! Execution tracing: per-core task spans and steal events, exportable
//! as a Chrome trace (`chrome://tracing` / Perfetto JSON) so schedules
//! can be inspected visually.
//!
//! Tracing is off by default ([`RuntimeConfig::trace`]); when on, the
//! runtime records one span per executed task and one instant event
//! per successful steal. Spans carry the executing core as the trace
//! "thread", so the Perfetto timeline shows exactly how work spread
//! across the machine.
//!
//! [`RuntimeConfig::trace`]: crate::RuntimeConfig

use mosaic_sim::{Bucket, Cycle, MachineProfile};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task executed on `core` over `[start, end)`; `record` is the
    /// task-record address (a stable task identity).
    Task {
        /// Executing core.
        core: u32,
        /// Task-record address.
        record: u64,
        /// First cycle of execution.
        start: Cycle,
        /// Cycle the task (and its join) completed.
        end: Cycle,
        /// Whether this core stole the task.
        stolen: bool,
    },
    /// A successful steal: `thief` took a task from `victim` at `at`.
    Steal {
        /// The stealing core.
        thief: u32,
        /// The core whose queue was robbed.
        victim: u32,
        /// Cycle of the steal.
        at: Cycle,
    },
    /// A user mark (label + cycle), duplicated from `RunReport::marks`
    /// so exported traces are self-contained.
    Mark {
        /// Core that recorded the mark.
        core: u32,
        /// Label.
        label: String,
        /// Cycle.
        at: Cycle,
    },
}

/// Render events as Chrome trace-event JSON (the `traceEvents` array
/// format understood by `chrome://tracing` and Perfetto). Cycles map
/// to microseconds 1:1 so the UI's zoom levels behave.
///
/// Each successful steal additionally emits a `ph:"s"`/`ph:"f"` flow
/// pair, so Perfetto draws an arrow from the victim's timeline to the
/// thief's at the steal cycle.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    to_chrome_json_with_profile(events, None)
}

/// Like [`to_chrome_json`], plus one `ph:"C"` counter event per
/// profiler series window when a [`MachineProfile`] is supplied —
/// Perfetto then shows a stacked "cycles by bucket" counter track above
/// the task timelines (see `docs/observability.md`).
pub fn to_chrome_json_with_profile(
    events: &[TraceEvent],
    profile: Option<&MachineProfile>,
) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&s);
    };
    if let Some(p) = profile {
        for (i, w) in p.windows.iter().enumerate() {
            let ts = i as u64 * p.window_cycles;
            let mut args = String::new();
            for b in Bucket::ALL {
                if b.index() > 0 {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":{}", b.name(), w[b.index()]));
            }
            push(
                format!(
                    "{{\"name\":\"cycles by bucket\",\"cat\":\"prof\",\"ph\":\"C\",\
                     \"ts\":{ts},\"pid\":0,\"args\":{{{args}}}}}"
                ),
                &mut out,
                &mut first,
            );
        }
    }
    let mut flow_id = 0u64;
    for e in events {
        match e {
            TraceEvent::Task {
                core,
                record,
                start,
                end,
                stolen,
            } => {
                push(
                    format!(
                        "{{\"name\":\"task {record:#x}\",\"cat\":\"{}\",\"ph\":\"X\",\
                         \"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{core}}}",
                        if *stolen { "stolen" } else { "local" },
                        end.saturating_sub(*start).max(1),
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::Steal { thief, victim, at } => {
                push(
                    format!(
                        "{{\"name\":\"steal from {victim}\",\"cat\":\"steal\",\"ph\":\"i\",\
                         \"ts\":{at},\"pid\":0,\"tid\":{thief},\"s\":\"t\"}}"
                    ),
                    &mut out,
                    &mut first,
                );
                // Flow arrow from the victim's timeline to the thief's.
                push(
                    format!(
                        "{{\"name\":\"steal\",\"cat\":\"steal\",\"ph\":\"s\",\
                         \"id\":{flow_id},\"ts\":{at},\"pid\":0,\"tid\":{victim}}}"
                    ),
                    &mut out,
                    &mut first,
                );
                push(
                    format!(
                        "{{\"name\":\"steal\",\"cat\":\"steal\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{flow_id},\"ts\":{},\"pid\":0,\"tid\":{thief}}}",
                        at + 1
                    ),
                    &mut out,
                    &mut first,
                );
                flow_id += 1;
            }
            TraceEvent::Mark { core, label, at } => {
                push(
                    format!(
                        "{{\"name\":{},\"cat\":\"mark\",\"ph\":\"i\",\
                         \"ts\":{at},\"pid\":0,\"tid\":{core},\"s\":\"g\"}}",
                        json_string(label)
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Minimal JSON string escaping (labels are runtime-generated ASCII).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_is_well_formed_enough() {
        let events = vec![
            TraceEvent::Task {
                core: 3,
                record: 0x1000,
                start: 10,
                end: 50,
                stolen: true,
            },
            TraceEvent::Steal {
                thief: 3,
                victim: 0,
                at: 9,
            },
            TraceEvent::Mark {
                core: 0,
                label: "iter0:\"K1\"".into(),
                at: 5,
            },
        ];
        let json = to_chrome_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\\\"K1\\\""));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces (cheap sanity without a JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn steals_emit_flow_arrow_pairs() {
        let json = to_chrome_json(&[TraceEvent::Steal {
            thief: 3,
            victim: 0,
            at: 9,
        }]);
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"bp\":\"e\""), "{json}");
        // The arrow starts on the victim's timeline and lands on the
        // thief's one cycle later.
        assert!(
            json.contains("\"id\":0,\"ts\":9,\"pid\":0,\"tid\":0"),
            "{json}"
        );
        assert!(
            json.contains("\"id\":0,\"ts\":10,\"pid\":0,\"tid\":3"),
            "{json}"
        );
    }

    #[test]
    fn counter_tracks_parse_as_trace_events_json() {
        let mut w0 = [0u64; mosaic_sim::BUCKET_COUNT];
        w0[Bucket::Compute.index()] = 900;
        w0[Bucket::StealSearch.index()] = 124;
        let profile = MachineProfile {
            cols: 2,
            rows: 1,
            buckets: vec![[0; mosaic_sim::BUCKET_COUNT]; 2],
            elapsed: vec![0; 2],
            llc_bank_accesses: vec![0; 2],
            spm_served: vec![0; 2],
            core_inbound_flits: vec![0; 2],
            core_outbound_flits: vec![0; 2],
            total_link_flits: 0,
            window_cycles: 1024,
            windows: vec![w0, [7; mosaic_sim::BUCKET_COUNT]],
        };
        let events = vec![
            TraceEvent::Task {
                core: 1,
                record: 0x2000,
                start: 100,
                end: 300,
                stolen: false,
            },
            TraceEvent::Steal {
                thief: 1,
                victim: 0,
                at: 90,
            },
        ];
        let json = to_chrome_json_with_profile(&events, Some(&profile));
        // The satellite requirement: with counter tracks mixed in, the
        // output must still parse as the `traceEvents` array shape.
        let parsed = jsonlite::Json::parse(&json).expect("valid JSON");
        let obj = parsed.as_object("trace").expect("object root");
        let evs = obj
            .get("traceEvents", "trace")
            .and_then(|e| e.as_array("traceEvents"))
            .expect("traceEvents array");
        // 2 counter windows + 1 span + 1 instant + 1 flow pair.
        assert_eq!(evs.len(), 6);
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"cycles by bucket\""), "{json}");
        assert!(json.contains("\"compute\":900"), "{json}");
        assert!(json.contains("\"steal_search\":124"), "{json}");
        // Second window lands one window-width later.
        assert!(json.contains("\"ts\":1024"), "{json}");
    }

    #[test]
    fn zero_length_tasks_get_min_duration() {
        let json = to_chrome_json(&[TraceEvent::Task {
            core: 0,
            record: 1,
            start: 7,
            end: 7,
            stolen: false,
        }]);
        assert!(json.contains("\"dur\":1"));
    }
}
