//! The per-core task queue (deque) protocol over simulated memory.
//!
//! Block layout (words from the block base):
//!
//! ```text
//! [0] lock   [1] head   [2] tail   [3] capacity   [4..4+cap] entries
//! ```
//!
//! `head` and `tail` are monotonically increasing 32-bit counters;
//! entry `i` lives at slot `i % capacity`. The owning core pushes and
//! pops at the *tail* (LIFO); thieves steal from the *head* (FIFO), so
//! a thief takes the task highest in the task graph (paper §2.2).
//!
//! All operations assume the block's lock (word 0) is already held by
//! the caller and issue real timed loads/stores, so the latency
//! difference between SPM- and DRAM-placed queues emerges naturally.

use crate::costs::CostModel;
use crate::layout::QUEUE_HDR_WORDS;
use mosaic_mem::Addr;
use mosaic_sim::{CoreApi, Phase};

/// Word offsets inside the queue block.
const LOCK: u64 = 0;
const HEAD: u64 = 1;
const TAIL: u64 = 2;
const CAP: u64 = 3;

/// Address of the queue block's lock word.
pub fn lock_addr(block: Addr) -> Addr {
    block.offset_words(LOCK)
}

/// Push `task` (a simulated task-record address, truncated to a word)
/// at the tail. Returns `false` when the queue is full; the caller
/// must then execute the task inline.
pub fn enqueue(api: &mut CoreApi, block: Addr, task: u32, costs: &CostModel) -> bool {
    let prev = api.phase_begin(Phase::QueueLock);
    api.charge(costs.enqueue_overhead, costs.enqueue_overhead);
    let head = api.load(block.offset_words(HEAD));
    let tail = api.load(block.offset_words(TAIL));
    let cap = api.load(block.offset_words(CAP));
    let ok = if tail.wrapping_sub(head) >= cap {
        false
    } else {
        let slot = QUEUE_HDR_WORDS as u64 + (tail % cap) as u64;
        api.store(block.offset_words(slot), task);
        api.store(block.offset_words(TAIL), tail.wrapping_add(1));
        true
    };
    api.phase_restore(prev);
    ok
}

/// Pop from the tail (LIFO) — the owning core's fast path.
pub fn dequeue(api: &mut CoreApi, block: Addr, costs: &CostModel) -> Option<u32> {
    let prev = api.phase_begin(Phase::QueueLock);
    api.charge(costs.dequeue_overhead, costs.dequeue_overhead);
    let head = api.load(block.offset_words(HEAD));
    let tail = api.load(block.offset_words(TAIL));
    let task = if tail == head {
        None
    } else {
        let cap = api.load(block.offset_words(CAP));
        let t = tail.wrapping_sub(1);
        let slot = QUEUE_HDR_WORDS as u64 + (t % cap) as u64;
        let task = api.load(block.offset_words(slot));
        api.store(block.offset_words(TAIL), t);
        Some(task)
    };
    api.phase_restore(prev);
    task
}

/// Steal from the head (FIFO) — the thief's path.
pub fn steal(api: &mut CoreApi, block: Addr, costs: &CostModel) -> Option<u32> {
    let prev = api.phase_begin(Phase::QueueLock);
    api.charge(costs.dequeue_overhead, costs.dequeue_overhead);
    let head = api.load(block.offset_words(HEAD));
    let tail = api.load(block.offset_words(TAIL));
    let task = if tail == head {
        None
    } else {
        let cap = api.load(block.offset_words(CAP));
        let slot = QUEUE_HDR_WORDS as u64 + (head % cap) as u64;
        let task = api.load(block.offset_words(slot));
        api.store(block.offset_words(HEAD), head.wrapping_add(1));
        Some(task)
    };
    api.phase_restore(prev);
    task
}

/// Steal up to `max` tasks from the head (lock must be held). Returns
/// the stolen records, oldest first.
pub fn steal_up_to(api: &mut CoreApi, block: Addr, max: u32, costs: &CostModel) -> Vec<u32> {
    let prev = api.phase_begin(Phase::QueueLock);
    api.charge(costs.dequeue_overhead, costs.dequeue_overhead);
    let head = api.load(block.offset_words(HEAD));
    let tail = api.load(block.offset_words(TAIL));
    let avail = tail.wrapping_sub(head);
    let take = avail.min(max);
    let mut out = Vec::with_capacity(take as usize);
    if take > 0 {
        let cap = api.load(block.offset_words(CAP));
        for k in 0..take {
            let idx = head.wrapping_add(k);
            let slot = QUEUE_HDR_WORDS as u64 + (idx % cap) as u64;
            out.push(api.load(block.offset_words(slot)));
            api.charge(1, 1);
        }
        api.store(block.offset_words(HEAD), head.wrapping_add(take));
    }
    api.phase_restore(prev);
    out
}

/// Number of queued tasks (lock must be held).
pub fn len(api: &mut CoreApi, block: Addr) -> u32 {
    let prev = api.phase_begin(Phase::QueueLock);
    let head = api.load(block.offset_words(HEAD));
    let tail = api.load(block.offset_words(TAIL));
    api.phase_restore(prev);
    tail.wrapping_sub(head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sim::{Engine, Machine, MachineConfig};

    /// Run a single-core scenario against a DRAM-allocated queue block
    /// of the given capacity.
    fn with_queue<F>(cap: u32, f: F) -> mosaic_sim::Report
    where
        F: Fn(&mut CoreApi, Addr) + Send + Sync + 'static,
    {
        let mut machine = Machine::new(MachineConfig::small(1, 1));
        let block = machine.dram_alloc_words((QUEUE_HDR_WORDS + cap) as u64);
        machine.poke(block.offset_words(CAP), cap);
        let f = std::sync::Arc::new(f);
        Engine::run(machine, move |_| {
            let f = f.clone();
            Box::new(move |api| f(api, block))
        })
    }

    #[test]
    fn lifo_pop_order() {
        with_queue(8, |api, q| {
            let c = CostModel::default();
            for t in [11, 22, 33] {
                assert!(enqueue(api, q, t, &c));
            }
            assert_eq!(dequeue(api, q, &c), Some(33));
            assert_eq!(dequeue(api, q, &c), Some(22));
            assert_eq!(dequeue(api, q, &c), Some(11));
            assert_eq!(dequeue(api, q, &c), None);
        });
    }

    #[test]
    fn fifo_steal_order() {
        with_queue(8, |api, q| {
            let c = CostModel::default();
            for t in [11, 22, 33] {
                assert!(enqueue(api, q, t, &c));
            }
            assert_eq!(steal(api, q, &c), Some(11));
            assert_eq!(steal(api, q, &c), Some(22));
            assert_eq!(steal(api, q, &c), Some(33));
            assert_eq!(steal(api, q, &c), None);
        });
    }

    #[test]
    fn mixed_pop_and_steal() {
        with_queue(8, |api, q| {
            let c = CostModel::default();
            for t in 1..=4 {
                assert!(enqueue(api, q, t, &c));
            }
            assert_eq!(steal(api, q, &c), Some(1), "thief takes oldest");
            assert_eq!(dequeue(api, q, &c), Some(4), "owner takes newest");
            assert_eq!(len(api, q), 2);
        });
    }

    #[test]
    fn full_queue_rejects() {
        with_queue(2, |api, q| {
            let c = CostModel::default();
            assert!(enqueue(api, q, 1, &c));
            assert!(enqueue(api, q, 2, &c));
            assert!(!enqueue(api, q, 3, &c), "capacity 2 exceeded");
            assert_eq!(dequeue(api, q, &c), Some(2));
            assert!(enqueue(api, q, 3, &c), "room again after pop");
        });
    }

    #[test]
    fn steal_up_to_takes_oldest_first() {
        with_queue(8, |api, q| {
            let c = CostModel::default();
            for t in [1, 2, 3, 4, 5] {
                assert!(enqueue(api, q, t, &c));
            }
            let got = steal_up_to(api, q, 3, &c);
            assert_eq!(got, vec![1, 2, 3]);
            assert_eq!(dequeue(api, q, &c), Some(5));
            assert_eq!(steal(api, q, &c), Some(4));
            assert!(steal_up_to(api, q, 4, &c).is_empty());
        });
    }

    #[test]
    fn wraparound_preserves_order() {
        with_queue(3, |api, q| {
            let c = CostModel::default();
            // Cycle the ring several times.
            for round in 0u32..5 {
                for k in 0..3 {
                    assert!(enqueue(api, q, round * 10 + k, &c));
                }
                assert_eq!(steal(api, q, &c), Some(round * 10));
                assert_eq!(steal(api, q, &c), Some(round * 10 + 1));
                assert_eq!(dequeue(api, q, &c), Some(round * 10 + 2));
            }
        });
    }
}
