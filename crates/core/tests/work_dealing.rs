//! Integration tests for the work-dealing scheduler (related-work
//! comparison): correctness across the workload patterns, and the
//! defining behavioural contrast with work-stealing.

use mosaic_runtime::{Mosaic, RuntimeConfig};
use mosaic_sim::MachineConfig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn dealing_computes_parallel_for_correctly() {
    let mut sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_dealing());
    let d = sys.machine_mut().dram_alloc_words(128);
    let report = sys.run(move |ctx| {
        ctx.parallel_for(0, 128, 4, 2, move |ctx, i| {
            ctx.store(d.offset_words(i as u64), 2 * i + 1);
        });
    });
    for i in 0..128u64 {
        assert_eq!(report.machine.peek(d.offset_words(i)), 2 * i as u32 + 1);
    }
    assert_eq!(report.totals().steals, 0, "dealing never steals");
}

#[test]
fn dealing_actually_distributes_work() {
    let cores_seen: Arc<Vec<AtomicUsize>> = Arc::new((0..8).map(|_| AtomicUsize::new(0)).collect());
    let cs = cores_seen.clone();
    let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_dealing());
    let report = sys.run(move |ctx| {
        for _ in 0..64 {
            let cs = cs.clone();
            ctx.spawn(move |ctx| {
                cs[ctx.core_id()].fetch_add(1, Ordering::Relaxed);
                ctx.compute(50, 400);
            });
        }
        ctx.wait();
    });
    let active = cores_seen
        .iter()
        .filter(|a| a.load(Ordering::Relaxed) > 0)
        .count();
    assert!(
        active >= 3,
        "dealing should spread work, got {active} cores"
    );
    assert!(report.totals().deals > 0, "no tasks were dealt");
}

#[test]
fn dealing_reduce_matches_fold() {
    let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_dealing());
    let out = Arc::new(AtomicU64::new(0));
    let o = out.clone();
    sys.run(move |ctx| {
        let s = ctx.parallel_reduce(
            0,
            300,
            4,
            2,
            0u64,
            |ctx, i| {
                ctx.compute(2, 2);
                i as u64
            },
            |a, b| a + b,
        );
        o.store(s, Ordering::Relaxed);
    });
    assert_eq!(out.load(Ordering::Relaxed), (0..300u64).sum());
}

#[test]
fn dealing_single_core_degenerates() {
    let sys = Mosaic::new(MachineConfig::small(1, 1), RuntimeConfig::work_dealing());
    let out = Arc::new(AtomicU64::new(0));
    let o = out.clone();
    let report = sys.run(move |ctx| {
        let s = ctx.parallel_reduce(0, 40, 2, 2, 0u64, |_ctx, i| i as u64, |a, b| a + b);
        o.store(s, Ordering::Relaxed);
    });
    assert_eq!(out.load(Ordering::Relaxed), 780);
    assert_eq!(report.totals().deals, 0);
}
