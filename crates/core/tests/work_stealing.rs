//! Integration tests for the work-stealing runtime's observable
//! behaviour: stealing direction, result plumbing, stats, and stress
//! patterns.

use mosaic_runtime::{Mosaic, RuntimeConfig};
use mosaic_sim::MachineConfig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn stolen_tasks_execute_on_other_cores() {
    // Spawn long tasks from core 0; record executing cores.
    let cores_seen: Arc<Vec<AtomicUsize>> = Arc::new((0..8).map(|_| AtomicUsize::new(0)).collect());
    let cs = cores_seen.clone();
    let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
    let report = sys.run(move |ctx| {
        for _ in 0..32 {
            let cs = cs.clone();
            ctx.spawn(move |ctx| {
                cs[ctx.core_id()].fetch_add(1, Ordering::Relaxed);
                ctx.compute(100, 400);
            });
        }
        ctx.wait();
    });
    let active = cores_seen
        .iter()
        .filter(|a| a.load(Ordering::Relaxed) > 0)
        .count();
    assert!(
        active >= 4,
        "expected work to spread, only {active} cores ran tasks"
    );
    assert!(report.totals().steals > 0);
}

#[test]
fn thief_steals_oldest_task_first() {
    // FIFO stealing: the first-spawned (largest in real trees) task is
    // taken first by thieves. We observe that the first-spawned task
    // frequently runs on a non-spawning core while the last-spawned
    // (LIFO pop) runs on core 0.
    let first_core = Arc::new(AtomicUsize::new(usize::MAX));
    let last_core = Arc::new(AtomicUsize::new(usize::MAX));
    let (f, l) = (first_core.clone(), last_core.clone());
    let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
    sys.run(move |ctx| {
        let f = f.clone();
        ctx.spawn(move |ctx| {
            f.store(ctx.core_id(), Ordering::Relaxed);
            ctx.compute(10, 50);
        });
        for _ in 0..6 {
            ctx.spawn(|ctx| ctx.compute(10, 50));
        }
        let l = l.clone();
        ctx.spawn(move |ctx| {
            l.store(ctx.core_id(), Ordering::Relaxed);
            ctx.compute(10, 50);
        });
        // Give thieves a head start before popping locally.
        ctx.compute(10, 2000);
        ctx.wait();
    });
    let first = first_core.load(Ordering::Relaxed);
    let last = last_core.load(Ordering::Relaxed);
    assert_ne!(first, usize::MAX);
    assert_ne!(last, usize::MAX);
    // With a long pause, the oldest task is all but guaranteed stolen.
    assert_ne!(first, 0, "oldest task should be stolen away from core 0");
}

#[test]
fn invoke_returns_both_results_through_steals() {
    let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
    let out = Arc::new(AtomicU64::new(0));
    let o = out.clone();
    sys.run(move |ctx| {
        let (a, b) = ctx.parallel_invoke(
            |ctx| {
                ctx.compute(50, 500);
                7u64
            },
            |ctx| {
                ctx.compute(50, 500);
                35u64
            },
        );
        o.store(a + b, Ordering::Relaxed);
    });
    assert_eq!(out.load(Ordering::Relaxed), 42);
}

#[test]
fn deeply_nested_reduce_stress() {
    // A reduce of reduces of reduces — exercises nested wait frames
    // and record lifetimes under stealing.
    let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
    let out = Arc::new(AtomicU64::new(0));
    let o = out.clone();
    sys.run(move |ctx| {
        let total = ctx.parallel_reduce(
            0,
            8,
            1,
            2,
            0u64,
            |ctx, i| {
                ctx.parallel_reduce(
                    0,
                    8,
                    1,
                    2,
                    0u64,
                    move |ctx, j| {
                        ctx.parallel_reduce(
                            0,
                            4,
                            1,
                            2,
                            0u64,
                            move |ctx, k| {
                                ctx.compute(2, 2);
                                (i as u64) * 32 + (j as u64) * 4 + k as u64
                            },
                            |a, b| a + b,
                        )
                    },
                    |a, b| a + b,
                )
            },
            |a, b| a + b,
        );
        o.store(total, Ordering::Relaxed);
    });
    assert_eq!(out.load(Ordering::Relaxed), (0..256u64).sum());
}

#[test]
fn worker_stats_are_consistent() {
    let sys = Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
    let report = sys.run(move |ctx| {
        ctx.parallel_for(0, 200, 4, 2, |ctx, _| ctx.compute(10, 10));
    });
    let t = report.totals();
    // Every spawned task is executed exactly once (registry drained is
    // asserted inside run()); executed = spawned when nothing inlined.
    assert_eq!(t.tasks_executed, t.spawns + t.inline_executions);
    assert!(t.steals <= t.tasks_executed);
    assert_eq!(report.worker_stats.len(), 8);
}

#[test]
fn single_core_work_stealing_degenerates_gracefully() {
    let sys = Mosaic::new(MachineConfig::small(1, 1), RuntimeConfig::work_stealing());
    let out = Arc::new(AtomicU64::new(0));
    let o = out.clone();
    let report = sys.run(move |ctx| {
        let s = ctx.parallel_reduce(0, 50, 4, 2, 0u64, |_ctx, i| i as u64, |a, b| a + b);
        o.store(s, Ordering::Relaxed);
    });
    assert_eq!(out.load(Ordering::Relaxed), 1225);
    assert_eq!(report.totals().steals, 0, "nobody to steal from");
}

#[test]
fn spawn_heavy_fanout_bounded_queue() {
    // 500 children from one task exceed the 124-entry SPM queue: the
    // excess must inline, and all children must run.
    let hits = Arc::new(AtomicU64::new(0));
    let h = hits.clone();
    let sys = Mosaic::new(MachineConfig::small(2, 2), RuntimeConfig::work_stealing());
    let report = sys.run(move |ctx| {
        for _ in 0..500 {
            let h = h.clone();
            ctx.spawn(move |_ctx| {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        ctx.wait();
    });
    assert_eq!(hits.load(Ordering::Relaxed), 500);
    assert!(report.totals().inline_executions > 0);
}

#[test]
fn steal_half_policy_is_correct_and_steals_less_often() {
    use mosaic_runtime::StealAmount;
    let run = |amount: StealAmount| {
        let cfg = RuntimeConfig {
            steal_amount: amount,
            ..RuntimeConfig::work_stealing()
        };
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let sys = Mosaic::new(MachineConfig::small(4, 2), cfg);
        let report = sys.run(move |ctx| {
            for _ in 0..100 {
                let h = h.clone();
                ctx.spawn(move |ctx| {
                    ctx.compute(20, 200);
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            ctx.wait();
        });
        (hits.load(Ordering::Relaxed), report.totals().steals)
    };
    let (done_one, _steals_one) = run(StealAmount::One);
    let (done_half, steals_half) = run(StealAmount::Half);
    assert_eq!(done_one, 100);
    assert_eq!(done_half, 100);
    assert!(steals_half > 0);
}

#[test]
fn nearest_victim_policy_is_correct() {
    use mosaic_runtime::VictimPolicy;
    let cfg = RuntimeConfig {
        victim: VictimPolicy::Nearest,
        ..RuntimeConfig::work_stealing()
    };
    let hits = Arc::new(AtomicU64::new(0));
    let h = hits.clone();
    let sys = Mosaic::new(MachineConfig::small(4, 2), cfg);
    let report = sys.run(move |ctx| {
        for _ in 0..64 {
            let h = h.clone();
            ctx.spawn(move |ctx| {
                ctx.compute(20, 300);
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        ctx.wait();
    });
    assert_eq!(hits.load(Ordering::Relaxed), 64);
    assert!(report.totals().steals > 0, "nearest policy must find work");
}

#[test]
fn utilization_reporting_is_sane() {
    let sys = Mosaic::new(MachineConfig::small(2, 2), RuntimeConfig::work_stealing());
    let report = sys.run(|ctx| {
        ctx.parallel_for(0, 64, 4, 2, |ctx, _| ctx.compute(50, 50));
    });
    let u = report.utilization();
    assert_eq!(u.len(), 4);
    assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
    let m = report.mean_utilization();
    assert!(m > 0.0 && m <= 1.0, "mean utilization {m}");
}

#[test]
fn tracing_records_tasks_and_steals() {
    let cfg = RuntimeConfig {
        trace: true,
        ..RuntimeConfig::work_stealing()
    };
    let sys = Mosaic::new(MachineConfig::small(4, 2), cfg);
    let report = sys.run(|ctx| {
        ctx.mark("begin");
        ctx.parallel_for(0, 64, 4, 2, |ctx, _| ctx.compute(30, 120));
    });
    use mosaic_runtime::TraceEvent;
    let tasks = report
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Task { .. }))
        .count() as u64;
    let steals = report
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Steal { .. }))
        .count() as u64;
    let t = report.totals();
    assert_eq!(tasks, t.tasks_executed);
    assert_eq!(steals, t.steals);
    assert!(report
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Mark { label, .. } if label == "begin")));
    // Spans are well-formed and within the run.
    for e in &report.trace {
        if let TraceEvent::Task { start, end, .. } = e {
            assert!(start <= end && *end <= report.cycles);
        }
    }
    // And the export is non-trivial.
    let json = mosaic_runtime::trace::to_chrome_json(&report.trace);
    assert!(json.len() > 100);
}

#[test]
fn tracing_off_by_default_records_nothing() {
    let sys = Mosaic::new(MachineConfig::small(2, 2), RuntimeConfig::work_stealing());
    let report = sys.run(|ctx| {
        ctx.parallel_for(0, 16, 2, 2, |ctx, _| ctx.compute(5, 5));
    });
    assert!(report.trace.is_empty());
}
