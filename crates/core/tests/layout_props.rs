//! Property tests for the runtime memory layout: for every
//! configuration `try_compute` accepts, the regions it hands out must
//! be disjoint — SPM user/queue/misc/stack per core, and the DRAM
//! directory/queues/stacks/barrier/hungry blocks across cores.

use mosaic_mem::{Addr, AddrMap};
use mosaic_runtime::layout::{Layout, MISC_BYTES, QUEUE_HDR_WORDS};
use mosaic_runtime::{Placement, RuntimeConfig};
use proptest::prelude::*;

/// A bump allocator mirroring `Machine::dram_alloc`'s alignment.
fn bump() -> impl FnMut(u64) -> Addr {
    let mut brk = AddrMap::DRAM_BASE;
    move |bytes| {
        let a = Addr(brk);
        brk += (bytes + 15) & !15;
        a
    }
}

proptest! {
    /// Any accepted configuration yields disjoint, in-bounds SPM
    /// regions on every core and disjoint DRAM blocks across cores.
    #[test]
    fn accepted_layouts_have_disjoint_regions(
        cores in 1u32..16,
        spm_shift in 10u32..14,
        user_raw in 0u32..2048,
        queue_spm in any::<bool>(),
        stack_spm in any::<bool>(),
        dram_queue_capacity in 4u32..256,
        dram_stack_kwords in 1u32..8,
    ) {
        let spm_size = 1u32 << spm_shift; // 1 KB .. 8 KB
        let user_reserve = user_raw & !3;
        let dram_stack_bytes = dram_stack_kwords * 4096;
        let cfg = RuntimeConfig {
            queue: if queue_spm { Placement::Spm } else { Placement::Dram },
            stack: if stack_spm { Placement::Spm } else { Placement::Dram },
            spm_user_reserve: user_reserve.min(spm_size),
            dram_queue_capacity,
            dram_stack_bytes,
            ..RuntimeConfig::work_stealing()
        };
        let Ok(l) = Layout::try_compute(&cfg, cores, spm_size, bump()) else {
            // Rejected configurations are fine — the property is about
            // what try_compute *accepts*.
            return;
        };
        let map = AddrMap::new(cores, spm_size);

        // SPM regions, as [start, end) byte-offset intervals. Layout is
        // uniform across cores, so checking the offsets checks them all.
        let mut spm: Vec<(&str, u64, u64)> = vec![
            ("user", l.user_region_off() as u64, spm_size as u64),
            ("stack", 0, l.spm_stack_top() as u64),
        ];
        let q = l.queue_block(&map, 0).raw() - map.spm_addr(0, 0).raw();
        if cfg.queue == Placement::Spm {
            spm.push(("queue", q, q + (QUEUE_HDR_WORDS + l.queue_capacity()) as u64 * 4));
        }
        let misc = l.misc_addr(&map, 0, 0).raw() - map.spm_addr(0, 0).raw();
        spm.push(("misc", misc, misc + MISC_BYTES as u64));
        for (i, &(an, a0, a1)) in spm.iter().enumerate() {
            prop_assert!(a1 <= spm_size as u64, "{an} out of SPM bounds");
            for &(bn, b0, b1) in &spm[i + 1..] {
                prop_assert!(a1 <= b0 || b1 <= a0,
                    "{an} [{a0},{a1}) overlaps {bn} [{b0},{b1})");
            }
        }

        // DRAM blocks: queue directory + queue blocks + stacks +
        // barrier + hungry board must be pairwise disjoint.
        let mut dram: Vec<(String, u64, u64)> = Vec::new();
        for c in 0..cores {
            let top = l.dram_stack_top(c).raw();
            dram.push((format!("stack{c}"), top - cfg.dram_stack_bytes as u64, top));
            if cfg.queue == Placement::Dram {
                let qb = l.queue_block(&map, c).raw();
                dram.push((
                    format!("queue{c}"),
                    qb,
                    qb + (QUEUE_HDR_WORDS + l.queue_capacity()) as u64 * 4,
                ));
                let d = l.queue_dir_entry(c).raw();
                dram.push((format!("dir{c}"), d, d + 4));
            }
            let h = l.hungry_addr(c).raw();
            dram.push((format!("hungry{c}"), h, h + 4));
        }
        let b = l.barrier_addr().raw();
        dram.push(("barrier".into(), b, b + 4));
        for (i, (an, a0, a1)) in dram.iter().enumerate() {
            for (bn, b0, b1) in &dram[i + 1..] {
                prop_assert!(*a1 <= *b0 || *b1 <= *a0,
                    "{an} [{a0:#x},{a1:#x}) overlaps {bn} [{b0:#x},{b1:#x})");
            }
        }
    }
}
