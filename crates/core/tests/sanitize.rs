//! End-to-end tests of the `mosaic-san` sanitizer attached to real
//! runtime executions: clean runs must report clean, injected bugs
//! must produce exactly the expected finding, and the sanitizer must
//! never perturb simulated time.

use mosaic_runtime::{Mosaic, Placement, RuntimeConfig};
use mosaic_san::DiagKind;
use mosaic_sim::MachineConfig;

fn machine(sanitize: bool) -> MachineConfig {
    let mut m = MachineConfig::small(4, 2);
    m.sanitize = sanitize;
    m
}

/// Every scheduler/placement combination the benchmarks sweep must be
/// race-free under the happens-before detector.
#[test]
fn parallel_for_is_clean_under_every_scheduler() {
    let configs = [
        ("ws", RuntimeConfig::work_stealing()),
        ("ws-naive", RuntimeConfig::work_stealing_naive()),
        ("wd", RuntimeConfig::work_dealing()),
        ("static", RuntimeConfig::static_loops(Placement::Spm)),
    ];
    for (name, cfg) in configs {
        let mut sys = Mosaic::new(machine(true), cfg);
        let data = sys.machine_mut().dram_alloc_init(&[7u32; 64]);
        let out = sys.machine_mut().dram_alloc_words(64);
        let report = sys.run(move |ctx| {
            ctx.parallel_for(0, 64, 4, 2, move |ctx, i| {
                let v = ctx.load(data.offset_words(i as u64));
                ctx.store(out.offset_words(i as u64), v * 3);
            });
        });
        let san = report.sanitizer.as_ref().expect("sanitizer attached");
        assert!(san.is_clean(), "[{name}] {san}");
        assert!(san.ops > 0, "[{name}] sanitizer saw no memory ops");
        for i in 0..64 {
            assert_eq!(report.machine.peek(out.offset_words(i)), 21);
        }
    }
}

#[test]
fn nested_spawn_wait_tree_is_clean() {
    let mut sys = Mosaic::new(machine(true), RuntimeConfig::work_stealing());
    let acc = sys.machine_mut().dram_alloc_words(1);
    let report = sys.run(move |ctx| {
        fn tree(ctx: &mut mosaic_runtime::TaskCtx<'_>, depth: u32, acc: mosaic_mem::Addr) {
            if depth == 0 {
                ctx.amo(acc, mosaic_mem::AmoOp::Add, 1);
                return;
            }
            ctx.spawn(move |ctx| tree(ctx, depth - 1, acc));
            ctx.spawn(move |ctx| tree(ctx, depth - 1, acc));
            ctx.wait();
        }
        tree(ctx, 5, acc);
    });
    assert_eq!(report.machine.peek(acc), 32);
    let san = report.sanitizer.expect("sanitizer attached");
    assert!(san.is_clean(), "{san}");
}

/// The injected-race negative test: two tasks plain-store the same
/// DRAM word with no join between them — exactly one write-write race.
#[test]
fn injected_race_is_caught() {
    let mut sys = Mosaic::new(machine(true), RuntimeConfig::work_stealing());
    let target = sys.machine_mut().dram_alloc_words(1);
    let report = sys.run(move |ctx| {
        for v in 1..=2u32 {
            // Long compute first so the second task is reliably stolen
            // and the stores really do come from different cores.
            ctx.spawn(move |ctx| {
                ctx.compute(200, 800);
                ctx.store(target, v);
            });
        }
        ctx.wait();
    });
    let san = report.sanitizer.expect("sanitizer attached");
    assert_eq!(san.total_findings(), 1, "{san}");
    assert_eq!(san.diagnostics[0].kind, DiagKind::RaceWriteWrite);
    assert_eq!(san.diagnostics[0].addr, target.raw());
}

/// Writing a captured environment after it was materialized violates
/// the read-only-duplication contract (§4.3).
#[test]
fn env_write_after_freeze_is_caught() {
    let sys = Mosaic::new(machine(true), RuntimeConfig::work_stealing());
    let report = sys.run(move |ctx| {
        let env = ctx.make_env(4);
        ctx.store(env.addr, 42); // illegal: env is read-only now
        ctx.env_read(env);
        ctx.stack_free();
    });
    let san = report.sanitizer.expect("sanitizer attached");
    assert_eq!(san.total_findings(), 1, "{san}");
    assert_eq!(san.diagnostics[0].kind, DiagKind::ReadOnlyWrite);
}

/// The sanitizer charges no cycles: reported numbers are byte-identical
/// with it on or off.
#[test]
fn sanitizer_is_cycle_invariant() {
    let run = |sanitize: bool| {
        let mut sys = Mosaic::new(machine(sanitize), RuntimeConfig::work_stealing());
        let data = sys.machine_mut().dram_alloc_init(&[3u32; 128]);
        let out = sys.machine_mut().dram_alloc_words(128);
        let report = sys.run(move |ctx| {
            ctx.parallel_for(0, 128, 8, 1, move |ctx, i| {
                let v = ctx.load(data.offset_words(i as u64));
                ctx.store(out.offset_words(i as u64), v + 1);
            });
        });
        (report.cycles, report.instructions())
    };
    assert_eq!(run(false), run(true), "sanitizer must be zero-cost");
}

#[test]
fn try_new_rejects_overcommitted_spm() {
    let cfg = RuntimeConfig {
        spm_user_reserve: 4096,
        ..RuntimeConfig::work_stealing()
    };
    let err = Mosaic::try_new(machine(false), cfg).expect_err("must reject");
    assert!(err.contains("over-committed"), "{err}");

    // Squeezing the SPM stack below the minimum is also rejected.
    let cfg = RuntimeConfig {
        spm_user_reserve: 4096 - 512 - 32 - 32, // leaves 32 B of stack
        ..RuntimeConfig::work_stealing()
    };
    let err = Mosaic::try_new(machine(false), cfg).expect_err("must reject");
    assert!(err.contains("no usable SPM left"), "{err}");

    // A DRAM-placed stack tolerates the same reservation.
    let cfg = RuntimeConfig {
        spm_user_reserve: 4096 - 512 - 32 - 32,
        stack: Placement::Dram,
        ..RuntimeConfig::work_stealing()
    };
    assert!(Mosaic::try_new(machine(false), cfg).is_ok());
}
