//! Integration tests for the static-loop baseline scheduler.

use mosaic_runtime::{Mosaic, Placement, RuntimeConfig};
use mosaic_sim::MachineConfig;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

fn static_cfg() -> RuntimeConfig {
    RuntimeConfig::static_loops(Placement::Spm)
}

#[test]
fn static_parallel_for_covers_range_across_cores() {
    let mut sys = Mosaic::new(MachineConfig::small(4, 2), static_cfg());
    let d = sys.machine_mut().dram_alloc_words(100);
    let report = sys.run(move |ctx| {
        ctx.parallel_for(0, 100, 4, 2, move |ctx, i| {
            ctx.store(d.offset_words(i as u64), i + 1);
        });
    });
    for i in 0..100u64 {
        assert_eq!(report.machine.peek(d.offset_words(i)), i as u32 + 1);
    }
}

#[test]
fn static_work_actually_distributes() {
    // Count which cores touched indices (host-side observation).
    let cores_hit = Arc::new(parking_lot_core_free_set());
    let c2 = cores_hit.clone();
    let sys = Mosaic::new(MachineConfig::small(4, 2), static_cfg());
    sys.run(move |ctx| {
        ctx.parallel_for(0, 256, 8, 2, move |ctx, _i| {
            c2[ctx.core_id()].store(1, Ordering::Relaxed);
            ctx.compute(4, 4);
        });
    });
    let active: usize = cores_hit
        .iter()
        .map(|a| a.load(Ordering::Relaxed) as usize)
        .sum();
    assert_eq!(active, 8, "all 8 cores must execute a chunk");
}

fn parking_lot_core_free_set() -> Vec<AtomicU32> {
    (0..8).map(|_| AtomicU32::new(0)).collect()
}

#[test]
fn static_nested_loops_run_inline() {
    // The inner loop inside a kernel must execute inline on the same
    // core (no dynamic scheduling available).
    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    let sys = Mosaic::new(MachineConfig::small(4, 2), static_cfg());
    sys.run(move |ctx| {
        ctx.parallel_for(0, 16, 2, 2, move |ctx, i| {
            let s3 = s2.clone();
            ctx.parallel_for(0, 10, 2, 2, move |ctx, j| {
                s3.fetch_add((i * 10 + j) as u64, Ordering::Relaxed);
                ctx.compute(1, 1);
            });
        });
    });
    assert_eq!(sum.load(Ordering::Relaxed), (0..160u64).sum());
}

#[test]
fn static_reduce_matches_fold() {
    let sys = Mosaic::new(MachineConfig::small(4, 2), static_cfg());
    let out = Arc::new(AtomicU64::new(0));
    let o = out.clone();
    sys.run(move |ctx| {
        let s = ctx.parallel_reduce(
            0,
            1000,
            8,
            2,
            0u64,
            |ctx, i| {
                ctx.compute(1, 1);
                i as u64
            },
            |a, b| a + b,
        );
        o.store(s, Ordering::Relaxed);
    });
    assert_eq!(out.load(Ordering::Relaxed), 499_500);
}

#[test]
fn static_invoke_serializes_but_computes() {
    let sys = Mosaic::new(MachineConfig::small(2, 2), static_cfg());
    let out = Arc::new(AtomicU32::new(0));
    let o = out.clone();
    sys.run(move |ctx| {
        let (a, b) = ctx.parallel_invoke(
            |ctx| {
                ctx.compute(10, 10);
                21u32
            },
            |ctx| {
                ctx.compute(10, 10);
                21u32
            },
        );
        o.store(a + b, Ordering::Relaxed);
    });
    assert_eq!(out.load(Ordering::Relaxed), 42);
}

#[test]
fn consecutive_kernels_reuse_the_mailboxes() {
    // Generation counters must keep kernels apart.
    let mut sys = Mosaic::new(MachineConfig::small(4, 2), static_cfg());
    let d = sys.machine_mut().dram_alloc_words(64);
    let report = sys.run(move |ctx| {
        for round in 0..5u32 {
            ctx.parallel_for(0, 64, 4, 2, move |ctx, i| {
                let a = d.offset_words(i as u64);
                let v = ctx.load(a);
                ctx.store(a, v + round + 1);
            });
        }
    });
    // Each index accumulated 1+2+3+4+5 = 15.
    for i in 0..64u64 {
        assert_eq!(report.machine.peek(d.offset_words(i)), 15);
    }
}

#[test]
fn static_runs_on_both_stack_placements() {
    for placement in [Placement::Dram, Placement::Spm] {
        let sys = Mosaic::new(
            MachineConfig::small(2, 2),
            RuntimeConfig::static_loops(placement),
        );
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        sys.run(move |ctx| {
            let s = ctx.parallel_reduce(0, 100, 4, 2, 0u64, |_ctx, i| i as u64, |a, b| a + b);
            o.store(s, Ordering::Relaxed);
        });
        assert_eq!(out.load(Ordering::Relaxed), 4950, "{placement:?}");
    }
}
