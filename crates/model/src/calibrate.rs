//! Calibration: per-workload correction factors fitted against the
//! cycle-accurate engine, with residual-error bounds.
//!
//! The analytic formulas are approximations; what makes them usable
//! is knowing *how wrong* they are. The `calibrate` harness in
//! `mosaic-bench` runs every (workload, config) family of the sweep
//! grid through **both** backends across a set of mesh shapes, fits
//! one multiplicative correction per family (the minimax measured /
//! estimated ratio), and records the worst residual relative error
//! after correction. The result — this table, serialized as
//! `results/model/calibration.json` — is a golden-style artifact:
//! byte-reproducible, committed, and regenerated+diffed by the
//! `model-smoke` CI job, which hard-fails when any family's residual
//! exceeds [`CalibrationTable::bound_ppm`].
//!
//! Consumers gate on it two ways:
//! * `AnalyticBackend` (in `mosaic-sim`) refuses families the table
//!   does not cover, and applies the correction to ones it does;
//! * the serve scheduler's `auto` fidelity answers analytically only
//!   when the *experiment-level* bound ([`ExperimentBound`]) is
//!   within threshold, escalating to cycle-accurate otherwise.

use crate::{rel_err_ppm, scale_ppm, WorkloadDemand, PPM};
use jsonlite::Json;

/// One calibration grid point: both backends' answers for a family at
/// one mesh shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalPoint {
    /// Mesh columns.
    pub cols: u64,
    /// Mesh rows.
    pub rows: u64,
    /// Cycle-accurate elapsed cycles.
    pub measured: u64,
    /// Raw (uncorrected) analytic estimate.
    pub estimated: u64,
}

impl CalPoint {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("cols", self.cols)
            .field("rows", self.rows)
            .field("measured", self.measured)
            .field("estimated", self.estimated)
            .build()
    }

    fn from_json(v: &Json) -> Result<CalPoint, String> {
        let obj = v.as_object("point")?;
        Ok(CalPoint {
            cols: obj.get("cols", "point")?.as_u64()?,
            rows: obj.get("rows", "point")?.as_u64()?,
            measured: obj.get("measured", "point")?.as_u64()?,
            estimated: obj.get("estimated", "point")?.as_u64()?,
        })
    }
}

/// One workload family's calibration: its measured demand, the grid
/// points, and the fitted correction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalFamily {
    /// Workload display name (e.g. `CilkSort`).
    pub workload: String,
    /// Runtime config label (e.g. `ws/spm-stack/spm-q`).
    pub config: String,
    /// Scale preset the family was calibrated at.
    pub scale: String,
    /// The traffic demand measured at the smallest grid shape — the
    /// analytic backend's input for this family.
    pub demand: WorkloadDemand,
    /// Both backends' answers across the grid.
    pub points: Vec<CalPoint>,
    /// Fitted multiplicative correction (harmonic midpoint of the
    /// extreme measured/estimated ratios — minimax over the grid), in
    /// [`PPM`].
    pub correction_ppm: u64,
    /// Worst residual relative error after correction, in [`PPM`].
    pub max_err_ppm: u64,
}

impl CalFamily {
    /// Fit the correction from the grid points and record the
    /// residual. The correction is the harmonic mean of the extreme
    /// measured/estimated ratios — the single multiplier that
    /// *minimizes the worst* relative error across the grid (relative
    /// error of `c·est` vs `meas` is `|c/r - 1|` for ratio
    /// `r = meas/est`, and the harmonic midpoint of `r_min, r_max`
    /// balances the two extremes exactly).
    pub fn fit(&mut self) {
        if self.points.is_empty() {
            self.correction_ppm = PPM;
            self.max_err_ppm = 0;
            return;
        }
        let ratios: Vec<u128> = self
            .points
            .iter()
            .map(|pt| pt.measured as u128 * PPM as u128 / pt.estimated.max(1) as u128)
            .collect();
        let lo = *ratios.iter().min().expect("nonempty");
        let hi = *ratios.iter().max().expect("nonempty");
        self.correction_ppm = ((2 * lo * hi / (lo + hi).max(1)) as u64).max(1);
        self.max_err_ppm = self
            .points
            .iter()
            .map(|pt| rel_err_ppm(self.corrected(pt.estimated), pt.measured))
            .max()
            .unwrap_or(0);
    }

    /// Apply this family's correction to a raw estimate.
    pub fn corrected(&self, raw: u64) -> u64 {
        scale_ppm(raw, self.correction_ppm)
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("workload", self.workload.as_str())
            .field("config", self.config.as_str())
            .field("scale", self.scale.as_str())
            .field("correction_ppm", self.correction_ppm)
            .field("max_err_ppm", self.max_err_ppm)
            .field("demand", self.demand.to_json())
            .field(
                "points",
                self.points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
            )
            .build()
    }

    fn from_json(v: &Json) -> Result<CalFamily, String> {
        let obj = v.as_object("family")?;
        Ok(CalFamily {
            workload: obj.get("workload", "family")?.as_string()?,
            config: obj.get("config", "family")?.as_string()?,
            scale: obj.get("scale", "family")?.as_string()?,
            correction_ppm: obj.get("correction_ppm", "family")?.as_u64()?,
            max_err_ppm: obj.get("max_err_ppm", "family")?.as_u64()?,
            demand: WorkloadDemand::from_json(obj.get("demand", "family")?)?,
            points: obj
                .get("points", "family")?
                .as_array("points")?
                .iter()
                .map(CalPoint::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Experiment-level error bound: the worst family residual among the
/// families an experiment's cells draw from. This is what the serve
/// scheduler's `auto` fidelity consults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentBound {
    /// Experiment (harness) name, e.g. `table1`.
    pub experiment: String,
    /// Scale the bound holds at.
    pub scale: String,
    /// Worst residual relative error across the experiment's families,
    /// in [`PPM`].
    pub max_err_ppm: u64,
}

impl ExperimentBound {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("experiment", self.experiment.as_str())
            .field("scale", self.scale.as_str())
            .field("max_err_ppm", self.max_err_ppm)
            .build()
    }

    fn from_json(v: &Json) -> Result<ExperimentBound, String> {
        let obj = v.as_object("experiment bound")?;
        Ok(ExperimentBound {
            experiment: obj.get("experiment", "experiment bound")?.as_string()?,
            scale: obj.get("scale", "experiment bound")?.as_string()?,
            max_err_ppm: obj.get("max_err_ppm", "experiment bound")?.as_u64()?,
        })
    }
}

/// The committed calibration artifact: the accepted error bound, the
/// per-experiment bounds, and every fitted family.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CalibrationTable {
    /// Hard acceptance bound on every family's residual, in [`PPM`]
    /// (the `calibrate` harness and `model-smoke` CI fail past it).
    pub bound_ppm: u64,
    /// Experiment-level bounds derived from the families.
    pub experiments: Vec<ExperimentBound>,
    /// Fitted families, sorted by (scale, workload, config).
    pub families: Vec<CalFamily>,
}

impl CalibrationTable {
    /// An empty table with the given acceptance bound.
    pub fn new(bound_ppm: u64) -> CalibrationTable {
        CalibrationTable {
            bound_ppm,
            experiments: Vec::new(),
            families: Vec::new(),
        }
    }

    /// Fit every family and normalize ordering (sorted families make
    /// the serialized table byte-stable regardless of insertion
    /// order).
    pub fn fit(&mut self) {
        for f in &mut self.families {
            f.fit();
        }
        self.families.sort_by(|a, b| {
            (a.scale.as_str(), a.workload.as_str(), a.config.as_str()).cmp(&(
                b.scale.as_str(),
                b.workload.as_str(),
                b.config.as_str(),
            ))
        });
    }

    /// Record that `experiment`'s cells at `scale` draw from every
    /// family of that scale: its bound is the worst family residual.
    pub fn bind_experiment(&mut self, experiment: &str, scale: &str) {
        let max_err_ppm = self
            .families
            .iter()
            .filter(|f| f.scale == scale)
            .map(|f| f.max_err_ppm)
            .max()
            .unwrap_or(u64::MAX);
        self.experiments
            .retain(|e| !(e.experiment == experiment && e.scale == scale));
        self.experiments.push(ExperimentBound {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            max_err_ppm,
        });
        self.experiments
            .sort_by(|a, b| (&a.experiment, &a.scale).cmp(&(&b.experiment, &b.scale)));
    }

    /// The family covering (workload, config, scale), if calibrated.
    pub fn family(&self, workload: &str, config: &str, scale: &str) -> Option<&CalFamily> {
        self.families
            .iter()
            .find(|f| f.workload == workload && f.config == config && f.scale == scale)
    }

    /// The calibrated error bound for an experiment at a scale;
    /// `None` when the grid never covered it.
    pub fn experiment_err_ppm(&self, experiment: &str, scale: &str) -> Option<u64> {
        self.experiments
            .iter()
            .find(|e| e.experiment == experiment && e.scale == scale)
            .map(|e| e.max_err_ppm)
    }

    /// Whether `auto` fidelity may answer `experiment` at `scale`
    /// analytically under `threshold_ppm`: calibrated, and the
    /// confidence band is no wider than the threshold.
    pub fn within_bound(&self, experiment: &str, scale: &str, threshold_ppm: u64) -> bool {
        self.experiment_err_ppm(experiment, scale)
            .is_some_and(|err| err <= threshold_ppm)
    }

    /// Families whose residual exceeds the table's acceptance bound —
    /// nonempty means the artifact must not be blessed.
    pub fn violations(&self) -> Vec<String> {
        self.families
            .iter()
            .filter(|f| f.max_err_ppm > self.bound_ppm)
            .map(|f| {
                format!(
                    "{} / {} @ {}: residual {}ppm exceeds bound {}ppm",
                    f.workload, f.config, f.scale, f.max_err_ppm, self.bound_ppm
                )
            })
            .collect()
    }

    /// Serialize the whole table, one family per line — deterministic
    /// bytes (the `model-smoke` job diffs this against the committed
    /// file exactly like a golden).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bound_ppm\": {},\n", self.bound_ppm));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let sep = if i + 1 == self.experiments.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    {}{}\n", e.to_json().write(), sep));
        }
        out.push_str("  ],\n");
        out.push_str("  \"families\": [\n");
        for (i, f) in self.families.iter().enumerate() {
            let sep = if i + 1 == self.families.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    {}{}\n", f.to_json().write(), sep));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a rendered table.
    pub fn parse(text: &str) -> Result<CalibrationTable, String> {
        let v = Json::parse(text)?;
        let obj = v.as_object("calibration")?;
        Ok(CalibrationTable {
            bound_ppm: obj.get("bound_ppm", "calibration")?.as_u64()?,
            experiments: obj
                .get("experiments", "calibration")?
                .as_array("experiments")?
                .iter()
                .map(ExperimentBound::from_json)
                .collect::<Result<_, _>>()?,
            families: obj
                .get("families", "calibration")?
                .as_array("families")?
                .iter()
                .map(CalFamily::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(workload: &str, points: Vec<CalPoint>) -> CalFamily {
        CalFamily {
            workload: workload.to_string(),
            config: "ws/spm-stack/spm-q".to_string(),
            scale: "tiny".to_string(),
            demand: WorkloadDemand {
                base_cols: 4,
                base_rows: 2,
                base_elapsed: 1000,
                compute: 7000,
                ..WorkloadDemand::default()
            },
            points,
            correction_ppm: 0,
            max_err_ppm: 0,
        }
    }

    #[test]
    fn fit_finds_a_pure_scale_error_exactly() {
        // Estimates exactly 20% low at every point: correction 1.25x,
        // residual 0.
        let mut f = family(
            "Fib",
            vec![
                CalPoint {
                    cols: 4,
                    rows: 2,
                    measured: 1000,
                    estimated: 800,
                },
                CalPoint {
                    cols: 8,
                    rows: 4,
                    measured: 500,
                    estimated: 400,
                },
            ],
        );
        f.fit();
        assert_eq!(f.correction_ppm, 1_250_000);
        assert_eq!(f.max_err_ppm, 0);
        assert_eq!(f.corrected(800), 1000);
    }

    #[test]
    fn fit_records_the_residual_spread() {
        // Ratios 1.0 and 1.5: the minimax correction is their
        // harmonic midpoint 1.2x, which balances both residuals at
        // exactly 20% (the arithmetic mean 1.25 would leave 25% on
        // the first point).
        let mut f = family(
            "SpMV",
            vec![
                CalPoint {
                    cols: 4,
                    rows: 2,
                    measured: 1000,
                    estimated: 1000,
                },
                CalPoint {
                    cols: 8,
                    rows: 4,
                    measured: 1500,
                    estimated: 1000,
                },
            ],
        );
        f.fit();
        assert_eq!(f.correction_ppm, 1_200_000);
        assert_eq!(f.max_err_ppm, 200_000);
    }

    fn table() -> CalibrationTable {
        let mut t = CalibrationTable::new(100_000);
        let mut good = family(
            "Fib",
            vec![CalPoint {
                cols: 4,
                rows: 2,
                measured: 1000,
                estimated: 950,
            }],
        );
        good.fit();
        t.families.push(good);
        t.fit();
        t.bind_experiment("table1", "tiny");
        t
    }

    #[test]
    fn experiment_bounds_gate_auto_mode() {
        let t = table();
        // One-point fit: the correction absorbs the error up to PPM
        // floor rounding (~0.1%).
        let err = t.experiment_err_ppm("table1", "tiny").unwrap();
        assert!(err <= 2_000, "residual {err}ppm");
        assert!(t.within_bound("table1", "tiny", 100_000));
        assert!(!t.within_bound("table1", "small", 100_000), "wrong scale");
        assert!(
            !t.within_bound("fig11_scaling", "tiny", 100_000),
            "never calibrated"
        );
        assert!(t.family("Fib", "ws/spm-stack/spm-q", "tiny").is_some());
        assert!(t.family("Fib", "ws/spm-stack/spm-q", "small").is_none());
    }

    #[test]
    fn violations_flag_out_of_bound_families() {
        let mut t = table();
        assert!(t.violations().is_empty());
        t.families[0].max_err_ppm = 400_000;
        let v = t.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("Fib"), "{v:?}");
    }

    #[test]
    fn render_parse_round_trips_byte_stably() {
        let t = table();
        let text = t.render();
        let back = CalibrationTable::parse(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.render(), text, "render is a fixed point");
    }

    #[test]
    fn fit_sorts_families_for_byte_stable_output() {
        let mut t = CalibrationTable::new(100_000);
        t.families.push(family("Zeta", Vec::new()));
        t.families.push(family("Alpha", Vec::new()));
        t.fit();
        assert_eq!(t.families[0].workload, "Alpha");
    }
}
