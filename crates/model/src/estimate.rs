//! The estimator: a roofline-style max of latency and throughput
//! terms, with M/D/1 contention solved by integer bisection.
//!
//! ## Model
//!
//! For a machine of `P` cores the elapsed-cycle estimate `T` is the
//! least fixed point of
//!
//! ```text
//! T = max( compute/P + Σ_x stall_x · infl_x(T) / P + steal
//!              + span + span_hop · (hops(P)/hops(P_base) - 1)^(e/2),
//!          busy_noc / links,  busy_llc / banks,  busy_dram / channels )
//! ```
//!
//! where each `infl_x(T) = (1 + W(ρ_x(T))) / (1 + W(ρ_x^base))`
//! rescales a *measured* stall total from the contention level of the
//! measurement run to the contention level implied by the target
//! shape, using the M/D/1 mean-wait `W(ρ) = ρ / (2(1-ρ))` (in units
//! of the service time) and utilization `ρ_x(T) = busy_x / (servers_x
//! · T)`. `steal` is the dynamic-runtime overhead per thief
//! (`steal_search + queue_lock` divided by the measured core count —
//! more cores bring proportionally more thieves, paper §3.4). The
//! critical path splits in two: `span` is shape-independent slack,
//! while `span_hop` charges *additional* critical-path cycles as the
//! mean hop count grows beyond the measurement shape — remote
//! accesses on the serial path cross the mesh, so the path stretches
//! on bigger meshes. The charge is `span_hop` times the hop-ratio
//! *growth* `(hops(P)/hops(base) - 1)` raised to the family's fitted
//! half-step exponent `e/2` (`span_hop_exp2`): exponents below one
//! model paths that degrade early and saturate, above one paths where
//! coordination gets both longer *and* slower on bigger machines. At
//! the measurement shape the charge is exactly zero (the base
//! reconstruction stays exact), and at a doubled mesh the growth is
//! 1.0 so `span_hop` *is* the extra charge there, whatever the
//! exponent. (That charge is why small inputs can get *slower* on
//! bigger meshes, which matches the cycle engine.)
//!
//! The right-hand side is non-increasing in `T` (higher trial horizon
//! ⇒ lower utilization ⇒ less contention), so the fixed point exists
//! and bisection finds it exactly. For demands with no
//! distance-dependent span (`span_hop == 0`, e.g. a static loop over
//! SPM-resident data) the rhs is also non-increasing in the machine
//! size (more cores/banks/links only shrink per-core shares and
//! utilizations while `steal` and `span` stay constant), so those
//! estimates are **monotone non-increasing in core count** — the
//! property the backend proptests pin down.

use crate::{pow_half_ppm, scale_ppm, MachineParams, WorkloadDemand, PPM};

/// Utilizations are capped here so the M/D/1 wait stays finite; an
/// overloaded component saturates at a ~25x service-time wait instead
/// of diverging.
const RHO_CAP_PPM: u64 = 980_000;

/// M/D/1 mean wait in units of the service time, `ρ / (2(1-ρ))`,
/// with `ρ` given (and returned) in [`PPM`].
pub fn md1_wait_ppm(rho_ppm: u64) -> u64 {
    let rho = rho_ppm.min(RHO_CAP_PPM) as u128;
    ((rho * PPM as u128) / (2 * (PPM as u128 - rho))) as u64
}

/// Utilization of `servers` parallel servers carrying `busy` total
/// occupancy cycles over a `horizon`, in [`PPM`], capped.
fn utilization_ppm(busy: u64, servers: u64, horizon: u64) -> u64 {
    if busy == 0 {
        return 0;
    }
    let cap = servers.max(1) as u128 * horizon.max(1) as u128;
    ((busy as u128 * PPM as u128) / cap).min(RHO_CAP_PPM as u128) as u64
}

/// One analytic answer, with the roofline terms that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Estimate {
    /// Elapsed-cycle estimate (uncorrected; calibration scales it).
    pub cycles: u64,
    /// Latency-path term at the solution: per-core work + contention-
    /// rescaled stalls + steal overhead + span.
    pub per_core: u64,
    /// NoC aggregate-bandwidth floor (flit-hops / links).
    pub noc_bound: u64,
    /// LLC bank-throughput floor (accesses · service / banks).
    pub llc_bound: u64,
    /// DRAM channel-occupancy floor.
    pub dram_bound: u64,
    /// Per-core dynamic-runtime overhead charged (0 for static loops).
    pub steal: u64,
    /// Critical-path/imbalance slack charged.
    pub span: u64,
}

/// The analytic backend's core: machine parameters + the formulas.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    params: MachineParams,
}

impl AnalyticModel {
    /// A model of the given machine shape.
    pub fn new(params: MachineParams) -> AnalyticModel {
        AnalyticModel { params }
    }

    /// The machine this model answers for.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Estimate the elapsed cycles of a workload with the given
    /// measured demand on this model's machine. Deterministic: pure
    /// integer arithmetic, no iteration-count or platform sensitivity.
    pub fn estimate(&self, d: &WorkloadDemand) -> Estimate {
        let p = &self.params;
        let base = p.with_shape(d.base_cols, d.base_rows);
        let cores = p.cores().max(1);

        // Component occupancy totals. Flit-hops grow with the mean
        // route length, so the measured total is rescaled by the mean-
        // hop ratio between the target and measurement shapes; LLC
        // access counts and DRAM traffic are shape-independent.
        let base_noc_busy = d.link_flits.saturating_mul(p.hop_latency);
        let hops_ratio_ppm = if base.mean_hops_x1000() == 0 {
            PPM
        } else {
            ((p.mean_hops_x1000() as u128 * PPM as u128) / base.mean_hops_x1000() as u128) as u64
        };
        let noc_busy = scale_ppm(base_noc_busy, hops_ratio_ppm);
        let llc_busy = d.llc_accesses.saturating_mul(p.llc_hit_latency);
        // The channel is occupied for the burst, not the full observed
        // stall (which includes activate/CAS latency and the mesh).
        let dram_busy =
            d.dram_stall.saturating_mul(p.dram_bus) / (p.dram_bus + p.dram_latency).max(1);

        let noc_bound = noc_busy / p.links();
        let llc_bound = llc_busy / p.llc_banks.max(1);
        let dram_bound = dram_busy / p.dram_channels.max(1);

        // Contention already baked into the measured stalls.
        let w_base_noc = md1_wait_ppm(utilization_ppm(base_noc_busy, base.links(), d.base_elapsed));
        let w_base_llc = md1_wait_ppm(utilization_ppm(llc_busy, base.llc_banks, d.base_elapsed));
        let w_base_dram = md1_wait_ppm(utilization_ppm(dram_busy, p.dram_channels, d.base_elapsed));

        let steal = (d.steal_search + d.queue_lock) / d.base_cores();
        // Growth-only distance charge: zero at (or below) the
        // measurement shape's mean hop count.
        let hop_growth_ppm = hops_ratio_ppm.saturating_sub(PPM);
        let hop_weight_ppm = pow_half_ppm(hop_growth_ppm, d.span_hop_exp2);
        let span = d.span.saturating_add(scale_ppm(d.span_hop, hop_weight_ppm));

        // Rescale a measured stall total from base contention to the
        // contention implied by trial horizon `t` on the target shape.
        let rescaled = |stall: u64, busy: u64, servers: u64, w_base: u64, t: u64| -> u64 {
            let w_t = md1_wait_ppm(utilization_ppm(busy, servers, t));
            let ratio_ppm = (((PPM + w_t) as u128 * PPM as u128) / (PPM + w_base) as u128) as u64;
            scale_ppm(stall, ratio_ppm)
        };
        let latency_path = |t: u64| -> u64 {
            let spm = rescaled(d.spm_stall, noc_busy, p.links(), w_base_noc, t);
            let llc = rescaled(d.llc_stall, llc_busy, p.llc_banks.max(1), w_base_llc, t);
            let dram = rescaled(
                d.dram_stall,
                dram_busy,
                p.dram_channels.max(1),
                w_base_dram,
                t,
            );
            let shared = d
                .compute
                .saturating_add(spm)
                .saturating_add(llc)
                .saturating_add(dram);
            (shared / cores).saturating_add(steal).saturating_add(span)
        };
        let rhs = |t: u64| -> u64 {
            latency_path(t)
                .max(noc_bound)
                .max(llc_bound)
                .max(dram_bound)
                .max(1)
        };

        // The capped utilization bounds the wait at ~24.5 service
        // times, so 26x every stall (plus everything else, undivided)
        // is a safe ceiling with rhs(hi) <= hi.
        let hi0 = d
            .compute
            .saturating_add(d.spm_stall.saturating_mul(26))
            .saturating_add(d.llc_stall.saturating_mul(26))
            .saturating_add(d.dram_stall.saturating_mul(26))
            .saturating_add(d.steal_search)
            .saturating_add(d.queue_lock)
            .saturating_add(span)
            .saturating_add(noc_bound)
            .saturating_add(llc_bound)
            .saturating_add(dram_bound)
            .max(1);
        let (mut lo, mut hi) = (1u64, hi0);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if rhs(mid) <= mid {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let cycles = hi;

        Estimate {
            cycles,
            per_core: latency_path(cycles),
            noc_bound,
            llc_bound,
            dram_bound,
            steal,
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel_err_ppm;

    fn params(cols: u64, rows: u64) -> MachineParams {
        MachineParams {
            cols,
            rows,
            hop_latency: 1,
            llc_banks: 2 * cols,
            llc_hit_latency: 6,
            dram_channels: 1,
            dram_latency: 30,
            dram_bus: 6,
        }
    }

    fn demand() -> WorkloadDemand {
        WorkloadDemand {
            base_cols: 4,
            base_rows: 2,
            base_elapsed: 120_000,
            instructions: 400_000,
            compute: 600_000,
            spm_stall: 120_000,
            llc_stall: 90_000,
            dram_stall: 60_000,
            steal_search: 30_000,
            queue_lock: 12_000,
            llc_accesses: 15_000,
            link_flits: 48_000,
            span: 6_000,
            span_hop: 0,
            span_hop_exp2: 2,
        }
    }

    #[test]
    fn md1_wait_grows_with_utilization_and_saturates() {
        assert_eq!(md1_wait_ppm(0), 0);
        // rho = 0.5 => W/S = 0.5.
        assert_eq!(md1_wait_ppm(PPM / 2), PPM / 2);
        assert!(md1_wait_ppm(900_000) > md1_wait_ppm(500_000));
        // Capped: anything past the cap waits like the cap.
        assert_eq!(md1_wait_ppm(PPM), md1_wait_ppm(RHO_CAP_PPM));
    }

    #[test]
    fn estimate_is_deterministic() {
        let m = AnalyticModel::new(params(8, 4));
        let d = demand();
        assert_eq!(m.estimate(&d), m.estimate(&d));
    }

    #[test]
    fn estimate_reconstructs_the_measurement_run() {
        // At the measurement shape the contention rescale is exactly
        // 1x and per-core work + span reproduces the measured elapsed
        // cycles (up to integer division in the per-core share):
        // demand() has busy/P = 114_000 and span = 6_000.
        let mut d = demand();
        d.span = d.base_elapsed - d.busy() / d.base_cores();
        let est = AnalyticModel::new(params(4, 2)).estimate(&d);
        assert!(
            rel_err_ppm(est.cycles, d.base_elapsed) < 20_000,
            "reconstruction {} vs measured {}",
            est.cycles,
            d.base_elapsed
        );
    }

    #[test]
    fn estimate_is_monotone_in_core_count_for_static_demands() {
        let mut d = demand();
        d.steal_search = 0;
        d.queue_lock = 0;
        let shapes = [(2, 2), (4, 2), (4, 4), (8, 4), (8, 8), (16, 8), (16, 16)];
        let mut last = u64::MAX;
        for (c, r) in shapes {
            let est = AnalyticModel::new(params(c, r)).estimate(&d);
            assert!(
                est.cycles <= last,
                "estimate grew from {last} to {} at {c}x{r}",
                est.cycles
            );
            last = est.cycles;
        }
    }

    #[test]
    fn hop_dependent_span_grows_with_mesh_diameter() {
        // Tiny inputs can get slower on bigger meshes: the serial
        // path's remote accesses cross more hops. A span_hop-dominated
        // demand must estimate higher on 16x8 than on its 4x2 base.
        let d = WorkloadDemand {
            base_cols: 4,
            base_rows: 2,
            base_elapsed: 10_000,
            compute: 8_000,
            span: 2_000,
            span_hop: 6_000,
            span_hop_exp2: 2,
            ..WorkloadDemand::default()
        };
        let small = AnalyticModel::new(params(4, 2)).estimate(&d);
        let big = AnalyticModel::new(params(16, 8)).estimate(&d);
        // Mean hops go 2 -> 8, so the charged span roughly doubles the
        // whole estimate while the per-core work shrinks.
        assert!(
            big.cycles > small.cycles,
            "distance growth missing: {} vs {}",
            big.cycles,
            small.cycles
        );
        assert!(big.span > small.span);
        // At the base shape the distance charge is exactly zero.
        assert_eq!(small.span, d.span);
        // A steeper fitted exponent degrades faster: the hop-ratio
        // growth at 16x8 is 4 - 1 = 3, so the weight is 3 (linear,
        // exp2 = 2) vs 9 (quadratic, exp2 = 4) — a 3x steeper charge.
        let mut quad = d.clone();
        quad.span_hop_exp2 = 4;
        let big_quad = AnalyticModel::new(params(16, 8)).estimate(&quad);
        let (charged, linear) = (big_quad.span - d.span, big.span - d.span);
        // Up to a few cycles of fixed-point rounding in the half-power.
        assert!(
            charged.abs_diff(3 * linear) <= 8,
            "quadratic hop weight should charge ~3x the linear one: {charged} vs 3*{linear}"
        );
    }

    #[test]
    fn estimate_is_monotone_in_demand() {
        let m = AnalyticModel::new(params(8, 4));
        let d = demand();
        let mut heavier = d.clone();
        heavier.compute *= 2;
        assert!(m.estimate(&heavier).cycles > m.estimate(&d).cycles);
        let mut stallier = d.clone();
        stallier.dram_stall *= 4;
        assert!(m.estimate(&stallier).cycles > m.estimate(&d).cycles);
    }

    #[test]
    fn aggregate_bounds_floor_the_estimate() {
        // A demand that is pure DRAM traffic cannot finish faster than
        // the channel can stream it, however many cores there are.
        let mut d = WorkloadDemand {
            base_cols: 4,
            base_rows: 2,
            base_elapsed: 1_000_000,
            dram_stall: 3_600_000,
            ..WorkloadDemand::default()
        };
        d.compute = 1_000;
        let est = AnalyticModel::new(params(16, 16)).estimate(&d);
        assert!(est.dram_bound > 0);
        assert!(est.cycles >= est.dram_bound);
    }

    #[test]
    fn steal_overhead_is_charged_per_core() {
        let m = AnalyticModel::new(params(8, 4));
        let d = demand();
        let mut stealless = d.clone();
        stealless.steal_search = 0;
        stealless.queue_lock = 0;
        let with = m.estimate(&d);
        let without = m.estimate(&stealless);
        assert!(with.steal > 0);
        assert_eq!(without.steal, 0);
        assert!(with.cycles > without.cycles);
    }
}
