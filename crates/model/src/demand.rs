//! Workload-side model inputs: the traffic a workload generates,
//! measured once per family by a profiled cycle-accurate run.
//!
//! All quantities are machine-wide *totals* at the measurement shape
//! (`base_cols x base_rows`) — total work is what stays roughly
//! constant as the estimator extrapolates to other core counts, while
//! per-core shares and contention are what the formulas rescale.

use crate::PPM;
use jsonlite::Json;

/// Measured traffic demands of one workload family.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkloadDemand {
    /// Mesh columns of the measurement run.
    pub base_cols: u64,
    /// Mesh rows of the measurement run.
    pub base_rows: u64,
    /// Elapsed cycles of the measurement run.
    pub base_elapsed: u64,
    /// Dynamic instructions (reported verbatim by the analytic
    /// backend — instruction counts are input-, not timing-, derived).
    pub instructions: u64,
    /// Useful-work cycles: `compute` + `fence_amo` + `stack_overflow`
    /// profiler buckets (work that scales down with more cores).
    pub compute: u64,
    /// `spm_stall` bucket total (local port + remote SPM round trips).
    pub spm_stall: u64,
    /// `llc_stall` bucket total.
    pub llc_stall: u64,
    /// `dram_stall` bucket total.
    pub dram_stall: u64,
    /// `steal_search` bucket total (thief-side overhead of the
    /// dynamic-task runtime).
    pub steal_search: u64,
    /// `queue_lock` bucket total.
    pub queue_lock: u64,
    /// LLC accesses (bank hits + misses), for bank-contention terms.
    pub llc_accesses: u64,
    /// Total flit-hops carried across mesh links, for NoC terms.
    pub link_flits: u64,
    /// Span/imbalance slack: elapsed cycles minus the mean per-core
    /// busy time at the measurement shape. Charged as a core-count-
    /// independent critical-path term.
    pub span: u64,
    /// Distance-dependent critical-path cycles charged per unit of
    /// mean-hop-ratio growth *beyond the measurement shape*: remote
    /// accesses on the serial path slow down with the mesh diameter,
    /// so the critical path stretches on bigger meshes (and this
    /// charge is exactly zero at the measurement shape itself). Not
    /// directly measurable from bucket totals — the `calibrate`
    /// harness fits it (together with [`span`](Self::span)) from the
    /// scaling grid.
    pub span_hop: u64,
    /// Exponent applied to the mean-hop ratio when rescaling
    /// [`span_hop`](Self::span_hop), in **half units** (2 = linear,
    /// 4 = quadratic; 0 degenerates to shape-independent). Families
    /// differ in how sharply their serial path degrades with mesh
    /// diameter — serialized launch loops grow near-linearly, while
    /// coordination that both lengthens *and* slows with the machine
    /// grows closer to cubically — so `calibrate` fits this per
    /// family from the scaling grid.
    pub span_hop_exp2: u64,
}

impl WorkloadDemand {
    /// Cores of the measurement run.
    pub fn base_cores(&self) -> u64 {
        (self.base_cols * self.base_rows).max(1)
    }

    /// Total busy (non-idle) cycles across all measured components.
    pub fn busy(&self) -> u64 {
        self.compute
            + self.spm_stall
            + self.llc_stall
            + self.dram_stall
            + self.steal_search
            + self.queue_lock
    }

    /// Fraction of busy time spent on dynamic-runtime overhead
    /// (steal search + queue locks), in [`PPM`]. Zero for static
    /// loops — the estimator's monotonicity argument relies on it.
    pub fn steal_fraction_ppm(&self) -> u64 {
        let busy = self.busy();
        if busy == 0 {
            return 0;
        }
        ((self.steal_search + self.queue_lock) as u128 * PPM as u128 / busy as u128) as u64
    }

    /// Serialize (stable field order; part of `calibration.json`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("base_cols", self.base_cols)
            .field("base_rows", self.base_rows)
            .field("base_elapsed", self.base_elapsed)
            .field("instructions", self.instructions)
            .field("compute", self.compute)
            .field("spm_stall", self.spm_stall)
            .field("llc_stall", self.llc_stall)
            .field("dram_stall", self.dram_stall)
            .field("steal_search", self.steal_search)
            .field("queue_lock", self.queue_lock)
            .field("llc_accesses", self.llc_accesses)
            .field("link_flits", self.link_flits)
            .field("span", self.span)
            .field("span_hop", self.span_hop)
            .field("span_hop_exp2", self.span_hop_exp2)
            .build()
    }

    /// Parse back; every field is required (the format is new — no
    /// legacy forms to tolerate).
    pub fn from_json(v: &Json) -> Result<WorkloadDemand, String> {
        let obj = v.as_object("demand")?;
        let get = |name: &str| -> Result<u64, String> { obj.get(name, "demand")?.as_u64() };
        Ok(WorkloadDemand {
            base_cols: get("base_cols")?,
            base_rows: get("base_rows")?,
            base_elapsed: get("base_elapsed")?,
            instructions: get("instructions")?,
            compute: get("compute")?,
            spm_stall: get("spm_stall")?,
            llc_stall: get("llc_stall")?,
            dram_stall: get("dram_stall")?,
            steal_search: get("steal_search")?,
            queue_lock: get("queue_lock")?,
            llc_accesses: get("llc_accesses")?,
            link_flits: get("link_flits")?,
            span: get("span")?,
            span_hop: get("span_hop")?,
            span_hop_exp2: get("span_hop_exp2")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> WorkloadDemand {
        WorkloadDemand {
            base_cols: 4,
            base_rows: 2,
            base_elapsed: 120_000,
            instructions: 400_000,
            compute: 600_000,
            spm_stall: 120_000,
            llc_stall: 90_000,
            dram_stall: 60_000,
            steal_search: 30_000,
            queue_lock: 12_000,
            llc_accesses: 15_000,
            link_flits: 48_000,
            span: 4_000,
            span_hop: 1_500,
            span_hop_exp2: 3,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let d = sample();
        assert_eq!(WorkloadDemand::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn missing_fields_are_rejected() {
        let v = Json::parse("{\"base_cols\":4}").unwrap();
        assert!(WorkloadDemand::from_json(&v).is_err());
    }

    #[test]
    fn derived_quantities() {
        let d = sample();
        assert_eq!(d.base_cores(), 8);
        assert_eq!(d.busy(), 912_000);
        // 42_000 / 912_000 ≈ 4.6% runtime overhead.
        assert_eq!(d.steal_fraction_ppm(), 42_000 * PPM / 912_000);
        assert_eq!(WorkloadDemand::default().steal_fraction_ppm(), 0);
    }
}
