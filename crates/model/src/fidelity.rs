//! The fidelity selector shared by every layer of the stack: machine
//! config, bench CLI, job specs, and the serve scheduler.

/// Which backend answers a simulation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// The cycle-accurate discrete-event engine (the default; the only
    /// fidelity that can bless or check golden numbers).
    #[default]
    Cycle,
    /// The analytic queueing/throughput model: microseconds instead of
    /// seconds, valid only where calibration says so.
    Analytic,
    /// Resolve per request: answer from the analytic model when the
    /// experiment family's calibrated error bound is tight enough,
    /// escalate to cycle-accurate otherwise. Must be resolved to one
    /// of the concrete fidelities before a job digest is taken.
    Auto,
}

impl Fidelity {
    /// Stable lowercase name (CLI values, wire forms, digests).
    pub fn as_str(self) -> &'static str {
        match self {
            Fidelity::Cycle => "cycle",
            Fidelity::Analytic => "analytic",
            Fidelity::Auto => "auto",
        }
    }

    /// Parse a CLI/wire name. The empty string means [`Fidelity::Cycle`]
    /// so job specs written before the field existed keep their
    /// meaning.
    pub fn parse(s: &str) -> Result<Fidelity, String> {
        Ok(match s {
            "" | "cycle" => Fidelity::Cycle,
            "analytic" => Fidelity::Analytic,
            "auto" => Fidelity::Auto,
            other => return Err(format!("unknown fidelity {other:?} (cycle|analytic|auto)")),
        })
    }

    /// Whether this is the cycle-accurate engine (the only fidelity
    /// whose numbers may touch committed goldens).
    pub fn is_cycle(self) -> bool {
        matches!(self, Fidelity::Cycle)
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in [Fidelity::Cycle, Fidelity::Analytic, Fidelity::Auto] {
            assert_eq!(Fidelity::parse(f.as_str()), Ok(f));
            assert_eq!(format!("{f}"), f.as_str());
        }
        assert!(Fidelity::parse("quantum").is_err());
    }

    #[test]
    fn empty_string_is_legacy_cycle() {
        assert_eq!(Fidelity::parse(""), Ok(Fidelity::Cycle));
        assert_eq!(Fidelity::default(), Fidelity::Cycle);
        assert!(Fidelity::Cycle.is_cycle());
        assert!(!Fidelity::Auto.is_cycle());
    }
}
