#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # mosaic-model
//!
//! A deterministic **analytic performance model** of the Mosaic
//! manycore: the fast half of the dual-fidelity backend (see
//! `mosaic_sim::backend`). Where the cycle-accurate engine simulates
//! every flit, bank conflict, and steal probe, this crate answers the
//! same "how many cycles would this run take?" question from closed
//! formulas in microseconds:
//!
//! * **per-component service rates** taken from the machine shape
//!   ([`MachineParams`]: mesh hop latency, LLC bank count/latency,
//!   DRAM channel occupancy),
//! * **M/D/1-style contention terms** fed by a workload's *measured*
//!   traffic demands ([`WorkloadDemand`], collected once per workload
//!   family by a profiled cycle-accurate run), and
//! * a **work/span-with-steal-overhead term** for the dynamic-task
//!   runtime, with steal cost taken from the profiler's
//!   `steal_search`/`queue_lock` buckets.
//!
//! The model is *calibrated*, not trusted: the `calibrate` harness in
//! `mosaic-bench` runs both backends over a sweep grid, fits one
//! correction factor per workload family ([`CalibrationTable`]), and
//! records the residual relative error. Consumers (the serve
//! scheduler's `auto` fidelity, the `--fidelity analytic` bench path)
//! only answer from the model when that residual is inside the
//! configured bound.
//!
//! ## Determinism
//!
//! Everything here is integer arithmetic (u64/u128 with parts-per-
//! million fixed point, [`PPM`]): same inputs, same estimate, on every
//! host. The contention fixed point is solved by integer bisection —
//! no floats, no iteration-count sensitivity, no platform-dependent
//! rounding. This keeps the crate inside the repo's determinism rules
//! for golden-affecting code (`detlint` D004) and makes the emitted
//! `calibration.json` byte-reproducible.

pub mod calibrate;
pub mod demand;
pub mod estimate;
pub mod fidelity;
pub mod params;

pub use calibrate::{CalFamily, CalPoint, CalibrationTable, ExperimentBound};
pub use demand::WorkloadDemand;
pub use estimate::{AnalyticModel, Estimate};
pub use fidelity::Fidelity;
pub use params::MachineParams;

/// Fixed-point scale used throughout: one part per million.
pub const PPM: u64 = 1_000_000;

/// Multiply `value` by a [`PPM`]-scaled factor without overflow.
pub fn scale_ppm(value: u64, factor_ppm: u64) -> u64 {
    ((value as u128 * factor_ppm as u128) / PPM as u128).min(u64::MAX as u128) as u64
}

/// `ratio^(half_exp / 2)` for a [`PPM`]-scaled ratio, in [`PPM`] —
/// integer power with half-step exponents, used for the fitted
/// distance weighting of critical-path spans (`half_exp` 2 is linear,
/// 4 quadratic, 3 the geometric midpoint). `half_exp` 0 yields 1.0x.
pub fn pow_half_ppm(ratio_ppm: u64, half_exp: u64) -> u64 {
    // Newton's method floor square root on the u128 widening, so the
    // result stays in PPM: sqrt(r/PPM) * PPM = sqrt(r * PPM).
    let n = ratio_ppm as u128 * PPM as u128;
    let sqrt = if n < 2 {
        n
    } else {
        let mut x = 1u128 << ((128 - n.leading_zeros()).div_ceil(2));
        loop {
            let y = (x + n / x) / 2;
            if y >= x {
                break x;
            }
            x = y;
        }
    };
    let mut out = PPM as u128;
    for _ in 0..half_exp {
        out = out * sqrt / PPM as u128;
        if out > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    out as u64
}

/// The relative difference `|a - b| / b` in parts per million
/// (saturating; 0 when `b` is 0 and `a` is 0, `u64::MAX` when only
/// `b` is 0).
pub fn rel_err_ppm(a: u64, b: u64) -> u64 {
    if b == 0 {
        return if a == 0 { 0 } else { u64::MAX };
    }
    let diff = a.abs_diff(b);
    ((diff as u128 * PPM as u128) / b as u128).min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_ppm_is_exact_for_small_values() {
        assert_eq!(scale_ppm(100, PPM), 100);
        assert_eq!(scale_ppm(100, PPM / 2), 50);
        assert_eq!(scale_ppm(1_000_000, 1_250_000), 1_250_000);
        assert_eq!(scale_ppm(0, 3 * PPM), 0);
    }

    #[test]
    fn scale_ppm_survives_large_values() {
        // u64::MAX * 1.0 would overflow u64 multiplication; the u128
        // intermediate keeps it exact.
        assert_eq!(scale_ppm(u64::MAX, PPM), u64::MAX);
    }

    #[test]
    fn pow_half_ppm_matches_exact_powers() {
        // 4.0 ^ {0, 0.5, 1, 1.5, 2} = 1, 2, 4, 8, 16.
        assert_eq!(pow_half_ppm(4 * PPM, 0), PPM);
        assert_eq!(pow_half_ppm(4 * PPM, 1), 2 * PPM);
        assert_eq!(pow_half_ppm(4 * PPM, 2), 4 * PPM);
        assert_eq!(pow_half_ppm(4 * PPM, 3), 8 * PPM);
        assert_eq!(pow_half_ppm(4 * PPM, 4), 16 * PPM);
        // Non-square ratios stay within integer-rounding slack.
        let half = pow_half_ppm(2 * PPM, 1); // sqrt(2) = 1.414213...
        assert!(half.abs_diff(1_414_213) <= 1, "{half}");
        assert_eq!(pow_half_ppm(PPM, 7), PPM);
        assert_eq!(pow_half_ppm(0, 2), 0);
    }

    #[test]
    fn rel_err_ppm_is_symmetric_in_magnitude() {
        assert_eq!(rel_err_ppm(110, 100), 100_000); // +10%
        assert_eq!(rel_err_ppm(90, 100), 100_000); // -10%
        assert_eq!(rel_err_ppm(100, 100), 0);
        assert_eq!(rel_err_ppm(0, 0), 0);
        assert_eq!(rel_err_ppm(1, 0), u64::MAX);
    }
}
