//! Machine-side model inputs: per-component service rates derived
//! from the machine shape.
//!
//! This crate sits *below* `mosaic-sim`, so it cannot read a
//! `MachineConfig` directly; `mosaic_sim::backend` converts one into
//! this flat parameter block (and that conversion is the single place
//! the two descriptions are kept in sync).

/// Service-rate description of one machine shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineParams {
    /// Mesh columns (cores per row).
    pub cols: u64,
    /// Mesh core rows.
    pub rows: u64,
    /// Cycles per mesh hop.
    pub hop_latency: u64,
    /// LLC banks (independent servers for bank contention).
    pub llc_banks: u64,
    /// LLC bank occupancy per access, cycles.
    pub llc_hit_latency: u64,
    /// Independent DRAM channels.
    pub dram_channels: u64,
    /// Uncontended DRAM access latency (activate + CAS class), cycles.
    pub dram_latency: u64,
    /// DRAM data-bus occupancy per access (burst length), cycles.
    pub dram_bus: u64,
}

impl MachineParams {
    /// Core count.
    pub fn cores(&self) -> u64 {
        self.cols * self.rows
    }

    /// Mesh links modeled as independent contention servers. The mesh
    /// has ~4 links per node (N/S/E/W, plus ruche expresses and the
    /// LLC rows); the constant is an approximation the calibration
    /// correction absorbs.
    pub fn links(&self) -> u64 {
        (4 * self.cols * self.rows).max(1)
    }

    /// Mean Manhattan distance between uniform random mesh endpoints,
    /// in milli-hops: `E|dx| + E|dy| ≈ (cols + rows) / 3`.
    pub fn mean_hops_x1000(&self) -> u64 {
        ((self.cols + self.rows) * 1000) / 3
    }

    /// The same component timings on a different mesh shape — used to
    /// reconstruct the shape a demand was measured on. The LLC bank
    /// count scales with `cols` (the machine ties banks to the two LLC
    /// mesh rows, `banks = 2 * cols`).
    pub fn with_shape(&self, cols: u64, rows: u64) -> MachineParams {
        let cols = cols.max(1);
        MachineParams {
            cols,
            rows: rows.max(1),
            llc_banks: ((self.llc_banks * cols) / self.cols.max(1)).max(1),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(cols: u64, rows: u64) -> MachineParams {
        MachineParams {
            cols,
            rows,
            hop_latency: 1,
            llc_banks: 2 * cols,
            llc_hit_latency: 6,
            dram_channels: 1,
            dram_latency: 30,
            dram_bus: 6,
        }
    }

    #[test]
    fn derived_quantities_scale_with_the_mesh() {
        let small = p(4, 2);
        let big = p(8, 4);
        assert_eq!(small.cores(), 8);
        assert_eq!(big.cores(), 32);
        assert!(big.links() > small.links());
        assert!(big.mean_hops_x1000() > small.mean_hops_x1000());
    }

    #[test]
    fn with_shape_keeps_component_timings() {
        let base = p(8, 4).with_shape(4, 2);
        assert_eq!(base.cols, 4);
        assert_eq!(base.rows, 2);
        assert_eq!(base.llc_hit_latency, 6);
        assert_eq!(base.llc_banks, 8, "banks follow the 2*cols rule");
        assert_eq!(base.dram_latency, 30);
    }
}
