//! Live service metrics: lifecycle counters plus a wall-clock latency
//! record, snapshotted on demand as one JSON object.

use jsonlite::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::sync::lock;

/// Counter set shared by the scheduler and the metrics endpoint.
#[derive(Default)]
pub struct Metrics {
    /// Jobs admitted into the queue (cache hits not included).
    pub accepted: AtomicU64,
    /// Submissions rejected by admission control (`overloaded`).
    pub rejected: AtomicU64,
    /// Jobs that completed successfully.
    pub completed: AtomicU64,
    /// Jobs that failed (executor error or panic).
    pub failed: AtomicU64,
    /// Jobs killed by the per-job wall-clock timeout.
    pub timed_out: AtomicU64,
    /// Jobs cancelled before completion.
    pub cancelled: AtomicU64,
    /// Failed attempts that were retried under the retry policy.
    pub retries: AtomicU64,
    /// Job threads that died without delivering a result (distinct
    /// from timeouts and executor errors). Also counts jobs a journal
    /// replay found mid-run at a crash: the whole process was their
    /// worker, and it died under them.
    pub worker_deaths: AtomicU64,
    /// Jobs re-admitted from the crash journal at startup.
    pub replayed_jobs: AtomicU64,
    /// `auto` submissions the calibration table let the analytic
    /// backend answer (fast mode).
    pub fast_jobs: AtomicU64,
    /// `auto` submissions escalated to the cycle-accurate backend
    /// because the experiment was uncalibrated or its confidence band
    /// was wider than the threshold.
    pub escalations: AtomicU64,
    /// Fleet: jobs this daemon stole from a loaded peer and ran
    /// locally.
    pub steals: AtomicU64,
    /// Fleet: queued jobs this daemon donated to an idle thief.
    pub donated: AtomicU64,
    /// Fleet: jobs answered by a peer's result cache (cache-only
    /// `fetch`) instead of a local execution. The gateway counts its
    /// own flavor too: forwarded submissions a worker answered
    /// `cached`.
    pub remote_cache_hits: AtomicU64,
    /// Wall-clock latency of each terminal job, in milliseconds,
    /// keyed by the job's (resolved) fidelity label.
    latencies_ms: Mutex<BTreeMap<&'static str, Vec<u64>>>,
    /// Completed jobs whose payload carried profiler counters.
    pub profiled_jobs: AtomicU64,
    /// Running totals of profiler counters across completed jobs,
    /// keyed by the counter's bucket suffix (`steal_search`,
    /// `total_link_flits`, ...). Simulated cycles/flits, not host
    /// time.
    profile_totals: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    /// A zeroed metric set.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one terminal job's queue-to-terminal wall-clock time
    /// under its fidelity (`""` is the cycle-accurate default; any
    /// unrecognized label lands in the `cycle` bucket too, since that
    /// is the backend an executor would have fallen back to).
    pub fn observe_latency(&self, fidelity: &str, d: Duration) {
        let bucket = if fidelity == "analytic" {
            "analytic"
        } else {
            "cycle"
        };
        lock(&self.latencies_ms)
            .entry(bucket)
            .or_default()
            .push(d.as_millis() as u64);
    }

    /// Fold a completed job's profiler counters into the running
    /// totals surfaced by the `metrics` verb, if its result payload
    /// carries the golden `"profile"` attachment (the `profile`
    /// experiment does; see `mosaic_bench::golden`). Counters are
    /// summed by their bucket suffix, so `dup-off/steal_search` and
    /// `dup-on/steal_search` both land in `steal_search`. Payloads
    /// without profiler counters are a no-op.
    pub fn absorb_profile(&self, payload: &str) {
        let Ok(json) = Json::parse(payload) else {
            return;
        };
        let Ok(obj) = json.as_object("payload") else {
            return;
        };
        let Some(profile) = obj.opt("profile") else {
            return;
        };
        let Ok(entries) = profile.as_array("profile") else {
            return;
        };
        let mut any = false;
        let mut totals = lock(&self.profile_totals);
        for e in entries {
            let Ok(o) = e.as_object("profile entry") else {
                continue;
            };
            let (Some(name), Some(value)) = (o.opt("counter"), o.opt("value")) else {
                continue;
            };
            let (Ok(name), Ok(value)) = (name.as_string(), value.as_u64()) else {
                continue;
            };
            let key = name.rsplit('/').next().unwrap_or(&name).to_string();
            *totals.entry(key).or_insert(0) += value;
            any = true;
        }
        if any {
            self.profiled_jobs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Render the snapshot. Queue depth, busy workers, and cache
    /// counters live elsewhere (scheduler / cache) and are passed in.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        busy_workers: usize,
        cache_hits: u64,
        cache_misses: u64,
    ) -> Json {
        let by_fidelity = lock(&self.latencies_ms).clone();
        let all: Vec<u64> = by_fidelity.values().flatten().copied().collect();
        let mut fidelity_obj = Json::obj();
        for (label, lat) in &by_fidelity {
            fidelity_obj = fidelity_obj.field(label, latency_histogram(lat.clone()));
        }
        let profile = lock(&self.profile_totals).clone();
        let mut profile_obj = Json::obj();
        for (name, total) in &profile {
            profile_obj = profile_obj.field(name, *total);
        }
        Json::obj()
            .field("type", "metrics")
            .field("accepted", self.accepted.load(Ordering::Relaxed))
            .field("rejected", self.rejected.load(Ordering::Relaxed))
            .field("completed", self.completed.load(Ordering::Relaxed))
            .field("failed", self.failed.load(Ordering::Relaxed))
            .field("timed_out", self.timed_out.load(Ordering::Relaxed))
            .field("cancelled", self.cancelled.load(Ordering::Relaxed))
            .field("retries", self.retries.load(Ordering::Relaxed))
            .field("worker_deaths", self.worker_deaths.load(Ordering::Relaxed))
            .field("replayed_jobs", self.replayed_jobs.load(Ordering::Relaxed))
            .field("fast_jobs", self.fast_jobs.load(Ordering::Relaxed))
            .field("escalations", self.escalations.load(Ordering::Relaxed))
            .field("steals", self.steals.load(Ordering::Relaxed))
            .field("donated", self.donated.load(Ordering::Relaxed))
            .field(
                "remote_cache_hits",
                self.remote_cache_hits.load(Ordering::Relaxed),
            )
            .field("cache_hits", cache_hits)
            .field("cache_misses", cache_misses)
            .field("queue_depth", queue_depth as u64)
            .field("busy_workers", busy_workers as u64)
            .field("latency_ms", latency_histogram(all))
            .field("latency_by_fidelity", fidelity_obj.build())
            .field("profiled_jobs", self.profiled_jobs.load(Ordering::Relaxed))
            .field("profile", profile_obj.build())
            .build()
    }
}

/// Percentile summary of the recorded latencies (integer milliseconds;
/// nearest-rank on the sorted sample).
fn latency_histogram(mut lat: Vec<u64>) -> Json {
    lat.sort_unstable();
    let pct = |q: u64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        // Nearest-rank: the smallest sample ≥ q percent of the set.
        let rank = (lat.len() as u64 * q).div_ceil(100).max(1);
        lat[(rank - 1) as usize]
    };
    Json::obj()
        .field("count", lat.len() as u64)
        .field("p50", pct(50))
        .field("p90", pct(90))
        .field("p99", pct(99))
        .field("max", lat.last().copied().unwrap_or(0))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_counters_and_percentiles() {
        let m = Metrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.completed.fetch_add(2, Ordering::Relaxed);
        for ms in [10u64, 20, 100] {
            m.observe_latency("cycle", Duration::from_millis(ms));
        }
        m.retries.fetch_add(4, Ordering::Relaxed);
        m.worker_deaths.fetch_add(1, Ordering::Relaxed);
        let snap = m.snapshot(1, 2, 5, 7);
        let obj = snap.as_object("snap").unwrap();
        assert_eq!(obj.get("accepted", "snap").unwrap().as_u64(), Ok(3));
        assert_eq!(obj.get("retries", "snap").unwrap().as_u64(), Ok(4));
        assert_eq!(obj.get("worker_deaths", "snap").unwrap().as_u64(), Ok(1));
        assert_eq!(obj.get("cache_hits", "snap").unwrap().as_u64(), Ok(5));
        assert_eq!(obj.get("queue_depth", "snap").unwrap().as_u64(), Ok(1));
        let lat = obj
            .get("latency_ms", "snap")
            .unwrap()
            .as_object("lat")
            .unwrap();
        assert_eq!(lat.get("count", "lat").unwrap().as_u64(), Ok(3));
        assert_eq!(lat.get("p50", "lat").unwrap().as_u64(), Ok(20));
        assert_eq!(lat.get("p99", "lat").unwrap().as_u64(), Ok(100));
        assert_eq!(lat.get("max", "lat").unwrap().as_u64(), Ok(100));
    }

    #[test]
    fn latencies_split_by_fidelity() {
        let m = Metrics::new();
        m.fast_jobs.fetch_add(2, Ordering::Relaxed);
        m.escalations.fetch_add(1, Ordering::Relaxed);
        m.observe_latency("analytic", Duration::from_millis(2));
        m.observe_latency("analytic", Duration::from_millis(4));
        // The empty label is the cycle-accurate default.
        m.observe_latency("", Duration::from_millis(900));
        let snap = m.snapshot(0, 0, 0, 0);
        let obj = snap.as_object("snap").unwrap();
        assert_eq!(obj.get("fast_jobs", "snap").unwrap().as_u64(), Ok(2));
        assert_eq!(obj.get("escalations", "snap").unwrap().as_u64(), Ok(1));
        let by = obj
            .get("latency_by_fidelity", "snap")
            .unwrap()
            .as_object("by")
            .unwrap();
        let fast = by.get("analytic", "by").unwrap().as_object("fast").unwrap();
        assert_eq!(fast.get("count", "fast").unwrap().as_u64(), Ok(2));
        assert_eq!(fast.get("max", "fast").unwrap().as_u64(), Ok(4));
        let slow = by.get("cycle", "by").unwrap().as_object("slow").unwrap();
        assert_eq!(slow.get("count", "slow").unwrap().as_u64(), Ok(1));
        assert_eq!(slow.get("p50", "slow").unwrap().as_u64(), Ok(900));
        // The flat histogram still covers every job.
        let lat = obj
            .get("latency_ms", "snap")
            .unwrap()
            .as_object("lat")
            .unwrap();
        assert_eq!(lat.get("count", "lat").unwrap().as_u64(), Ok(3));
    }

    #[test]
    fn absorb_profile_sums_by_bucket_suffix() {
        let m = Metrics::new();
        m.absorb_profile(
            "{\"experiment\": \"profile\", \"cells\": [], \"profile\": [\
             {\"counter\": \"dup-off/steal_search\", \"value\": 100},\
             {\"counter\": \"dup-on/steal_search\", \"value\": 40},\
             {\"counter\": \"dup-off/compute\", \"value\": 7}]}",
        );
        m.absorb_profile("{\"experiment\": \"table1\", \"cells\": []}"); // no-op
        m.absorb_profile("not json at all"); // no-op
        let snap = m.snapshot(0, 0, 0, 0);
        let obj = snap.as_object("snap").unwrap();
        assert_eq!(obj.get("profiled_jobs", "snap").unwrap().as_u64(), Ok(1));
        let prof = obj
            .get("profile", "snap")
            .unwrap()
            .as_object("profile")
            .unwrap();
        assert_eq!(
            prof.get("steal_search", "profile").unwrap().as_u64(),
            Ok(140)
        );
        assert_eq!(prof.get("compute", "profile").unwrap().as_u64(), Ok(7));
    }

    #[test]
    fn empty_latency_histogram_is_zeroed() {
        let m = Metrics::new();
        let snap = m.snapshot(0, 0, 0, 0);
        let obj = snap.as_object("snap").unwrap();
        let lat = obj
            .get("latency_ms", "snap")
            .unwrap()
            .as_object("lat")
            .unwrap();
        assert_eq!(lat.get("count", "lat").unwrap().as_u64(), Ok(0));
        assert_eq!(lat.get("p50", "lat").unwrap().as_u64(), Ok(0));
    }
}
