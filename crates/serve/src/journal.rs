//! Crash-safe job journal: an append-only record log that lets a
//! killed daemon re-admit the work it lost.
//!
//! ## Format
//!
//! One file, `<dir>/journal.mlog`, holding a sequence of
//! length-prefixed, CRC-guarded frames ([`jsonlite::frame`]); each
//! frame's payload is one single-line JSON record:
//!
//! ```text
//! {"record":"admitted","id":"<digest>","spec":{...}}
//! {"record":"started","id":"<digest>"}
//! {"record":"progress","id":"<digest>","done":3,"total":8}
//! {"record":"completed","id":"<digest>","ok":true}
//! {"record":"cancelled","id":"<digest>"}
//! {"record":"drained-clean"}
//! ```
//!
//! Lifecycle records (`admitted`, `started`, `completed`, `cancelled`,
//! `drained-clean`) are fsync'd as they are appended — they change
//! what a restart must do. `progress` records are appended without
//! fsync: they only refine the restart summary, and losing the tail of
//! them costs nothing (the job re-runs from scratch anyway).
//!
//! ## Replay
//!
//! [`Journal::open`] scans the existing log, tolerating a torn final
//! frame (the crash may have landed mid-append), and folds the records
//! into the set of jobs that were admitted but never reached a
//! terminal state. The server re-submits those through the normal
//! admission path, where the content-addressed cache already absorbs
//! any job whose result survived — so `kill -9` mid-sweep followed by
//! a restart converges to the same byte-identical results as an
//! uninterrupted run, recomputing only what was genuinely lost.
//!
//! A final `drained-clean` record marks a graceful drain: on the next
//! start there is provably nothing to replay and the scan is skipped
//! in spirit (the log is compacted away without a summary).
//!
//! ## Compaction
//!
//! On open, after replay, the log is rewritten to contain only the
//! still-pending `admitted` records (tmp + fsync + rename + directory
//! fsync) — so the log stays bounded by the live job set, and a crash
//! at any point during compaction leaves either the old complete log
//! or the new one. Re-admission then appends duplicate `admitted`
//! records through the normal path; replay is idempotent per job id,
//! so duplicates are harmless and disappear at the next compaction.

use crate::job::JobSpec;
use crate::sync::lock;
use jsonlite::{frame, Json};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the journal inside its directory.
const JOURNAL_FILE: &str = "journal.mlog";

/// The append side of the journal, shared by the scheduler's workers.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Journal({})", self.path.display())
    }
}

/// One job the crash left un-finished, as reconstructed by replay.
#[derive(Debug, Clone)]
pub struct ReplayJob {
    /// The job's content digest (its id).
    pub id: String,
    /// The spec to re-admit.
    pub spec: JobSpec,
    /// Whether the crash caught the job mid-run (a `started` record
    /// with no terminal record after it) — the daemon died with a
    /// worker on it.
    pub started: bool,
}

/// What [`Journal::open`] reconstructed from the previous process's
/// log.
#[derive(Debug, Default)]
pub struct Replay {
    /// Jobs admitted but not terminal at the crash, in admission
    /// order.
    pub pending: Vec<ReplayJob>,
    /// The previous shutdown ended with `drained-clean`: nothing was
    /// lost and no replay summary is worth printing.
    pub clean: bool,
    /// Decodable records scanned.
    pub records: usize,
    /// Bytes of torn/corrupt tail discarded (crash mid-append).
    pub torn_bytes: usize,
}

impl Journal {
    /// Open (creating if needed) the journal under `dir`, replay the
    /// previous process's records, and compact the log down to the
    /// still-pending jobs.
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Replay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let replay = match std::fs::read(&path) {
            Ok(bytes) => replay_records(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Replay::default(),
            Err(e) => return Err(e),
        };
        // Compact: rewrite the log as just the pending admissions, so
        // a crash during or right after compaction still recovers
        // exactly these jobs.
        let mut compacted = Vec::new();
        for job in &replay.pending {
            compacted.extend_from_slice(&frame::encode_record(
                admitted_payload(&job.id, &job.spec).write().as_bytes(),
            ));
        }
        let tmp = dir.join(format!("{JOURNAL_FILE}.tmp-{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&compacted)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        File::open(dir).and_then(|d| d.sync_all())?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((
            Journal {
                file: Mutex::new(file),
                path,
            },
            replay,
        ))
    }

    /// Append one record; `sync` forces it to disk before returning.
    /// Best-effort: the journal is a recovery aid, and a full disk
    /// must degrade durability, not crash the daemon mid-job.
    fn append(&self, payload: &Json, sync: bool) {
        let bytes = frame::encode_record(payload.write().as_bytes());
        let mut f = lock(&self.file);
        let result = f
            .write_all(&bytes)
            .and_then(|()| if sync { f.sync_all() } else { Ok(()) });
        if let Err(e) = result {
            eprintln!("serve: journal append {} failed: {e}", self.path.display());
        }
    }

    /// A job passed admission control and entered the queue.
    pub fn record_admitted(&self, id: &str, spec: &JobSpec) {
        self.append(&admitted_payload(id, spec), true);
    }

    /// A worker began executing the job.
    pub fn record_started(&self, id: &str) {
        self.append(
            &Json::obj()
                .field("record", "started")
                .field("id", id)
                .build(),
            true,
        );
    }

    /// Progress ticked (not fsync'd; purely informational).
    pub fn record_progress(&self, id: &str, done: u64, total: u64) {
        self.append(
            &Json::obj()
                .field("record", "progress")
                .field("id", id)
                .field("done", done)
                .field("total", total)
                .build(),
            false,
        );
    }

    /// The job reached a terminal success/failure state (`ok: false`
    /// covers executor errors, panics, and timeouts — all terminal,
    /// none re-admitted on restart).
    pub fn record_completed(&self, id: &str, ok: bool) {
        self.append(
            &Json::obj()
                .field("record", "completed")
                .field("id", id)
                .field("ok", ok)
                .build(),
            true,
        );
    }

    /// The job was cancelled (terminal; not re-admitted on restart).
    pub fn record_cancelled(&self, id: &str) {
        self.append(
            &Json::obj()
                .field("record", "cancelled")
                .field("id", id)
                .build(),
            true,
        );
    }

    /// The server drained gracefully: every admitted job is terminal,
    /// and the next start has nothing to replay.
    pub fn record_drained_clean(&self) {
        self.append(&Json::obj().field("record", "drained-clean").build(), true);
    }
}

fn admitted_payload(id: &str, spec: &JobSpec) -> Json {
    Json::obj()
        .field("record", "admitted")
        .field("id", id)
        .field("spec", spec.to_json())
        .build()
}

/// Fold a journal byte stream into the pending-job set. Undecodable
/// frames end the scan (torn tail); undecodable *payloads* inside
/// valid frames are skipped defensively (forward compatibility with
/// record types this build does not know).
fn replay_records(bytes: &[u8]) -> Replay {
    let (frames, torn_bytes) = frame::decode_records(bytes);
    let mut replay = Replay {
        torn_bytes,
        records: frames.len(),
        ..Replay::default()
    };
    // Admission order, keyed by id; a terminal record removes the job.
    let mut order: Vec<String> = Vec::new();
    let mut live: std::collections::HashMap<String, ReplayJob> = std::collections::HashMap::new();
    for (i, payload) in frames.iter().enumerate() {
        let Ok(text) = std::str::from_utf8(payload) else {
            continue;
        };
        let Ok(json) = Json::parse(text) else {
            continue;
        };
        let Ok(obj) = json.as_object("journal record") else {
            continue;
        };
        let Some(kind) = obj.opt("record").and_then(|r| r.as_string().ok()) else {
            continue;
        };
        if kind == "drained-clean" {
            // Clean only as the final record: anything after it means
            // the daemon kept working past the drain marker.
            replay.clean = i == frames.len() - 1 && live.is_empty();
            continue;
        }
        let Some(id) = obj.opt("id").and_then(|r| r.as_string().ok()) else {
            continue;
        };
        match kind.as_str() {
            "admitted" => {
                let Some(spec) = obj.opt("spec").and_then(|s| JobSpec::from_json(s).ok()) else {
                    continue;
                };
                if !live.contains_key(&id) {
                    order.push(id.clone());
                    live.insert(
                        id.clone(),
                        ReplayJob {
                            id,
                            spec,
                            started: false,
                        },
                    );
                }
            }
            "started" => {
                if let Some(job) = live.get_mut(&id) {
                    job.started = true;
                }
            }
            "completed" | "cancelled" => {
                live.remove(&id);
            }
            // `progress` and unknown future kinds: no lifecycle effect.
            _ => {}
        }
    }
    replay.pending = order
        .into_iter()
        .filter_map(|id| live.remove(&id))
        .collect();
    replay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mosaic-serve-journal-{tag}-{}", std::process::id()))
    }

    fn spec(seed: u64) -> JobSpec {
        let mut s = JobSpec::new("table1", "tiny");
        s.seed = seed;
        s
    }

    #[test]
    fn fresh_journal_replays_nothing() {
        let dir = tmp_dir("fresh");
        let _ = std::fs::remove_dir_all(&dir);
        let (_j, replay) = Journal::open(&dir).unwrap();
        assert!(replay.pending.is_empty());
        assert_eq!(replay.records, 0);
        assert!(!replay.clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfinished_jobs_come_back_finished_ones_do_not() {
        let dir = tmp_dir("replay");
        let _ = std::fs::remove_dir_all(&dir);
        let (queued, running, done, gone) = (spec(1), spec(2), spec(3), spec(4));
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.record_admitted(&done.digest(), &done);
            j.record_started(&done.digest());
            j.record_completed(&done.digest(), true);
            j.record_admitted(&running.digest(), &running);
            j.record_started(&running.digest());
            j.record_progress(&running.digest(), 2, 8);
            j.record_admitted(&queued.digest(), &queued);
            j.record_admitted(&gone.digest(), &gone);
            j.record_cancelled(&gone.digest());
            // No drained-clean: simulate a hard kill.
        }
        let (_j, replay) = Journal::open(&dir).unwrap();
        assert!(!replay.clean);
        let ids: Vec<String> = replay.pending.iter().map(|p| p.id.clone()).collect();
        assert_eq!(ids, vec![running.digest(), queued.digest()]);
        assert!(replay.pending[0].started, "running job was mid-run");
        assert!(!replay.pending[1].started, "queued job never started");
        assert_eq!(replay.pending[0].spec, running);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drained_clean_means_nothing_to_replay() {
        let dir = tmp_dir("clean");
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec(7);
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.record_admitted(&s.digest(), &s);
            j.record_started(&s.digest());
            j.record_completed(&s.digest(), true);
            j.record_drained_clean();
        }
        let (_j, replay) = Journal::open(&dir).unwrap();
        assert!(replay.clean);
        assert!(replay.pending.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmp_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec(9);
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.record_admitted(&s.digest(), &s);
        }
        // Simulate a crash mid-append: half a frame of garbage.
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &bytes).unwrap();
        let (_j, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].id, s.digest());
        assert!(replay.torn_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_bounds_the_log_and_preserves_pending() {
        let dir = tmp_dir("compact");
        let _ = std::fs::remove_dir_all(&dir);
        let live = spec(1);
        {
            let (j, _) = Journal::open(&dir).unwrap();
            for seed in 10..30 {
                let s = spec(seed);
                j.record_admitted(&s.digest(), &s);
                j.record_completed(&s.digest(), seed % 2 == 0);
            }
            j.record_admitted(&live.digest(), &live);
        }
        let before = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        let (_j, replay) = Journal::open(&dir).unwrap();
        let after = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        assert_eq!(replay.pending.len(), 1);
        assert!(
            after < before / 4,
            "compaction must shed terminal records ({after} vs {before})"
        );
        // The compacted log alone still recovers the pending job.
        let (_j2, replay2) = Journal::open(&dir).unwrap();
        assert_eq!(replay2.pending.len(), 1);
        assert_eq!(replay2.pending[0].spec, live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_admissions_are_idempotent() {
        let dir = tmp_dir("dup");
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec(5);
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.record_admitted(&s.digest(), &s);
            j.record_admitted(&s.digest(), &s); // restart re-admission
            j.record_started(&s.digest());
        }
        let (_j, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.pending.len(), 1);
        assert!(replay.pending[0].started);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
