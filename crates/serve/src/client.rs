//! Blocking client for the serve protocol (used by `mosaic-client`,
//! `reproduce_all --via-server`, and the integration tests).

use crate::job::{JobSpec, JobState};
use crate::protocol::Request;
use crate::scheduler::RetryPolicy;
use jsonlite::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Outcome of a submission, decoded from the `accepted`/`overloaded`/
/// `draining` response family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitReply {
    /// Admitted (or coalesced/served from cache).
    Accepted {
        /// Job id (spec digest).
        id: String,
        /// Job state at admission (`done` when served from cache).
        state: JobState,
        /// Whether the result came straight from the cache.
        cached: bool,
    },
    /// Rejected by admission control.
    Overloaded {
        /// Jobs currently queued.
        depth: u64,
        /// The configured cap.
        cap: u64,
    },
    /// Rejected because the server is draining.
    Draining,
}

/// A job's terminal outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultReply {
    /// Terminal state.
    pub state: JobState,
    /// Payload when `Done`.
    pub payload: Option<String>,
    /// Error message when `Failed`.
    pub error: Option<String>,
}

/// One connection to a serve daemon.
pub struct Client {
    out: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:9118`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let out = TcpStream::connect(addr)?;
        let reader = BufReader::new(out.try_clone()?);
        Ok(Client { out, reader })
    }

    /// Connect with bounded retries under `policy` (exponential
    /// backoff, deterministic jitter keyed on the address). Covers the
    /// window where a daemon is still binding its listener — or was
    /// just restarted by a supervisor — without hammering it.
    pub fn connect_with_retry(addr: &str, policy: &RetryPolicy) -> std::io::Result<Client> {
        Client::connect_with_deadline(addr, policy, std::time::Duration::MAX)
    }

    /// Like [`Client::connect_with_retry`], but additionally bounded
    /// by an `overall` wall-clock budget: once a backoff sleep would
    /// cross the deadline the attempt loop gives up immediately with
    /// the last error, so a supervisor restarting a crashed daemon can
    /// cap how long clients hang on it (`--connect-timeout-ms`). The
    /// first attempt is always made, even with a zero budget.
    pub fn connect_with_deadline(
        addr: &str,
        policy: &RetryPolicy,
        overall: std::time::Duration,
    ) -> std::io::Result<Client> {
        let start = std::time::Instant::now();
        let max_attempts = policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=max_attempts {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last_err = Some(e);
                    if attempt < max_attempts {
                        let backoff = policy.backoff(addr, attempt);
                        // `checked_add` so `Duration::MAX` means "no
                        // deadline" instead of an overflow panic.
                        let would_elapse = start
                            .elapsed()
                            .checked_add(backoff)
                            .unwrap_or(std::time::Duration::MAX);
                        if would_elapse >= overall {
                            break;
                        }
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        // max_attempts >= 1, so at least one attempt stored an error.
        Err(last_err.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
    }

    /// Send one request line.
    pub fn send(&mut self, req: &Request) -> Result<(), String> {
        let mut line = req.to_json().write();
        line.push('\n');
        self.out
            .write_all(line.as_bytes())
            .map_err(|e| format!("send failed: {e}"))
    }

    /// Read one response line as JSON.
    pub fn recv(&mut self) -> Result<Json, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Json::parse(line.trim_end())
    }

    /// Send a request and read its single response line. An `error`
    /// response becomes `Err`.
    pub fn request(&mut self, req: &Request) -> Result<Json, String> {
        self.send(req)?;
        let v = self.recv()?;
        let obj = v.as_object("response")?;
        if obj.get("type", "response")?.as_string()? == "error" {
            return Err(obj.get("message", "error")?.as_string()?);
        }
        Ok(v)
    }

    /// Submit a spec (anonymous tenant).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitReply, String> {
        self.submit_as(spec, "")
    }

    /// Submit a spec under a tenant label. Only the gateway's
    /// token-bucket admission reads the label; workers ignore it, and
    /// an empty label is omitted from the wire form entirely.
    pub fn submit_as(&mut self, spec: &JobSpec, tenant: &str) -> Result<SubmitReply, String> {
        let v = self.request(&Request::Submit {
            spec: spec.clone(),
            tenant: tenant.to_string(),
        })?;
        let obj = v.as_object("submit response")?;
        Ok(
            match obj.get("type", "submit response")?.as_string()?.as_str() {
                "accepted" => SubmitReply::Accepted {
                    id: obj.get("id", "accepted")?.as_string()?,
                    state: JobState::parse(&obj.get("state", "accepted")?.as_string()?)?,
                    cached: obj.get("cached", "accepted")?.as_bool()?,
                },
                "overloaded" => SubmitReply::Overloaded {
                    depth: obj.get("queue_depth", "overloaded")?.as_u64()?,
                    cap: obj.get("queue_cap", "overloaded")?.as_u64()?,
                },
                "draining" => SubmitReply::Draining,
                other => return Err(format!("unexpected submit response {other:?}")),
            },
        )
    }

    /// Block until `id` is terminal and return its outcome.
    pub fn wait_result(&mut self, id: &str) -> Result<ResultReply, String> {
        let v = self.request(&Request::Result {
            id: id.to_string(),
            wait: true,
        })?;
        let obj = v.as_object("result response")?;
        Ok(ResultReply {
            state: JobState::parse(&obj.get("state", "result")?.as_string()?)?,
            payload: match obj.opt("payload") {
                Some(p) => Some(p.as_string()?),
                None => None,
            },
            error: match obj.opt("error") {
                Some(e) => Some(e.as_string()?),
                None => None,
            },
        })
    }

    /// Query a job's (state, done, total).
    pub fn status(&mut self, id: &str) -> Result<(JobState, u64, u64), String> {
        let v = self.request(&Request::Status { id: id.to_string() })?;
        let obj = v.as_object("status response")?;
        Ok((
            JobState::parse(&obj.get("state", "status")?.as_string()?)?,
            obj.get("done", "status")?.as_u64()?,
            obj.get("total", "status")?.as_u64()?,
        ))
    }

    /// Cancel a job; returns its state after the request.
    pub fn cancel(&mut self, id: &str) -> Result<JobState, String> {
        let v = self.request(&Request::Cancel { id: id.to_string() })?;
        let obj = v.as_object("cancel response")?;
        JobState::parse(&obj.get("state", "cancel")?.as_string()?)
    }

    /// Stream `watch` progress lines into `on_event(done, total,
    /// message)` until the job is terminal; returns the final state.
    pub fn watch(
        &mut self,
        id: &str,
        mut on_event: impl FnMut(u64, u64, &str),
    ) -> Result<JobState, String> {
        self.send(&Request::Watch { id: id.to_string() })?;
        loop {
            let v = self.recv()?;
            let obj = v.as_object("watch line")?;
            match obj.get("type", "watch line")?.as_string()?.as_str() {
                "progress" => on_event(
                    obj.get("done", "progress")?.as_u64()?,
                    obj.get("total", "progress")?.as_u64()?,
                    &obj.get("message", "progress")?.as_string()?,
                ),
                "status" => {
                    return JobState::parse(&obj.get("state", "status")?.as_string()?);
                }
                "error" => return Err(obj.get("message", "error")?.as_string()?),
                other => return Err(format!("unexpected watch line {other:?}")),
            }
        }
    }

    /// Cache-only lookup: the payload for `id` if the daemon's result
    /// cache holds it, without executing anything. Fleet peers use
    /// this to resolve cross-node cache hits.
    pub fn fetch(&mut self, id: &str) -> Result<Option<String>, String> {
        let v = self.request(&Request::Fetch { id: id.to_string() })?;
        let obj = v.as_object("fetch response")?;
        if obj.get("hit", "cache")?.as_bool()? {
            Ok(Some(obj.get("payload", "cache")?.as_string()?))
        } else {
            Ok(None)
        }
    }

    /// Fetch the metrics snapshot.
    pub fn metrics(&mut self) -> Result<Json, String> {
        self.request(&Request::Metrics)
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
