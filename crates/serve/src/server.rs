//! The TCP front end: accept loop, per-connection dispatch, graceful
//! drain.
//!
//! Pure `std`: a nonblocking `TcpListener` polled on a short interval
//! (the environment is offline, so there is no async runtime to lean
//! on), one OS thread per connection. A `shutdown` request flips the
//! scheduler into draining mode; the accept loop exits once every
//! queued and running job has finished, and `Server::join` returns.

use crate::protocol::{self, Request};
use crate::scheduler::{Executor, JobRecord, SchedConfig, Scheduler, Submit};
use crate::sync::lock;
use jsonlite::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:9118` (port 0 = ephemeral).
    pub addr: String,
    /// Scheduler knobs (queue cap, workers, timeout).
    pub sched: SchedConfig,
    /// On-disk result cache directory (`None` = memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Crash-safety journal directory (`None` = no journal; a kill
    /// loses queued/running jobs). On start the journal is replayed
    /// and unfinished jobs are re-admitted before the listener binds,
    /// so clients never observe the half-recovered state.
    pub journal_dir: Option<PathBuf>,
    /// Fleet peer addresses (the *other* workers). Non-empty turns on
    /// the fleet worker role: a stealer thread pulls queued jobs from
    /// loaded peers when this daemon is idle, and every job consults
    /// the peers' caches (cache-only `fetch`) before executing.
    pub peers: Vec<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:9118".to_string(),
            sched: SchedConfig::default(),
            cache_dir: Some(PathBuf::from("results/cache")),
            journal_dir: Some(PathBuf::from("results/journal")),
            peers: Vec::new(),
        }
    }
}

/// A running server: scheduler plus accept thread (plus, in a fleet,
/// the stealer thread).
pub struct Server {
    sched: Arc<Scheduler>,
    journal: Option<Arc<crate::journal::Journal>>,
    local_addr: SocketAddr,
    accept: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
    stealer: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind, start the worker pool, and begin accepting connections.
    ///
    /// With a `journal_dir`, the previous process's journal is
    /// replayed first: jobs it admitted but never finished are
    /// re-submitted through the normal admission path (where the
    /// result cache absorbs anything whose payload survived), counted
    /// in `replayed_jobs`, and jobs the crash caught mid-run also
    /// count as `worker_deaths`. All of that happens before the
    /// listener binds.
    pub fn start(cfg: ServerConfig, executor: Arc<dyn Executor>) -> std::io::Result<Server> {
        let cache = crate::cache::ResultCache::new(cfg.cache_dir.clone())?;
        let mut sched_cfg = cfg.sched.clone();
        if !cfg.peers.is_empty() && sched_cfg.remote.is_none() {
            sched_cfg.remote = Some(Arc::new(crate::fleet::steal::PeerCache::new(
                cfg.peers.clone(),
            )));
        }
        let mut journal = None;
        let mut replay = None;
        if let Some(dir) = &cfg.journal_dir {
            let (j, r) = crate::journal::Journal::open(dir)?;
            let j = Arc::new(j);
            sched_cfg.journal = Some(Arc::clone(&j));
            journal = Some(j);
            replay = Some(r);
        }
        let sched = Scheduler::start(sched_cfg, cache, executor);
        if let Some(r) = replay {
            if !r.clean && (r.records > 0 || r.torn_bytes > 0) {
                eprintln!(
                    "serve: journal replay: {} records, {} unfinished jobs re-admitted, \
                     {} torn bytes discarded",
                    r.records,
                    r.pending.len(),
                    r.torn_bytes
                );
            }
            for job in r.pending {
                if job.started {
                    sched
                        .metrics
                        .worker_deaths
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                sched
                    .metrics
                    .replayed_jobs
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let _ = sched.submit(job.spec);
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let accept_sched = Arc::clone(&sched);
        let handle = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_sched))
            .expect("spawn accept thread");
        let stealer = if cfg.peers.is_empty() {
            None
        } else {
            Some(crate::fleet::steal::spawn_stealer(
                Arc::clone(&sched),
                cfg.peers.clone(),
            ))
        };
        Ok(Server {
            sched,
            journal,
            local_addr,
            accept: std::sync::Mutex::new(Some(handle)),
            stealer: std::sync::Mutex::new(stealer),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The scheduler (tests poke it directly).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Request a drain without a client connection (what a SIGTERM
    /// handler would call if the platform exposed one to pure std).
    pub fn request_shutdown(&self) {
        self.sched.begin_drain();
    }

    /// Block until a requested drain completes and the accept thread
    /// exits; joins the worker pool. A completed drain is marked
    /// `drained-clean` in the journal, so the next start knows there
    /// is nothing to replay.
    pub fn join(&self) {
        self.sched.wait_drained();
        if let Some(j) = &self.journal {
            j.record_drained_clean();
        }
        if let Some(h) = lock(&self.accept).take() {
            let _ = h.join();
        }
        if let Some(h) = lock(&self.stealer).take() {
            let _ = h.join();
        }
        self.sched.join_workers();
    }
}

fn accept_loop(listener: TcpListener, sched: Arc<Scheduler>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let sched = Arc::clone(&sched);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        if let Err(e) = handle_conn(stream, &sched) {
                            // Disconnects mid-request are routine.
                            let _ = e;
                        }
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if sched.quiesced() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn send(stream: &mut TcpStream, v: &Json) -> std::io::Result<()> {
    let mut line = v.write();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Serve one connection: requests in, response line(s) out, until EOF.
/// If the connection donated a job to a thief (`steal`) and closed
/// before the thief's `offer` came home, the job is requeued — the
/// connection's lifetime is the steal lease.
fn handle_conn(stream: TcpStream, sched: &Arc<Scheduler>) -> std::io::Result<()> {
    let mut pending_steal: Option<Arc<JobRecord>> = None;
    let result = conn_loop(stream, sched, &mut pending_steal);
    if let Some(job) = pending_steal {
        sched.requeue_stolen(&job);
    }
    result
}

fn conn_loop(
    stream: TcpStream,
    sched: &Arc<Scheduler>,
    pending_steal: &mut Option<Arc<JobRecord>>,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                send(&mut out, &protocol::resp_error(&e))?;
                continue;
            }
        };
        match req {
            // Workers ignore the tenant label: admission metering is
            // the gateway's job; by the time a submit reaches a worker
            // it has already been admitted.
            Request::Submit { spec, tenant: _ } => {
                let resp = match sched.submit(spec) {
                    Submit::Cached(job) => protocol::resp_accepted(&job.id, job.view().state, true),
                    Submit::Enqueued(job) | Submit::InFlight(job) => {
                        protocol::resp_accepted(&job.id, job.view().state, false)
                    }
                    Submit::Overloaded { depth, cap } => protocol::resp_overloaded(depth, cap),
                    Submit::Draining => protocol::resp_draining(),
                    Submit::Unsupported(reason) => protocol::resp_error(&reason),
                };
                send(&mut out, &resp)?;
            }
            Request::Status { id } => {
                let resp = match sched.job(&id) {
                    Some(job) => protocol::resp_status(&id, &job.view()),
                    None => protocol::resp_error(&format!("unknown job {id:?}")),
                };
                send(&mut out, &resp)?;
            }
            Request::Result { id, wait } => {
                let resp = match sched.job(&id) {
                    Some(job) => {
                        let view = if wait {
                            job.wait_terminal()
                        } else {
                            job.view()
                        };
                        if view.state.is_terminal() {
                            protocol::resp_result(&id, &view)
                        } else {
                            protocol::resp_pending(&id, &view)
                        }
                    }
                    None => protocol::resp_error(&format!("unknown job {id:?}")),
                };
                send(&mut out, &resp)?;
            }
            Request::Watch { id } => match sched.job(&id) {
                Some(job) => {
                    // Stream each progress event as its own line, then
                    // finish with the terminal status line.
                    let mut seen = 0usize;
                    loop {
                        let (events, view) = job.wait_events(seen);
                        for msg in &events {
                            send(
                                &mut out,
                                &protocol::resp_progress(&id, view.done, view.total, msg),
                            )?;
                        }
                        seen += events.len();
                        if view.state.is_terminal() {
                            send(&mut out, &protocol::resp_status(&id, &view))?;
                            break;
                        }
                    }
                }
                None => send(
                    &mut out,
                    &protocol::resp_error(&format!("unknown job {id:?}")),
                )?,
            },
            Request::Cancel { id } => {
                let resp = match sched.cancel(&id) {
                    Some(state) => protocol::resp_cancel(&id, state),
                    None => protocol::resp_error(&format!("unknown job {id:?}")),
                };
                send(&mut out, &resp)?;
            }
            Request::Metrics => {
                let (depth, busy) = sched.load();
                let snap =
                    sched
                        .metrics
                        .snapshot(depth, busy, sched.cache.hits(), sched.cache.misses());
                send(&mut out, &snap)?;
            }
            Request::Shutdown => {
                sched.begin_drain();
                send(&mut out, &protocol::resp_shutdown())?;
            }
            Request::Steal => {
                if pending_steal.is_some() {
                    send(
                        &mut out,
                        &protocol::resp_error(
                            "a stolen job is already pending on this connection; \
                             offer its outcome first",
                        ),
                    )?;
                } else {
                    match sched.steal_one() {
                        Some(job) => {
                            let resp = protocol::resp_stolen(&job.id, &job.spec);
                            *pending_steal = Some(job);
                            send(&mut out, &resp)?;
                        }
                        None => send(&mut out, &protocol::resp_no_work())?,
                    }
                }
            }
            Request::Offer { id, payload } => {
                let matches = pending_steal.as_ref().is_some_and(|job| job.id == id);
                if matches {
                    if let Some(job) = pending_steal.take() {
                        sched.complete_stolen(&job, payload);
                        send(&mut out, &protocol::resp_offered(&id, job.view().state))?;
                    }
                } else {
                    send(
                        &mut out,
                        &protocol::resp_error(&format!(
                            "no stolen job {id:?} is pending on this connection"
                        )),
                    )?;
                }
            }
            Request::Fetch { id } => {
                let payload = sched.cache.peek(&id);
                send(&mut out, &protocol::resp_fetch(&id, payload.as_deref()))?;
            }
        }
    }
    Ok(())
}
