//! Poison-tolerant lock helpers.
//!
//! A panicking executor runs with `catch_unwind` on a detached thread;
//! if it ever panics while holding one of our state locks, the data it
//! guards is still structurally valid (we only ever mutate it with
//! simple pushes and field stores), so recovering the inner value is
//! safe and keeps the server alive — which is the whole point of
//! per-job panic isolation.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock a mutex, recovering from poisoning.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Wait on a condvar, recovering from poisoning.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
