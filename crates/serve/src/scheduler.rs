//! Admission control, the bounded job queue, and the worker pool.
//!
//! The shape mirrors the paper runtime's queue/worker split one level
//! up: submission (work generation) is decoupled from execution (a
//! fixed worker pool) through a bounded FIFO queue. Admission control
//! rejects — with a typed `overloaded` response — rather than buffering
//! unboundedly, so a flood of submissions degrades into fast failures
//! instead of memory growth. Each job runs on a detached thread under
//! `catch_unwind` with a wall-clock timeout: a poisoned job fails, the
//! server lives.

use crate::cache::ResultCache;
use crate::job::{JobSpec, JobState};
use crate::metrics::Metrics;
use crate::sync::{lock, wait};
use mosaic_model::CalibrationTable;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the server turns a [`JobSpec`] into a result payload.
///
/// Implementations must be deterministic in the spec (that is what
/// makes the result cache sound) and should poll `cancelled`
/// periodically so cancellation and timeouts can reclaim the host
/// resources the job holds (e.g. kill a child process).
pub trait Executor: Send + Sync + 'static {
    /// Run the job. `progress(done, total, message)` may be called any
    /// number of times; `total == 0` means "unknown". The returned
    /// `Ok` payload must be a complete JSON document (it is cached and
    /// served verbatim).
    fn run(
        &self,
        spec: &JobSpec,
        progress: &dyn Fn(u64, u64, &str),
        cancelled: &AtomicBool,
    ) -> Result<String, String>;
}

/// Cross-node cache lookup, consulted once per job right before the
/// first execution attempt. Implementations ask fleet peers (over the
/// cache-only `fetch` verb) whether any of them already paid for this
/// digest; a hit is completed like a local run — cached, journaled,
/// counted — without invoking the executor. Soundness rests on the
/// same property as the local cache: the id is a content digest, so
/// any peer's payload for it is *the* payload.
pub trait RemoteLookup: Send + Sync + std::fmt::Debug {
    /// The cached payload for `id`, if some peer holds it.
    fn fetch(&self, id: &str) -> Option<String>;
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Maximum queued (not yet running) jobs; submissions beyond this
    /// are rejected with `overloaded`. A cap of 0 rejects everything —
    /// useful as a drain/maintenance mode and exercised by tests.
    pub queue_cap: usize,
    /// Worker threads executing jobs. Size this so
    /// `workers × host_threads_per_run ≤ host cores` (each simulation
    /// spawns one OS thread per simulated core — same rule
    /// `mosaic-bench`'s sweep pool applies per cell).
    pub workers: usize,
    /// Per-*attempt* wall-clock timeout; expiry marks the job
    /// `timeout`, flags it cancelled, and abandons its thread. A
    /// timeout is terminal — it is never retried (the next attempt
    /// would very likely burn the same budget again).
    pub job_timeout: Duration,
    /// Bounded retry policy for failed attempts (executor errors,
    /// panics, worker deaths). The default performs no retries.
    pub retry: RetryPolicy,
    /// Calibration table backing `auto`-fidelity resolution. `None`
    /// (the default) rejects `auto` submissions outright — a daemon
    /// that never ran `calibrate` has no basis for trusting the
    /// analytic model.
    pub calibration: Option<Arc<CalibrationTable>>,
    /// Widest calibrated confidence band (relative error, ppm) the
    /// scheduler still answers analytically; `auto` jobs over it are
    /// escalated to the cycle-accurate backend.
    pub escalate_bound_ppm: u64,
    /// Crash-safety journal ([`crate::journal`]). `None` (the default)
    /// journals nothing; the server opens one, replays it, and passes
    /// the handle in so every lifecycle transition is durably logged.
    pub journal: Option<Arc<crate::journal::Journal>>,
    /// Cross-node cache lookup ([`RemoteLookup`]); `None` (the
    /// default) asks no peers. The server wires in a fleet peer-cache
    /// client when started with peers.
    pub remote: Option<Arc<dyn RemoteLookup>>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_cap: 64,
            workers: 1,
            job_timeout: Duration::from_secs(600),
            retry: RetryPolicy::default(),
            calibration: None,
            escalate_bound_ppm: 100_000,
            journal: None,
            remote: None,
        }
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Retrying is sound here because executors are required to be
/// deterministic *in the spec* and side-effect-free beyond their
/// scratch space — a failed attempt leaves nothing a rerun could
/// trip over. Jitter is derived by hashing `(job id, attempt)` rather
/// than sampled, so a given job's retry timeline is reproducible.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (min 1; 1 = never
    /// retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The default backoff shape with `max_attempts` total attempts.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before attempt `attempt + 1`, given that attempt
    /// `attempt` (1-based) just failed: `base * 2^(attempt-1)` capped
    /// at `max_backoff`, scaled by a deterministic 50–100% jitter
    /// derived from `(key, attempt)`.
    pub fn backoff(&self, key: &str, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        let h = crate::job::fnv1a64(format!("{key}:{attempt}").as_bytes());
        let percent = 50 + (h % 51); // 50..=100
        Duration::from_millis(capped.as_millis() as u64 * percent / 100)
    }
}

/// Point-in-time view of one job, cheap to clone across the protocol.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Lifecycle state.
    pub state: JobState,
    /// Progress units finished (experiment cells, typically).
    pub done: u64,
    /// Total progress units, 0 when unknown.
    pub total: u64,
    /// Result payload once `Done`.
    pub payload: Option<String>,
    /// Failure message once `Failed`.
    pub error: Option<String>,
}

struct JobInner {
    view: JobView,
    events: Vec<String>,
}

/// One submitted job: spec, live state, progress event log.
pub struct JobRecord {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Content digest of the spec (the job id).
    pub id: String,
    inner: Mutex<JobInner>,
    cv: Condvar,
    cancelled: AtomicBool,
    enqueued_at: Instant,
}

impl JobRecord {
    /// Crate-visible so the fleet gateway can host records for jobs it
    /// forwards (it shares this type with the local scheduler).
    pub(crate) fn new(spec: JobSpec, state: JobState) -> Arc<JobRecord> {
        let id = spec.digest();
        Arc::new(JobRecord {
            spec,
            id,
            inner: Mutex::new(JobInner {
                view: JobView {
                    state,
                    done: 0,
                    total: 0,
                    payload: None,
                    error: None,
                },
                events: Vec::new(),
            }),
            cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
            enqueued_at: Instant::now(),
        })
    }

    /// Current snapshot.
    pub fn view(&self) -> JobView {
        lock(&self.inner).view.clone()
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Request cancellation (the executor observes the flag).
    pub fn request_cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    pub(crate) fn set_state(&self, f: impl FnOnce(&mut JobView)) {
        let mut g = lock(&self.inner);
        f(&mut g.view);
        self.cv.notify_all();
    }

    pub(crate) fn push_event(&self, done: u64, total: u64, message: &str) {
        let mut g = lock(&self.inner);
        g.view.done = done;
        g.view.total = total;
        g.events.push(message.to_string());
        self.cv.notify_all();
    }

    /// Block until the job reaches a terminal state; returns the final
    /// snapshot.
    pub fn wait_terminal(&self) -> JobView {
        let mut g = lock(&self.inner);
        while !g.view.state.is_terminal() {
            g = wait(&self.cv, g);
        }
        g.view.clone()
    }

    /// Block until there are events past `from` or the job is
    /// terminal; returns the new events and the current snapshot.
    pub fn wait_events(&self, from: usize) -> (Vec<String>, JobView) {
        let mut g = lock(&self.inner);
        while g.events.len() <= from && !g.view.state.is_terminal() {
            g = wait(&self.cv, g);
        }
        (
            g.events[from.min(g.events.len())..].to_vec(),
            g.view.clone(),
        )
    }
}

/// Outcome of a submission attempt.
pub enum Submit {
    /// Result served straight from the cache (no queueing).
    Cached(Arc<JobRecord>),
    /// Admitted and queued.
    Enqueued(Arc<JobRecord>),
    /// The same spec is already queued or running; coalesced onto the
    /// existing record.
    InFlight(Arc<JobRecord>),
    /// Rejected by admission control.
    Overloaded {
        /// Jobs currently queued.
        depth: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Rejected because the server is draining for shutdown.
    Draining,
    /// Rejected because the spec asked for something this daemon
    /// cannot serve (e.g. `auto` fidelity without a calibration
    /// table). The message goes back verbatim as an `error` response.
    Unsupported(String),
}

struct SchedInner {
    queue: VecDeque<Arc<JobRecord>>,
    jobs: HashMap<String, Arc<JobRecord>>,
    draining: bool,
    busy: usize,
    /// Jobs donated to a thief and not yet resolved (offer delivered
    /// or requeued). Drain and worker shutdown wait on this reaching
    /// zero so a stolen job can always be requeued into a live pool.
    stolen_out: usize,
}

/// The scheduler: queue, worker pool, cache, and metrics in one place.
pub struct Scheduler {
    cfg: SchedConfig,
    executor: Arc<dyn Executor>,
    /// The result cache (exposed for metrics snapshots).
    pub cache: ResultCache,
    /// Lifecycle counters (exposed for metrics snapshots).
    pub metrics: Metrics,
    inner: Mutex<SchedInner>,
    work_cv: Condvar,
    drain_cv: Condvar,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Build the scheduler and start its worker pool.
    pub fn start(cfg: SchedConfig, cache: ResultCache, executor: Arc<dyn Executor>) -> Arc<Self> {
        let sched = Arc::new(Scheduler {
            cfg: cfg.clone(),
            executor,
            cache,
            metrics: Metrics::new(),
            inner: Mutex::new(SchedInner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                draining: false,
                busy: 0,
                stolen_out: 0,
            }),
            work_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = lock(&sched.workers);
        for w in 0..cfg.workers.max(1) {
            let s = Arc::clone(&sched);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || s.worker_loop())
                    .expect("spawn worker thread"),
            );
        }
        drop(handles);
        sched
    }

    /// Resolve `auto` fidelity against the calibration table: answer
    /// analytically when the experiment's calibrated confidence band
    /// is inside the escalation bound, escalate to cycle-accurate
    /// otherwise. Runs *before* the digest is taken, so a resolved
    /// `auto` submission shares its cache entry with an explicit one.
    fn resolve_fidelity(&self, spec: &mut JobSpec) -> Result<(), String> {
        if spec.fidelity != "auto" {
            return Ok(());
        }
        let Some(table) = &self.cfg.calibration else {
            return Err(
                "fidelity \"auto\" needs a calibration table; this daemon was started \
                 without one (run the calibrate harness, then pass --calibration)"
                    .to_string(),
            );
        };
        if table.within_bound(&spec.experiment, &spec.scale, self.cfg.escalate_bound_ppm) {
            spec.fidelity = "analytic".to_string();
            self.metrics.fast_jobs.fetch_add(1, Ordering::Relaxed);
        } else {
            spec.fidelity = "cycle".to_string();
            self.metrics.escalations.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Submit a spec: `auto`-fidelity resolution, cache lookup,
    /// duplicate coalescing, admission control, then enqueue.
    pub fn submit(&self, mut spec: JobSpec) -> Submit {
        if let Err(e) = self.resolve_fidelity(&mut spec) {
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Submit::Unsupported(e);
        }
        let id = spec.digest();
        let mut g = lock(&self.inner);
        if g.draining {
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Submit::Draining;
        }
        // Coalesce onto an in-flight duplicate before consulting the
        // cache, so a spec that is mid-run counts neither hit nor miss.
        if let Some(existing) = g.jobs.get(&id) {
            if !existing.view().state.is_terminal() {
                return Submit::InFlight(Arc::clone(existing));
            }
        }
        if let Some(payload) = self.cache.lookup(&id) {
            let record = JobRecord::new(spec, JobState::Done);
            record.set_state(|v| v.payload = Some(payload.clone()));
            g.jobs.insert(id, Arc::clone(&record));
            return Submit::Cached(record);
        }
        if g.queue.len() >= self.cfg.queue_cap {
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Submit::Overloaded {
                depth: g.queue.len(),
                cap: self.cfg.queue_cap,
            };
        }
        let record = JobRecord::new(spec, JobState::Queued);
        g.jobs.insert(id, Arc::clone(&record));
        g.queue.push_back(Arc::clone(&record));
        self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(j) = &self.cfg.journal {
            j.record_admitted(&record.id, &record.spec);
        }
        self.work_cv.notify_one();
        Submit::Enqueued(record)
    }

    /// Look up a job by id.
    pub fn job(&self, id: &str) -> Option<Arc<JobRecord>> {
        lock(&self.inner).jobs.get(id).cloned()
    }

    /// Cancel a job: a queued job is removed from the queue and marked
    /// terminal immediately; a running job gets its cancel flag set
    /// (the worker marks it terminal when the executor yields).
    /// Returns the job's state after the request, or `None` if the id
    /// is unknown.
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let mut g = lock(&self.inner);
        let record = g.jobs.get(id).cloned()?;
        let state = record.view().state;
        match state {
            JobState::Queued => {
                g.queue.retain(|j| j.id != id);
                record.request_cancel();
                record.set_state(|v| v.state = JobState::Cancelled);
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                if let Some(j) = &self.cfg.journal {
                    j.record_cancelled(id);
                }
                Some(JobState::Cancelled)
            }
            JobState::Running => {
                record.request_cancel();
                Some(JobState::Running)
            }
            terminal => Some(terminal),
        }
    }

    /// Current (queue depth, busy workers).
    pub fn load(&self) -> (usize, usize) {
        let g = lock(&self.inner);
        (g.queue.len(), g.busy)
    }

    /// The configured worker-pool size.
    pub fn worker_count(&self) -> usize {
        self.cfg.workers.max(1)
    }

    /// Whether a requested drain has fully completed: nothing queued,
    /// nothing running, nothing out on loan to a thief.
    pub fn quiesced(&self) -> bool {
        let g = lock(&self.inner);
        g.draining && g.queue.is_empty() && g.busy == 0 && g.stolen_out == 0
    }

    /// Donate one queued job to a thief: pop the *back* of the queue
    /// (the FIFO front stays reserved for local workers, mirroring the
    /// steal-from-the-tail discipline of the simulated runtime's work
    /// queues), mark it running, and hand the record out. The caller
    /// owns resolving it — [`complete_stolen`](Self::complete_stolen)
    /// when the thief's offer arrives, or
    /// [`requeue_stolen`](Self::requeue_stolen) if the thief vanishes.
    /// A draining scheduler donates nothing.
    pub fn steal_one(&self) -> Option<Arc<JobRecord>> {
        let job = {
            let mut g = lock(&self.inner);
            if g.draining {
                return None;
            }
            let job = g.queue.pop_back()?;
            g.stolen_out += 1;
            job
        };
        job.set_state(|v| v.state = JobState::Running);
        if let Some(j) = &self.cfg.journal {
            j.record_started(&job.id);
        }
        self.metrics.donated.fetch_add(1, Ordering::Relaxed);
        Some(job)
    }

    /// Resolve a stolen job with the outcome its thief offered home.
    /// Success lands exactly like a local completion (cached,
    /// journaled, counted), so the victim's cache gains the payload
    /// even though a peer computed it; failure is terminal — the thief
    /// already ran the job under its own retry policy, and executors
    /// are deterministic in the spec, so a local rerun would fail the
    /// same way.
    pub fn complete_stolen(&self, job: &Arc<JobRecord>, outcome: Result<String, String>) {
        if job.is_cancelled() {
            self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .observe_latency(&job.spec.fidelity, job.enqueued_at.elapsed());
            if let Some(j) = &self.cfg.journal {
                j.record_cancelled(&job.id);
            }
            job.set_state(|v| v.state = JobState::Cancelled);
        } else {
            match outcome {
                Ok(payload) => self.finish_ok(job, payload),
                Err(e) => {
                    self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .observe_latency(&job.spec.fidelity, job.enqueued_at.elapsed());
                    if let Some(j) = &self.cfg.journal {
                        j.record_completed(&job.id, false);
                    }
                    job.set_state(|v| {
                        v.state = JobState::Failed;
                        v.error = Some(e);
                    });
                }
            }
        }
        self.resolve_loan();
    }

    /// Put a stolen job back at the queue *front* (it has already
    /// waited its turn once) after its thief disappeared without
    /// offering an outcome.
    pub fn requeue_stolen(&self, job: &Arc<JobRecord>) {
        job.set_state(|v| v.state = JobState::Queued);
        {
            let mut g = lock(&self.inner);
            g.queue.push_front(Arc::clone(job));
        }
        self.resolve_loan();
    }

    /// One loan resolved: wake workers (a requeue needs a runner; a
    /// drain-blocked worker needs to recheck) and drain waiters.
    fn resolve_loan(&self) {
        let mut g = lock(&self.inner);
        g.stolen_out -= 1;
        drop(g);
        self.work_cv.notify_all();
        self.drain_cv.notify_all();
    }

    /// Begin draining: reject new submissions, let queued and running
    /// jobs finish, and release the workers when the queue is empty.
    pub fn begin_drain(&self) {
        let mut g = lock(&self.inner);
        g.draining = true;
        self.work_cv.notify_all();
    }

    /// Block until the drain completes (queue empty, no busy worker,
    /// no job out on loan to a thief). Must be preceded by
    /// [`begin_drain`](Self::begin_drain).
    pub fn wait_drained(&self) {
        let mut g = lock(&self.inner);
        while !(g.draining && g.queue.is_empty() && g.busy == 0 && g.stolen_out == 0) {
            g = wait(&self.drain_cv, g);
        }
    }

    /// Join the worker pool (after a completed drain).
    pub fn join_workers(&self) {
        let handles = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        lock(&self.inner).draining
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut g = lock(&self.inner);
                loop {
                    if let Some(job) = g.queue.pop_front() {
                        g.busy += 1;
                        break job;
                    }
                    // Stay alive while jobs are out on loan: an EOF on
                    // the thief's connection requeues them here, and a
                    // dead pool would strand the requeue forever.
                    if g.draining && g.stolen_out == 0 {
                        self.drain_cv.notify_all();
                        return;
                    }
                    g = wait(&self.work_cv, g);
                }
            };
            self.run_one(&job);
            {
                let mut g = lock(&self.inner);
                g.busy -= 1;
            }
            self.drain_cv.notify_all();
        }
    }

    /// Execute one job with panic isolation, a per-attempt wall-clock
    /// timeout, and bounded retries, then publish its terminal state.
    fn run_one(&self, job: &Arc<JobRecord>) {
        job.set_state(|v| v.state = JobState::Running);
        if let Some(j) = &self.cfg.journal {
            j.record_started(&job.id);
        }
        // Ask fleet peers for the payload before paying for an
        // execution: a cross-node hit completes like a local run.
        if let Some(remote) = &self.cfg.remote {
            if !job.is_cancelled() {
                if let Some(payload) = remote.fetch(&job.id) {
                    self.metrics
                        .remote_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                    self.finish_ok(job, payload);
                    return;
                }
            }
        }
        let max_attempts = self.cfg.retry.max_attempts.max(1);
        let mut last_err = String::new();
        for attempt in 1..=max_attempts {
            let outcome = match self.run_attempt(job) {
                Attempt::Finished(outcome) => outcome,
                Attempt::TimedOut => {
                    // Terminal: a rerun would very likely burn the
                    // same wall-clock budget again. The executor sees
                    // the cancel flag and kills whatever it drives;
                    // the job thread is abandoned either way.
                    job.request_cancel();
                    // Counters first, terminal state last: waiters wake
                    // on the state change and may read metrics at once.
                    self.metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .observe_latency(&job.spec.fidelity, job.enqueued_at.elapsed());
                    // Terminal with no payload: journal it as a failed
                    // completion so a restart never re-burns the budget.
                    if let Some(j) = &self.cfg.journal {
                        j.record_completed(&job.id, false);
                    }
                    job.set_state(|v| v.state = JobState::TimedOut);
                    return;
                }
                Attempt::WorkerDied => {
                    // The job thread dropped its channel without
                    // delivering a result — not a timeout, and
                    // distinct from an executor error: classify and
                    // count it separately.
                    self.metrics.worker_deaths.fetch_add(1, Ordering::Relaxed);
                    Err("job worker thread died without delivering a result".to_string())
                }
            };
            if job.is_cancelled() {
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .observe_latency(&job.spec.fidelity, job.enqueued_at.elapsed());
                if let Some(j) = &self.cfg.journal {
                    j.record_cancelled(&job.id);
                }
                job.set_state(|v| v.state = JobState::Cancelled);
                return;
            }
            match outcome {
                Ok(payload) => {
                    self.finish_ok(job, payload);
                    return;
                }
                Err(e) => {
                    last_err = e;
                    if attempt < max_attempts {
                        self.metrics.retries.fetch_add(1, Ordering::Relaxed);
                        let delay = self.cfg.retry.backoff(&job.id, attempt);
                        let view = job.view();
                        job.push_event(
                            view.done,
                            view.total,
                            &format!(
                                "attempt {attempt}/{max_attempts} failed ({last_err}); \
                                 retrying in {delay:?}"
                            ),
                        );
                        std::thread::sleep(delay);
                    }
                }
            }
        }
        self.metrics.failed.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .observe_latency(&job.spec.fidelity, job.enqueued_at.elapsed());
        if let Some(j) = &self.cfg.journal {
            j.record_completed(&job.id, false);
        }
        job.set_state(|v| {
            v.state = JobState::Failed;
            v.error = Some(last_err);
        });
    }

    /// Publish a successful payload: absorb profiler counters, cache,
    /// journal, count, and mark the record `Done`. Shared by local
    /// runs, cross-node cache hits, and offered-home stolen jobs.
    fn finish_ok(&self, job: &Arc<JobRecord>, payload: String) {
        self.metrics.absorb_profile(&payload);
        // Cache before journal: once `completed` is durable,
        // a restart will trust the cache to have the bytes.
        self.cache.insert(&job.id, &job.spec, &payload);
        if let Some(j) = &self.cfg.journal {
            j.record_completed(&job.id, true);
        }
        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .observe_latency(&job.spec.fidelity, job.enqueued_at.elapsed());
        job.set_state(|v| {
            v.state = JobState::Done;
            v.payload = Some(payload);
        });
    }

    /// One execution attempt on a detached thread.
    fn run_attempt(&self, job: &Arc<JobRecord>) -> Attempt {
        let (tx, rx) = mpsc::channel::<Result<String, String>>();
        {
            let job = Arc::clone(job);
            let executor = Arc::clone(&self.executor);
            let journal = self.cfg.journal.clone();
            std::thread::Builder::new()
                .name(format!("serve-job-{}", job.id))
                .spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        executor.run(
                            &job.spec,
                            &|done, total, msg| {
                                if let Some(j) = &journal {
                                    j.record_progress(&job.id, done, total);
                                }
                                job.push_event(done, total, msg);
                            },
                            &job.cancelled,
                        )
                    }))
                    .unwrap_or_else(|panic| {
                        Err(format!("job panicked: {}", panic_message(&panic)))
                    });
                    // Send fails only if the worker stopped listening
                    // (timeout); nothing left to deliver then.
                    let _ = tx.send(outcome);
                })
                .expect("spawn job thread");
        }
        match rx.recv_timeout(self.cfg.job_timeout) {
            Ok(r) => Attempt::Finished(r),
            Err(RecvTimeoutError::Timeout) => Attempt::TimedOut,
            Err(RecvTimeoutError::Disconnected) => Attempt::WorkerDied,
        }
    }
}

/// How one execution attempt ended.
enum Attempt {
    /// The executor returned (or panicked, mapped to `Err`).
    Finished(Result<String, String>),
    /// The attempt exceeded the per-attempt timeout.
    TimedOut,
    /// The job thread died without delivering a result.
    WorkerDied,
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
