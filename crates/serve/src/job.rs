//! The canonical job model: what callers submit, how it is identified.
//!
//! A [`JobSpec`] pins every input that can influence a simulation's
//! numbers — experiment, workload/config filters, scale, mesh shape,
//! seed, sanitize flag. Because the simulator is bit-deterministic,
//! the spec's [`digest`](JobSpec::digest) is a sound *content address*
//! for the result: same digest ⇒ byte-identical output, which is what
//! makes the result cache correct without invalidation logic.

use jsonlite::Json;

/// Everything that identifies one unit of server work.
///
/// Empty-string / zero fields mean "experiment default" (e.g.
/// `cols == 0` lets the experiment pick its paper mesh shape); the
/// defaults are still part of the digest text, so a spec that spells a
/// default explicitly hashes differently from one that leaves it to
/// the experiment — the two can legitimately produce different file
/// names and are cached separately.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Experiment (harness binary) name, e.g. `table1`.
    pub experiment: String,
    /// Restrict to one workload (empty = all the experiment covers).
    pub workload: String,
    /// Restrict to one runtime config label (empty = all).
    pub config: String,
    /// Scale preset: `tiny` / `small` / `full`.
    pub scale: String,
    /// Mesh columns; 0 = experiment default.
    pub cols: u16,
    /// Mesh core rows; 0 = experiment default.
    pub rows: u16,
    /// Input-generator seed (experiments are seed-deterministic).
    pub seed: u64,
    /// Attach the memory-model sanitizer.
    pub sanitize: bool,
    /// Canonical fault-plan spec string (`mosaic_chaos::FaultPlan`
    /// syntax); empty = no injected faults. Part of the digest: a
    /// faulted run is a different computation from a clean one and
    /// must never share a cache entry with it.
    pub faults: String,
    /// Host threads per simulation (`MachineConfig::host_threads`,
    /// the window-parallel engine). Rides the wire so executors can
    /// honor it, but is deliberately **excluded from the digest**: the
    /// engine is byte-identical at every value, so runs at different
    /// thread counts are the same computation and must share a cache
    /// entry (asserted by `digest_ignores_host_threads`).
    pub host_threads: usize,
    /// Checkpoint cadence in simulated cycles
    /// (`MachineConfig::checkpoint_every`); 0 = no checkpoints. Like
    /// `host_threads`, a host-side durability knob that rides the wire
    /// but is **excluded from the digest**: checkpoint writes are
    /// observationally free — the engine pops the same events and
    /// produces byte-identical results at every cadence (asserted by
    /// `digest_ignores_checkpoint_every`).
    pub checkpoint_every: u64,
    /// Backend fidelity: `""`/`"cycle"` (cycle-accurate default),
    /// `"analytic"` (the calibrated model), or `"auto"` (the scheduler
    /// resolves it against its calibration table before the digest is
    /// taken, so `auto` itself never reaches the cache). Part of the
    /// digest: an analytic answer is a different computation from a
    /// cycle-accurate one and must never share a cache entry with it.
    pub fidelity: String,
}

impl JobSpec {
    /// A spec for `experiment` at `scale` with all other fields at
    /// their experiment defaults.
    pub fn new(experiment: &str, scale: &str) -> JobSpec {
        JobSpec {
            experiment: experiment.to_string(),
            workload: String::new(),
            config: String::new(),
            scale: scale.to_string(),
            cols: 0,
            rows: 0,
            seed: 0,
            sanitize: false,
            faults: String::new(),
            host_threads: 1,
            checkpoint_every: 0,
            fidelity: String::new(),
        }
    }

    /// Serialize the result-determining fields in canonical order —
    /// the digest input. `host_threads` is omitted on purpose: it
    /// cannot change a single output byte (see the field docs).
    fn canonical_json(&self) -> Json {
        Json::obj()
            .field("experiment", self.experiment.as_str())
            .field("workload", self.workload.as_str())
            .field("config", self.config.as_str())
            .field("scale", self.scale.as_str())
            .field("cols", self.cols as u64)
            .field("rows", self.rows as u64)
            .field("seed", self.seed)
            .field("sanitize", self.sanitize)
            .field("faults", self.faults.as_str())
            .field("fidelity", self.fidelity.as_str())
            .build()
    }

    /// Serialize the full wire/cache form: the canonical fields plus
    /// host-side knobs that executors honor but the digest ignores.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("experiment", self.experiment.as_str())
            .field("workload", self.workload.as_str())
            .field("config", self.config.as_str())
            .field("scale", self.scale.as_str())
            .field("cols", self.cols as u64)
            .field("rows", self.rows as u64)
            .field("seed", self.seed)
            .field("sanitize", self.sanitize)
            .field("faults", self.faults.as_str())
            .field("fidelity", self.fidelity.as_str())
            .field("host_threads", self.host_threads as u64)
            .field("checkpoint_every", self.checkpoint_every)
            .build()
    }

    /// Parse back from the wire / cache form.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let obj = v.as_object("spec")?;
        Ok(JobSpec {
            experiment: obj.get("experiment", "spec")?.as_string()?,
            workload: obj.get("workload", "spec")?.as_string()?,
            config: obj.get("config", "spec")?.as_string()?,
            scale: obj.get("scale", "spec")?.as_string()?,
            cols: obj.get("cols", "spec")?.as_u64()? as u16,
            rows: obj.get("rows", "spec")?.as_u64()? as u16,
            seed: obj.get("seed", "spec")?.as_u64()?,
            sanitize: obj.get("sanitize", "spec")?.as_bool()?,
            // Absent in specs written before fault injection existed
            // (old cache entries, old clients): treat as "no faults".
            faults: match obj.opt("faults") {
                Some(f) => f.as_string()?,
                None => String::new(),
            },
            // Absent in specs from before the window-parallel engine:
            // sequential, exactly as those clients ran.
            host_threads: match obj.opt("host_threads") {
                Some(h) => (h.as_u64()? as usize).max(1),
                None => 1,
            },
            // Absent in specs from before crash durability existed:
            // no checkpoints, exactly as those clients ran.
            checkpoint_every: match obj.opt("checkpoint_every") {
                Some(c) => c.as_u64()?,
                None => 0,
            },
            // Absent in specs from before the dual-fidelity backends:
            // cycle-accurate, exactly as those clients ran.
            fidelity: match obj.opt("fidelity") {
                Some(f) => f.as_string()?,
                None => String::new(),
            },
        })
    }

    /// Stable content digest: FNV-1a/64 over the canonical JSON form,
    /// as 16 lowercase hex digits. Used as the job id, the cache key,
    /// and the on-disk cache file name. Host-side knobs that cannot
    /// affect results (`host_threads`, `checkpoint_every`) are not
    /// part of it.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_json().write().as_bytes()))
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms.
/// (Not cryptographic; the cache is a performance layer over a
/// deterministic computation, not a trust boundary.)
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; payload available (and cached).
    Done,
    /// Executor returned an error or panicked.
    Failed,
    /// Exceeded the per-job wall-clock timeout.
    TimedOut,
    /// Cancelled before completion.
    Cancelled,
}

impl JobState {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timeout",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<JobState, String> {
        Ok(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "timeout" => JobState::TimedOut,
            "cancelled" => JobState::Cancelled,
            other => return Err(format!("unknown job state {other:?}")),
        })
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::TimedOut | JobState::Cancelled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_spec_sensitive() {
        let a = JobSpec::new("table1", "tiny");
        assert_eq!(a.digest(), a.digest());
        assert_eq!(a.digest().len(), 16);

        let mut b = a.clone();
        b.sanitize = true;
        assert_ne!(a.digest(), b.digest());

        let mut c = a.clone();
        c.seed = 1;
        assert_ne!(a.digest(), c.digest());

        let mut d = a.clone();
        d.cols = 8;
        d.rows = 4;
        assert_ne!(a.digest(), d.digest());

        let mut e = a.clone();
        e.faults = "seed=7,horizon=1000,links=1x100".into();
        assert_ne!(a.digest(), e.digest());

        // An analytic answer is a different computation from a
        // cycle-accurate one: it must never share a cache entry.
        let mut f = a.clone();
        f.fidelity = "analytic".into();
        assert_ne!(a.digest(), f.digest());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut s = JobSpec::new("fig09_speedup", "small");
        s.workload = "CilkSort-64K".into();
        s.config = "ws/spm-stack/spm-q".into();
        s.cols = 16;
        s.rows = 8;
        s.seed = 7;
        s.sanitize = true;
        s.faults = "seed=3,horizon=5000,freeze=2x100".into();
        s.host_threads = 4;
        s.checkpoint_every = 50_000;
        s.fidelity = "analytic".into();
        assert_eq!(JobSpec::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn digest_ignores_host_threads() {
        // The window-parallel engine is byte-identical at every thread
        // count, so host_threads must ride the wire without changing
        // the content address — otherwise identical results would be
        // cached (and recomputed) once per thread count.
        let a = JobSpec::new("table1", "tiny");
        let mut b = a.clone();
        b.host_threads = 4;
        assert_eq!(a.digest(), b.digest());
        assert_ne!(
            a.to_json().write(),
            b.to_json().write(),
            "wire form still carries it"
        );
        assert_eq!(JobSpec::from_json(&b.to_json()).unwrap().host_threads, 4);
    }

    #[test]
    fn digest_ignores_checkpoint_every() {
        // Checkpoint writes never change what the engine computes, so
        // a checkpointed run must share its cache entry with the plain
        // one — a crash-recovered sweep then converges onto the exact
        // payloads the uninterrupted run would have cached.
        let a = JobSpec::new("table1", "tiny");
        let mut b = a.clone();
        b.checkpoint_every = 10_000;
        assert_eq!(a.digest(), b.digest());
        assert_ne!(
            a.to_json().write(),
            b.to_json().write(),
            "wire form still carries it"
        );
        assert_eq!(
            JobSpec::from_json(&b.to_json()).unwrap().checkpoint_every,
            10_000
        );
    }

    #[test]
    fn pre_fault_specs_parse_with_no_faults() {
        // Wire/cache forms written before the `faults` field existed
        // must keep parsing (and mean "no injected faults").
        let legacy = Json::parse(
            r#"{"experiment":"table1","workload":"","config":"","scale":"tiny","cols":0,"rows":0,"seed":0,"sanitize":false}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&legacy).unwrap();
        assert_eq!(spec.faults, "");
        assert_eq!(spec.fidelity, "", "pre-model specs mean cycle-accurate");
        assert_eq!(spec.experiment, "table1");
    }

    #[test]
    fn state_names_round_trip() {
        for st in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::TimedOut,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(st.as_str()).unwrap(), st);
        }
        assert!(JobState::parse("bogus").is_err());
    }
}
