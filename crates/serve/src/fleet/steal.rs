//! The worker-side fleet roles: stealing queued jobs from loaded
//! peers, and answering jobs from peers' caches.
//!
//! **Stealing.** Every fleet worker runs one stealer thread. When the
//! local daemon is idle (empty queue, a spare worker), it probes peers
//! in a deterministic order — peers sorted by `fnv1a64("{peer}#{round}")`,
//! so consecutive rounds spread probes across victims and every
//! daemon's probe sequence is reproducible — and sends `steal`. A
//! victim with queued work donates the *back* of its queue and keeps
//! the job record marked running; the thief runs the spec through its
//! own scheduler (gaining cache, coalescing, panic isolation, and
//! retries for free) and `offer`s the outcome home **on the same
//! connection**. The connection is the lease: if the thief dies
//! mid-run, the victim sees EOF and requeues. No timers, no leases to
//! expire, no acknowledgement protocol.
//!
//! A thief that cannot actually run the stolen job (its own admission
//! rejected it) drops the connection instead of offering an error:
//! "I couldn't help" must requeue the job, not fail it.
//!
//! **Peer cache.** [`PeerCache`] implements
//! [`RemoteLookup`]: before executing
//! a job, a worker asks each peer's cache (the cache-only `fetch`
//! verb, probe order seeded by the job digest) whether the payload
//! already exists somewhere in the fleet. Content addressing makes
//! the answer trustworthy wherever it comes from.

use crate::client::Client;
use crate::job::fnv1a64;
use crate::protocol::Request;
use crate::scheduler::{RemoteLookup, Scheduler, Submit};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How often an idle worker probes its peers for work.
const STEAL_INTERVAL: Duration = Duration::from_millis(25);

/// Cross-node cache lookup over the fleet's `fetch` verb.
#[derive(Debug)]
pub struct PeerCache {
    peers: Vec<String>,
}

impl PeerCache {
    /// A lookup probing `peers` (the other workers' addresses).
    pub fn new(peers: Vec<String>) -> PeerCache {
        PeerCache { peers }
    }

    /// Peers sorted by `fnv1a64("{id}@{peer}")`: a deterministic
    /// per-digest order, so different digests spread first-probe load
    /// across the fleet.
    fn probe_order(&self, id: &str) -> Vec<&str> {
        let mut order: Vec<&str> = self.peers.iter().map(String::as_str).collect();
        order.sort_by_key(|peer| fnv1a64(format!("{id}@{peer}").as_bytes()));
        order
    }
}

impl RemoteLookup for PeerCache {
    fn fetch(&self, id: &str) -> Option<String> {
        for peer in self.probe_order(id) {
            // An unreachable peer is skipped, not an error: the local
            // executor is always a correct fallback.
            let Ok(mut c) = Client::connect(peer) else {
                continue;
            };
            if let Ok(Some(payload)) = c.fetch(id) {
                return Some(payload);
            }
        }
        None
    }
}

/// Outcome of one steal probe against one peer.
enum Probe {
    /// Stole a job, ran it, offered the outcome home.
    Stole,
    /// The peer had nothing queued.
    NoWork,
    /// The peer was unreachable or the conversation broke down.
    Unreachable,
}

/// Spawn the stealer thread: probe peers whenever the local scheduler
/// is idle, stop when it starts draining.
pub(crate) fn spawn_stealer(
    sched: Arc<Scheduler>,
    peers: Vec<String>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("serve-stealer".to_string())
        .spawn(move || stealer_loop(&sched, &peers))
        .expect("spawn stealer thread")
}

fn stealer_loop(sched: &Arc<Scheduler>, peers: &[String]) {
    let mut round: u64 = 0;
    loop {
        if sched.is_draining() {
            return;
        }
        std::thread::sleep(STEAL_INTERVAL);
        let (depth, busy) = sched.load();
        if depth > 0 || busy >= sched.worker_count() {
            continue; // plenty of local work; don't import more
        }
        round = round.wrapping_add(1);
        let mut order: Vec<&String> = peers.iter().collect();
        order.sort_by_key(|peer| fnv1a64(format!("{peer}#{round}").as_bytes()));
        for peer in order {
            match steal_from(sched, peer) {
                Probe::Stole => break,
                Probe::NoWork | Probe::Unreachable => continue,
            }
        }
    }
}

/// One probe: connect, `steal`, run the donated job locally, `offer`
/// the outcome home on the same connection.
fn steal_from(sched: &Arc<Scheduler>, peer: &str) -> Probe {
    let Ok(mut victim) = Client::connect(peer) else {
        return Probe::Unreachable;
    };
    if victim.send(&Request::Steal).is_err() {
        return Probe::Unreachable;
    }
    let Ok(v) = victim.recv() else {
        return Probe::Unreachable;
    };
    let Ok(obj) = v.as_object("steal response") else {
        return Probe::Unreachable;
    };
    match obj
        .get("type", "steal response")
        .and_then(|t| t.as_string())
    {
        Ok(t) if t == "stolen" => {}
        Ok(t) if t == "no_work" => return Probe::NoWork,
        _ => return Probe::Unreachable,
    }
    let (Ok(id), Some(spec_json)) = (
        obj.get("id", "stolen").and_then(|v| v.as_string()),
        obj.opt("spec"),
    ) else {
        return Probe::Unreachable;
    };
    let Ok(spec) = crate::job::JobSpec::from_json(spec_json) else {
        return Probe::Unreachable;
    };
    sched.metrics.steals.fetch_add(1, Ordering::Relaxed);
    // Run through the local scheduler: the payload lands in *this*
    // node's cache too, which is what makes stolen sweeps converge
    // when the victim later dies and the subjob is re-routed here.
    let record = match sched.submit(spec) {
        Submit::Cached(r) | Submit::Enqueued(r) | Submit::InFlight(r) => r,
        // Local admission refused — drop the connection so the victim
        // requeues instead of recording a failure.
        Submit::Overloaded { .. } | Submit::Draining | Submit::Unsupported(_) => {
            return Probe::Unreachable;
        }
    };
    let view = record.wait_terminal();
    let payload = match view.state {
        crate::job::JobState::Done => Ok(view.payload.unwrap_or_default()),
        other => Err(view
            .error
            .unwrap_or_else(|| format!("stolen job ended {} on the thief", other.as_str()))),
    };
    if victim.send(&Request::Offer { id, payload }).is_err() {
        return Probe::Unreachable;
    }
    let _ = victim.recv(); // ack (`offered`); content is informational
    Probe::Stole
}
