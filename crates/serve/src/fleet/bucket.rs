//! Per-tenant token-bucket admission for the gateway.
//!
//! Each tenant (the optional `tenant` field on a `submit`) gets its
//! own bucket of `burst` tokens refilled at `rate` tokens per second;
//! a submission costs one token, and an empty bucket maps onto the
//! protocol's existing `overloaded` response, so throttled clients
//! need no new error handling. The empty tenant (`""`) is a tenant
//! like any other — anonymous traffic shares one bucket instead of
//! bypassing admission.
//!
//! Tokens are accounted in integer micro-tokens so sub-second refill
//! accrues exactly; there is no floating point, no drift, and the
//! arithmetic is identical on every host.

use crate::sync::lock;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

const MICRO: u64 = 1_000_000;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Micro-tokens currently available.
    tokens: u64,
    /// Last refill instant.
    refilled: Instant,
}

/// Token-bucket admission over a set of tenants.
#[derive(Debug)]
pub struct TenantGate {
    /// Refill rate, tokens per second (0 disables the gate: every
    /// submission is admitted).
    rate: u64,
    /// Bucket capacity, tokens (the permitted burst).
    burst: u64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantGate {
    /// A gate refilling `rate` tokens/second into buckets of `burst`
    /// tokens. `rate == 0` disables admission entirely.
    pub fn new(rate: u64, burst: u64) -> TenantGate {
        TenantGate {
            rate,
            burst: burst.max(1),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the gate is a no-op.
    pub fn disabled(&self) -> bool {
        self.rate == 0
    }

    /// The configured burst capacity (tokens).
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Try to take one token for `tenant` now.
    pub fn admit(&self, tenant: &str) -> bool {
        self.admit_at(tenant, Instant::now())
    }

    /// Clock-injectable core of [`admit`](Self::admit).
    fn admit_at(&self, tenant: &str, now: Instant) -> bool {
        if self.rate == 0 {
            return true;
        }
        let mut g = lock(&self.buckets);
        let bucket = g.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.burst * MICRO,
            refilled: now,
        });
        let elapsed_us = now.duration_since(bucket.refilled).as_micros() as u64;
        bucket.tokens =
            (bucket.tokens + elapsed_us.saturating_mul(self.rate)).min(self.burst * MICRO);
        bucket.refilled = now;
        if bucket.tokens >= MICRO {
            bucket.tokens -= MICRO;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_throttle_then_refill() {
        let gate = TenantGate::new(2, 3);
        let t0 = Instant::now();
        // The full burst is available immediately...
        for _ in 0..3 {
            assert!(gate.admit_at("acme", t0));
        }
        // ...then the bucket is dry...
        assert!(!gate.admit_at("acme", t0));
        // ...until 500ms buys one token back at 2 tokens/second.
        assert!(!gate.admit_at("acme", t0 + Duration::from_millis(200)));
        assert!(gate.admit_at("acme", t0 + Duration::from_millis(700)));
        assert!(!gate.admit_at("acme", t0 + Duration::from_millis(700)));
    }

    #[test]
    fn tenants_are_isolated() {
        let gate = TenantGate::new(1, 1);
        let t0 = Instant::now();
        assert!(gate.admit_at("a", t0));
        assert!(!gate.admit_at("a", t0));
        // Tenant b's bucket is untouched by a's exhaustion; so is the
        // anonymous ("") bucket.
        assert!(gate.admit_at("b", t0));
        assert!(gate.admit_at("", t0));
    }

    #[test]
    fn refill_never_exceeds_the_burst_cap() {
        let gate = TenantGate::new(100, 2);
        let t0 = Instant::now();
        assert!(gate.admit_at("t", t0));
        // An hour of refill still caps at 2 tokens.
        let later = t0 + Duration::from_secs(3600);
        assert!(gate.admit_at("t", later));
        assert!(gate.admit_at("t", later));
        assert!(!gate.admit_at("t", later));
    }

    #[test]
    fn rate_zero_disables_the_gate() {
        let gate = TenantGate::new(0, 1);
        assert!(gate.disabled());
        let t0 = Instant::now();
        for _ in 0..100 {
            assert!(gate.admit_at("flood", t0));
        }
    }
}
