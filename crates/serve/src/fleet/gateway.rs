//! The fleet front tier.
//!
//! A [`Gateway`] binds the same NDJSON protocol as a worker daemon and
//! presents the whole fleet as one: clients submit to it, poll it, and
//! read results from it exactly as they would a single daemon. Behind
//! the accept loop it does three jobs:
//!
//! - **Shard routing.** A singleton submission is forwarded to the
//!   node owning its digest on the consistent-hash
//!   [`ring`](crate::fleet::ring); a worker answering `cached: true`
//!   is a cross-node cache hit (counted in `remote_cache_hits`), so
//!   resubmitting anything anywhere in the fleet costs one forward.
//! - **Sweep fan-out.** Specs the injected [`Fanout`] can split are
//!   fanned into per-cell subjobs, each routed to its own owner; the
//!   parts are collected and merged **in canonical split order**, so
//!   the merged payload is byte-identical to a single-node run no
//!   matter which nodes (or thieves) executed which cells.
//! - **Failure re-routing.** A node that stops answering is marked
//!   down and its jobs are resubmitted along the ring-walk fallback
//!   order ([`HashRing::route`](crate::fleet::ring::HashRing::route)).
//!   Workers journal every admitted subjob, so a restarted worker
//!   independently re-converges on the same payloads; the gateway's
//!   re-route just refuses to wait for the restart.
//!
//! Per-tenant token-bucket admission
//! ([`TenantGate`]) is layered on
//! the existing `overloaded` response, and a `tenant` label on
//! `submit` picks the bucket.

use crate::client::Client;
use crate::fleet::bucket::TenantGate;
use crate::fleet::ring::{HashRing, DEFAULT_REPLICAS};
use crate::job::{JobSpec, JobState};
use crate::protocol::{self, Request};
use crate::scheduler::{JobRecord, RetryPolicy};
use crate::sync::lock;
use jsonlite::Json;
use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One cell of a fanned-out sweep.
#[derive(Debug, Clone)]
pub struct SubJob {
    /// Stable label (e.g. the workload name) identifying the cell in
    /// canonical order; merge receives parts labelled with it.
    pub label: String,
    /// The cell's own complete spec (digested and cached like any
    /// other job).
    pub spec: JobSpec,
}

/// How the gateway splits sweeps and merges their parts.
///
/// The contract that keeps fleet goldens byte-identical: `split` must
/// return subjobs in **canonical order** (the order a single-node run
/// would emit their cells), every returned spec must itself be a
/// valid job, and `merge` over payloads presented in that same order
/// must reproduce the single-run payload byte for byte. The real
/// implementation lives in `mosaic-bench` (which knows the workload
/// tables); this crate stays experiment-agnostic.
pub trait Fanout: Send + Sync {
    /// Split `spec` into canonical-order subjobs, or `None` to forward
    /// it whole.
    fn split(&self, spec: &JobSpec) -> Option<Vec<SubJob>>;
    /// Merge the `(label, payload)` parts — presented in `split`
    /// order — back into the sweep's single payload.
    fn merge(&self, spec: &JobSpec, parts: &[(String, String)]) -> Result<String, String>;
}

/// The trivial fanout: never splits anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFanout;

impl Fanout for NoFanout {
    fn split(&self, _spec: &JobSpec) -> Option<Vec<SubJob>> {
        None
    }
    fn merge(&self, _spec: &JobSpec, _parts: &[(String, String)]) -> Result<String, String> {
        Err("NoFanout cannot merge".to_string())
    }
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (port 0 = ephemeral).
    pub addr: String,
    /// Worker daemon addresses (the ring members). At least one.
    pub workers: Vec<String>,
    /// Virtual points per worker on the hash ring.
    pub replicas: usize,
    /// Per-tenant admission: tokens per second (0 = admission off).
    pub tenant_rate: u64,
    /// Per-tenant admission: bucket capacity (burst).
    pub tenant_burst: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:9119".to_string(),
            workers: Vec::new(),
            replicas: DEFAULT_REPLICAS,
            tenant_rate: 0,
            tenant_burst: 8,
        }
    }
}

/// Gateway-side counters, exported through the same `metrics` verb as
/// a worker's (clients print unknown keys in their "other" section).
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Singleton submissions forwarded to a worker, plus one per
    /// fanned-out subjob submission.
    pub forwards: AtomicU64,
    /// Sweeps split into subjobs.
    pub fanouts: AtomicU64,
    /// Subjobs produced by fan-out.
    pub subjobs: AtomicU64,
    /// Jobs resubmitted along the fallback route after a node loss.
    pub reroutes: AtomicU64,
    /// Forwarded submissions a worker answered from its cache.
    pub remote_cache_hits: AtomicU64,
    /// Submissions bounced by per-tenant admission.
    pub throttled: AtomicU64,
    /// Gateway jobs that reached `Done`.
    pub completed: AtomicU64,
    /// Gateway jobs that reached `Failed`.
    pub failed: AtomicU64,
}

struct Shared {
    ring: HashRing,
    fanout: Arc<dyn Fanout>,
    gate: TenantGate,
    jobs: Mutex<HashMap<String, Arc<JobRecord>>>,
    metrics: FleetMetrics,
    down: Mutex<BTreeSet<String>>,
    draining: AtomicBool,
    /// In-flight forward/fan-out coordinator threads; drain completes
    /// at zero (the accept loop polls it on its idle tick).
    active: Mutex<usize>,
}

/// A running gateway: accept loop plus per-job coordinator threads.
pub struct Gateway {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Gateway {
    /// Bind and start accepting. `fanout` decides which specs are
    /// sweeps and how their parts merge.
    pub fn start(cfg: GatewayConfig, fanout: Arc<dyn Fanout>) -> std::io::Result<Gateway> {
        let ring = HashRing::new(&cfg.workers, cfg.replicas)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let shared = Arc::new(Shared {
            ring,
            fanout,
            gate: TenantGate::new(cfg.tenant_rate, cfg.tenant_burst),
            jobs: Mutex::new(HashMap::new()),
            metrics: FleetMetrics::default(),
            down: Mutex::new(BTreeSet::new()),
            draining: AtomicBool::new(false),
            active: Mutex::new(0),
        });
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let accept_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("gateway-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn gateway accept thread");
        Ok(Gateway {
            shared,
            local_addr,
            accept: Mutex::new(Some(handle)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The gateway-side counters.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.shared.metrics
    }

    /// Request a drain without a client connection.
    pub fn request_shutdown(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
    }

    /// Block until the gateway drains: the accept thread only exits
    /// once a shutdown was requested *and* every in-flight forward or
    /// fan-out coordinator resolved.
    pub fn join(&self) {
        if let Some(h) = lock(&self.accept).take() {
            let _ = h.join();
        }
    }
}

impl Shared {
    /// Route for `digest`: the ring walk with down nodes demoted to
    /// the tail (still tried as a last resort — a node marked down in
    /// error, or restarted since, can then still serve).
    fn route(&self, digest: &str) -> Vec<String> {
        let ring_order = self.ring.route(digest);
        let down = lock(&self.down);
        let (up, dn): (Vec<&str>, Vec<&str>) = ring_order.iter().partition(|n| !down.contains(**n));
        up.into_iter().chain(dn).map(str::to_string).collect()
    }

    fn mark_down(&self, node: &str) {
        let mut down = lock(&self.down);
        if down.insert(node.to_string()) {
            eprintln!("gateway: worker {node} marked down");
        }
    }

    fn mark_up(&self, node: &str) {
        let mut down = lock(&self.down);
        if down.remove(node) {
            eprintln!("gateway: worker {node} is back");
        }
    }

    fn snapshot(&self) -> Json {
        let m = &self.metrics;
        let jobs = lock(&self.jobs).len() as u64;
        let down = lock(&self.down).len() as u64;
        Json::obj()
            .field("type", "metrics")
            .field("role", "gateway")
            .field("workers", self.ring.nodes().len() as u64)
            .field("down_workers", down)
            .field("jobs", jobs)
            .field("active", *lock(&self.active) as u64)
            .field("forwards", m.forwards.load(Ordering::Relaxed))
            .field("fanouts", m.fanouts.load(Ordering::Relaxed))
            .field("subjobs", m.subjobs.load(Ordering::Relaxed))
            .field("reroutes", m.reroutes.load(Ordering::Relaxed))
            .field(
                "remote_cache_hits",
                m.remote_cache_hits.load(Ordering::Relaxed),
            )
            .field("throttled", m.throttled.load(Ordering::Relaxed))
            .field("completed", m.completed.load(Ordering::Relaxed))
            .field("failed", m.failed.load(Ordering::Relaxed))
            .build()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("gateway-conn".to_string())
                    .spawn(move || {
                        let _ = handle_conn(stream, &shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::Relaxed) && *lock(&shared.active) == 0 {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn send(stream: &mut TcpStream, v: &Json) -> std::io::Result<()> {
    let mut line = v.write();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                send(&mut out, &protocol::resp_error(&e))?;
                continue;
            }
        };
        match req {
            Request::Submit { spec, tenant } => {
                send(&mut out, &submit(shared, spec, &tenant))?;
            }
            Request::Status { id } => {
                let resp = match lock(&shared.jobs).get(&id) {
                    Some(job) => protocol::resp_status(&id, &job.view()),
                    None => protocol::resp_error(&format!("unknown job {id:?}")),
                };
                send(&mut out, &resp)?;
            }
            Request::Result { id, wait } => {
                let job = lock(&shared.jobs).get(&id).cloned();
                let resp = match job {
                    Some(job) => {
                        let view = if wait {
                            job.wait_terminal()
                        } else {
                            job.view()
                        };
                        if view.state.is_terminal() {
                            protocol::resp_result(&id, &view)
                        } else {
                            protocol::resp_pending(&id, &view)
                        }
                    }
                    None => protocol::resp_error(&format!("unknown job {id:?}")),
                };
                send(&mut out, &resp)?;
            }
            Request::Watch { id } => {
                let job = lock(&shared.jobs).get(&id).cloned();
                match job {
                    Some(job) => {
                        let mut seen = 0usize;
                        loop {
                            let (events, view) = job.wait_events(seen);
                            for msg in &events {
                                send(
                                    &mut out,
                                    &protocol::resp_progress(&id, view.done, view.total, msg),
                                )?;
                            }
                            seen += events.len();
                            if view.state.is_terminal() {
                                send(&mut out, &protocol::resp_status(&id, &view))?;
                                break;
                            }
                        }
                    }
                    None => send(
                        &mut out,
                        &protocol::resp_error(&format!("unknown job {id:?}")),
                    )?,
                }
            }
            Request::Cancel { id } => {
                // Best-effort: the flag stops a sweep at its next
                // subjob boundary; an already-forwarded singleton runs
                // to completion on its worker.
                let resp = match lock(&shared.jobs).get(&id) {
                    Some(job) => {
                        job.request_cancel();
                        protocol::resp_cancel(&id, job.view().state)
                    }
                    None => protocol::resp_error(&format!("unknown job {id:?}")),
                };
                send(&mut out, &resp)?;
            }
            Request::Metrics => send(&mut out, &shared.snapshot())?,
            Request::Shutdown => {
                shared.draining.store(true, Ordering::Relaxed);
                send(&mut out, &protocol::resp_shutdown())?;
            }
            Request::Fetch { id } => {
                // The gateway holds no cache of its own; answer from
                // completed job records so peers probing it see hits
                // for anything it merged.
                let payload = lock(&shared.jobs)
                    .get(&id)
                    .map(|j| j.view())
                    .filter(|v| v.state == JobState::Done)
                    .and_then(|v| v.payload);
                send(&mut out, &protocol::resp_fetch(&id, payload.as_deref()))?;
            }
            Request::Steal | Request::Offer { .. } => {
                send(
                    &mut out,
                    &protocol::resp_error("the gateway runs nothing locally; steal from a worker"),
                )?;
            }
        }
    }
    Ok(())
}

/// Admission + dispatch for one submission; returns the response line.
fn submit(shared: &Arc<Shared>, spec: JobSpec, tenant: &str) -> Json {
    if shared.draining.load(Ordering::Relaxed) {
        return protocol::resp_draining();
    }
    if !shared.gate.admit(tenant) {
        shared.metrics.throttled.fetch_add(1, Ordering::Relaxed);
        // The bucket rides the existing overloaded path: depth 0 (the
        // gateway queues nothing), cap = the tenant's burst.
        return protocol::resp_overloaded(0, shared.gate.burst() as usize);
    }
    let id = spec.digest();
    {
        let jobs = lock(&shared.jobs);
        if let Some(existing) = jobs.get(&id) {
            let view = existing.view();
            // Coalesce onto in-flight work; replay a completed record
            // as a (gateway-level) cache hit.
            return protocol::resp_accepted(&id, view.state, view.state == JobState::Done);
        }
    }
    let record = JobRecord::new(spec.clone(), JobState::Queued);
    lock(&shared.jobs).insert(id.clone(), Arc::clone(&record));
    {
        let mut g = lock(&shared.active);
        *g += 1;
    }
    let coordinator = Arc::clone(shared);
    let split = shared.fanout.split(&spec);
    let _ = std::thread::Builder::new()
        .name(format!("gateway-job-{id}"))
        .spawn(move || {
            match split {
                Some(subs) => run_sweep(&coordinator, &record, subs),
                None => run_forward(&coordinator, &record),
            }
            let mut g = lock(&coordinator.active);
            *g -= 1;
        });
    protocol::resp_accepted(&id, JobState::Queued, false)
}

/// How one attempt to run a spec on one worker ended.
enum NodeOutcome {
    /// Terminal on the worker (mirrors the job's state there).
    Terminal(JobState, Option<String>, Option<String>),
    /// The worker rejected the submission (overloaded/draining/error
    /// response) — try the next node, don't mark this one down.
    Rejected(String),
    /// The worker stopped answering — mark it down and re-route.
    NodeLost(String),
}

/// Submit `spec` on `node` and wait for its terminal outcome.
fn run_on_node(shared: &Shared, spec: &JobSpec, node: &str) -> NodeOutcome {
    let mut c = match Client::connect_with_deadline(
        node,
        &RetryPolicy::with_attempts(3),
        Duration::from_secs(5),
    ) {
        Ok(c) => c,
        Err(e) => return NodeOutcome::NodeLost(format!("connect {node}: {e}")),
    };
    let remote_id = match c.submit(spec) {
        Ok(crate::client::SubmitReply::Accepted { id, cached, .. }) => {
            if cached {
                shared
                    .metrics
                    .remote_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
            }
            id
        }
        Ok(crate::client::SubmitReply::Overloaded { depth, cap }) => {
            return NodeOutcome::Rejected(format!("{node} overloaded ({depth}/{cap})"));
        }
        Ok(crate::client::SubmitReply::Draining) => {
            return NodeOutcome::Rejected(format!("{node} draining"));
        }
        Err(e) => return NodeOutcome::Rejected(format!("{node} refused: {e}")),
    };
    shared.mark_up(node);
    match c.wait_result(&remote_id) {
        Ok(res) => NodeOutcome::Terminal(res.state, res.payload, res.error),
        // The connection died mid-wait: that is a node loss, not a job
        // outcome — the spec is re-routed to a survivor.
        Err(e) => NodeOutcome::NodeLost(format!("{node} lost mid-run: {e}")),
    }
}

/// Run `spec` somewhere along `route`, re-routing around dead nodes;
/// `Ok` is the payload.
fn run_routed(
    shared: &Shared,
    record: &Arc<JobRecord>,
    spec: &JobSpec,
    label: &str,
) -> Result<String, (JobState, String)> {
    let mut last_err = "no reachable worker".to_string();
    for (i, node) in shared.route(&spec.digest()).iter().enumerate() {
        if i > 0 {
            shared.metrics.reroutes.fetch_add(1, Ordering::Relaxed);
            let view = record.view();
            record.push_event(
                view.done,
                view.total,
                &format!("re-routing {label} to {node} ({last_err})"),
            );
        }
        match run_on_node(shared, spec, node) {
            NodeOutcome::Terminal(JobState::Done, payload, _) => {
                return Ok(payload.unwrap_or_default());
            }
            NodeOutcome::Terminal(state, _, error) => {
                return Err((
                    state,
                    error.unwrap_or_else(|| format!("{label} ended {}", state.as_str())),
                ));
            }
            NodeOutcome::Rejected(e) => last_err = e,
            NodeOutcome::NodeLost(e) => {
                shared.mark_down(node);
                last_err = e;
            }
        }
    }
    Err((
        JobState::Failed,
        format!("every worker refused {label}: {last_err}"),
    ))
}

/// Publish a terminal state on a gateway job record.
fn finish(shared: &Shared, record: &Arc<JobRecord>, outcome: Result<String, (JobState, String)>) {
    match outcome {
        Ok(payload) => {
            shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
            record.set_state(|v| {
                v.state = JobState::Done;
                v.payload = Some(payload);
            });
        }
        Err((state, error)) => {
            shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            record.set_state(|v| {
                v.state = state;
                v.error = Some(error);
            });
        }
    }
}

/// Coordinator for a singleton job: forward along the route.
fn run_forward(shared: &Arc<Shared>, record: &Arc<JobRecord>) {
    shared.metrics.forwards.fetch_add(1, Ordering::Relaxed);
    record.set_state(|v| v.state = JobState::Running);
    let outcome = run_routed(shared, record, &record.spec, &record.spec.experiment);
    finish(shared, record, outcome);
}

/// Coordinator for a fanned-out sweep: fire every subjob at its owner
/// up front, then collect and merge in canonical order.
fn run_sweep(shared: &Arc<Shared>, record: &Arc<JobRecord>, subs: Vec<SubJob>) {
    shared.metrics.fanouts.fetch_add(1, Ordering::Relaxed);
    record.set_state(|v| v.state = JobState::Running);
    let total = subs.len() as u64;
    record.push_event(0, total, &format!("fan-out into {} subjobs", subs.len()));

    // Fire phase: land every subjob on its owner so the workers chew
    // in parallel (and idle ones start stealing). A submission that
    // cannot land anywhere fails the sweep immediately.
    for sub in &subs {
        shared.metrics.subjobs.fetch_add(1, Ordering::Relaxed);
        shared.metrics.forwards.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = fire_sub(shared, &sub.spec) {
            finish(
                shared,
                record,
                Err((JobState::Failed, format!("subjob {}: {e}", sub.label))),
            );
            return;
        }
    }

    // Collect phase: wait in canonical split order; a node loss
    // re-routes that subjob along its ring walk (where the fire-phase
    // submission's journal/cache on a restarted node, or a thief's
    // cache, make the retry cheap).
    let mut parts: Vec<(String, String)> = Vec::with_capacity(subs.len());
    for (i, sub) in subs.iter().enumerate() {
        if record.is_cancelled() {
            record.set_state(|v| v.state = JobState::Cancelled);
            return;
        }
        match run_routed(shared, record, &sub.spec, &sub.label) {
            Ok(payload) => {
                record.push_event(i as u64 + 1, total, &format!("{} merged", sub.label));
                parts.push((sub.label.clone(), payload));
            }
            Err((state, error)) => {
                finish(
                    shared,
                    record,
                    Err((state, format!("subjob {}: {error}", sub.label))),
                );
                return;
            }
        }
    }
    let merged = shared
        .fanout
        .merge(&record.spec, &parts)
        .map_err(|e| (JobState::Failed, format!("merge failed: {e}")));
    finish(shared, record, merged);
}

/// Land one subjob on the first node along its route that accepts it
/// (without waiting for the result).
fn fire_sub(shared: &Shared, spec: &JobSpec) -> Result<(), String> {
    let mut last_err = "no reachable worker".to_string();
    for node in shared.route(&spec.digest()) {
        let mut c = match Client::connect_with_deadline(
            &node,
            &RetryPolicy::with_attempts(3),
            Duration::from_secs(5),
        ) {
            Ok(c) => c,
            Err(e) => {
                shared.mark_down(&node);
                last_err = format!("connect {node}: {e}");
                continue;
            }
        };
        match c.submit(spec) {
            Ok(crate::client::SubmitReply::Accepted { cached, .. }) => {
                if cached {
                    shared
                        .metrics
                        .remote_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                shared.mark_up(&node);
                return Ok(());
            }
            Ok(crate::client::SubmitReply::Overloaded { depth, cap }) => {
                last_err = format!("{node} overloaded ({depth}/{cap})");
            }
            Ok(crate::client::SubmitReply::Draining) => {
                last_err = format!("{node} draining");
            }
            Err(e) => {
                last_err = format!("{node} refused: {e}");
            }
        }
    }
    Err(last_err)
}
