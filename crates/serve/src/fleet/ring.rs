//! Consistent-hash ring over worker addresses.
//!
//! Each worker contributes `replicas` virtual points,
//! `fnv1a64("{addr}#{i}")`, on a `u64` ring; a job's digest hashes to
//! a point and is owned by the first virtual point at or clockwise
//! after it. Two properties the fleet leans on:
//!
//! - **Cache sharding for free.** The job id is the spec's content
//!   digest, so "which node owns this digest" is also "which node's
//!   cache has (or will have) this payload". Any gateway instance
//!   computes the same owner with no coordination.
//! - **Deterministic fallback order.** [`HashRing::route`] walks the
//!   ring clockwise from the digest's point and returns every distinct
//!   node in encounter order. That order is a pure function of the
//!   digest and the member list — it is the re-route order after a
//!   node death *and* the victim order for steal probes, both "seeded
//!   by digest" in the sense that different digests spread their
//!   fallback load across different survivors.
//!
//! Virtual points keep the shards balanced: with one point per node, a
//! 2-node ring can degenerate to a 90/10 split; with the default 64,
//! imbalance stays within a few percent.

use crate::job::fnv1a64;
use std::collections::BTreeMap;

/// Default virtual points per node.
pub const DEFAULT_REPLICAS: usize = 64;

/// Ring point for a byte string: FNV-1a, then a 64-bit avalanche
/// finalizer (the `splitmix64` mixing function). FNV alone clusters
/// badly on near-identical inputs — `"127.0.0.1:9201#0"` and
/// `"127.0.0.1:9202#0"` differ in two characters and land close
/// together, which skews a 2-node ring as far as 85/15. The finalizer
/// flips about half the output bits per input bit, restoring the
/// uniformity consistent hashing's balance argument needs.
fn ring_point(bytes: &[u8]) -> u64 {
    let mut z = fnv1a64(bytes);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over worker addresses.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Virtual point → index into `nodes`.
    points: BTreeMap<u64, usize>,
    nodes: Vec<String>,
}

impl HashRing {
    /// Build a ring with `replicas` virtual points per node. Node
    /// order in `nodes` does not affect ownership (only the hashed
    /// addresses do), but duplicates are rejected: a node listed twice
    /// would silently double its shard weight.
    pub fn new(nodes: &[String], replicas: usize) -> Result<HashRing, String> {
        if nodes.is_empty() {
            return Err("a hash ring needs at least one node".to_string());
        }
        let mut ring = HashRing {
            points: BTreeMap::new(),
            nodes: nodes.to_vec(),
        };
        for (idx, node) in nodes.iter().enumerate() {
            if nodes[..idx].contains(node) {
                return Err(format!("duplicate fleet node {node:?}"));
            }
            for i in 0..replicas.max(1) {
                let point = ring_point(format!("{node}#{i}").as_bytes());
                // A 64-bit collision between virtual points is
                // vanishingly unlikely; first writer wins keeps the
                // ring deterministic regardless.
                ring.points.entry(point).or_insert(idx);
            }
        }
        Ok(ring)
    }

    /// The member list, in construction order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The node owning `digest`: the first virtual point clockwise
    /// from the digest's hash point.
    pub fn owner(&self, digest: &str) -> &str {
        let point = ring_point(digest.as_bytes());
        let idx = self
            .points
            .range(point..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, idx)| *idx)
            .unwrap_or(0);
        &self.nodes[idx]
    }

    /// Every node in clockwise ring order starting at `digest`'s
    /// owner: `route(d)[0] == owner(d)`, and the tail is the
    /// deterministic fallback order for re-routing when the owner is
    /// down.
    pub fn route(&self, digest: &str) -> Vec<&str> {
        let point = ring_point(digest.as_bytes());
        let mut out: Vec<&str> = Vec::with_capacity(self.nodes.len());
        let walk = self.points.range(point..).chain(self.points.range(..point));
        for (_, idx) in walk {
            let node = self.nodes[*idx].as_str();
            if !out.contains(&node) {
                out.push(node);
                if out.len() == self.nodes.len() {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(nodes: &[&str]) -> HashRing {
        let nodes: Vec<String> = nodes.iter().map(|s| s.to_string()).collect();
        HashRing::new(&nodes, DEFAULT_REPLICAS).unwrap()
    }

    fn digests() -> Vec<String> {
        (0..200)
            .map(|i| format!("{:016x}", fnv1a64(format!("job-{i}").as_bytes())))
            .collect()
    }

    #[test]
    fn ownership_is_deterministic_and_order_independent() {
        let a = ring(&["127.0.0.1:9201", "127.0.0.1:9202", "127.0.0.1:9203"]);
        let b = ring(&["127.0.0.1:9203", "127.0.0.1:9201", "127.0.0.1:9202"]);
        for d in digests() {
            assert_eq!(a.owner(&d), b.owner(&d));
            assert_eq!(a.route(&d), b.route(&d));
        }
    }

    #[test]
    fn route_starts_at_the_owner_and_covers_every_node_once() {
        let r = ring(&["n1", "n2", "n3", "n4"]);
        for d in digests() {
            let route = r.route(&d);
            assert_eq!(route[0], r.owner(&d));
            assert_eq!(route.len(), 4);
            let mut sorted = route.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "route {route:?} repeats a node");
        }
    }

    #[test]
    fn virtual_points_spread_load_across_both_nodes() {
        let r = ring(&["127.0.0.1:9201", "127.0.0.1:9202"]);
        let mut counts = std::collections::HashMap::new();
        for d in digests() {
            *counts.entry(r.owner(&d).to_string()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 2, "one node owns everything: {counts:?}");
        for (node, n) in &counts {
            assert!(*n >= 40, "{node} owns only {n}/200 digests");
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_own_keys() {
        let full = ring(&["n1", "n2", "n3"]);
        let without_n3 = ring(&["n1", "n2"]);
        for d in digests() {
            let before = full.owner(&d);
            let after = without_n3.owner(&d);
            if before != "n3" {
                assert_eq!(
                    before, after,
                    "digest {d} moved although its owner survived"
                );
            }
        }
    }

    #[test]
    fn fallback_order_is_the_ring_walk() {
        // The second route entry is where a re-route lands: it must be
        // the owner the 2-node ring picks once the first is gone.
        let full = ring(&["n1", "n2", "n3"]);
        for d in digests() {
            let route = full.route(&d);
            let survivors: Vec<String> = ["n1", "n2", "n3"]
                .iter()
                .filter(|n| **n != route[0])
                .map(|n| n.to_string())
                .collect();
            let reduced = HashRing::new(&survivors, DEFAULT_REPLICAS).unwrap();
            assert_eq!(reduced.owner(&d), route[1]);
        }
    }

    #[test]
    fn empty_and_duplicate_member_lists_are_rejected() {
        assert!(HashRing::new(&[], 8).is_err());
        assert!(HashRing::new(&["a".to_string(), "a".to_string()], 8).is_err());
    }
}
