//! The fleet tier: consistent-hash sharding, sweep fan-out, and
//! inter-node work stealing across multiple serve daemons.
//!
//! A fleet is N ordinary serve daemons (the *workers*) plus one
//! [`Gateway`](gateway::Gateway) front tier. The gateway speaks the
//! same newline-delimited JSON protocol as a single daemon, so every
//! existing client (`mosaic-client`, `reproduce_all --via-server`)
//! works against it unchanged — `--via-fleet` is `--via-server`
//! pointed at the gateway.
//!
//! Four pieces, each its own module:
//!
//! - [`ring`] — the consistent-hash ring mapping a [`JobSpec`] digest
//!   to its owning worker, plus the deterministic fallback order used
//!   for re-routing around dead nodes. Because the job id *is* the
//!   content digest, sharding by ring position shards the
//!   content-addressed cache with zero coordination.
//! - [`bucket`] — per-tenant token-bucket admission at the gateway,
//!   layered on the existing `overloaded` response path.
//! - [`gateway`] — the front tier itself: forwards singleton jobs to
//!   their owning shard, splits sweeps into per-workload subjobs via a
//!   caller-provided [`Fanout`](gateway::Fanout), collects the parts
//!   in canonical order, and merges them byte-identically to a
//!   single-node run.
//! - [`steal`] — the worker-side stealer thread and the peer-cache
//!   lookup: an idle daemon pulls queued jobs from loaded peers over
//!   the `steal`/`offer` verbs, and consults peer caches (`fetch`)
//!   before re-executing a job some other shard already paid for.
//!
//! [`JobSpec`]: crate::job::JobSpec

pub mod bucket;
pub mod gateway;
pub mod ring;
pub mod steal;
