//! Content-addressed result cache.
//!
//! Keyed by [`JobSpec::digest`]: because every simulation is fully
//! deterministic (same spec ⇒ byte-identical numbers, a property the
//! golden-number suite already tests), a completed payload can be
//! returned for any later submission of the same spec with no
//! invalidation logic at all. Two tiers: an in-memory map for the
//! hot path, and an on-disk store (`<dir>/<digest>.json`) that
//! survives server restarts. Hit/miss counters feed the `metrics`
//! snapshot.

use crate::job::JobSpec;
use jsonlite::Json;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sync::lock;

/// Two-tier (memory + disk) cache of completed job payloads.
pub struct ResultCache {
    dir: Option<PathBuf>,
    map: Mutex<HashMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache persisting under `dir` (`None` = memory-only, used by
    /// tests). The directory is created eagerly so a misconfigured
    /// path fails at startup, not on the first completed job.
    ///
    /// Stray `*.tmp-<pid>` files — the half-written residue of a
    /// daemon killed between its temp write and its rename — are
    /// garbage-collected here. They were never reachable as cache
    /// entries (lookups only read `<digest>.json`), so this is purely
    /// reclaiming disk; best-effort by design.
    pub fn new(dir: Option<PathBuf>) -> std::io::Result<ResultCache> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
            if let Ok(entries) = std::fs::read_dir(d) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    if name.to_string_lossy().contains(".tmp-") {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(ResultCache {
            dir,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn disk_path(&self, digest: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{digest}.json")))
    }

    /// Look up a payload by digest, counting a hit or a miss.
    ///
    /// Misses in memory fall through to disk; a disk hit is promoted
    /// into the map so subsequent lookups stay off the filesystem.
    pub fn lookup(&self, digest: &str) -> Option<String> {
        if let Some(p) = lock(&self.map).get(digest).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(p);
        }
        if let Some(path) = self.disk_path(digest) {
            if let Some(payload) = read_entry(&path, digest) {
                lock(&self.map).insert(digest.to_string(), payload.clone());
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(payload);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a completed payload under `digest`, writing the disk
    /// entry (spec included, so cache files are self-describing) and
    /// the in-memory map. Disk write failures are reported but do not
    /// fail the job — the cache is an accelerator, not a ledger.
    ///
    /// The disk write is crash-safe: the entry is written to a
    /// temporary file in the same directory and `rename`d into place,
    /// so a daemon killed mid-write can never leave a torn
    /// `<digest>.json` (the corrupt-is-a-miss fallback in
    /// `read_entry` stays as defense in depth).
    pub fn insert(&self, digest: &str, spec: &JobSpec, payload: &str) {
        lock(&self.map).insert(digest.to_string(), payload.to_string());
        if let Some(path) = self.disk_path(digest) {
            let entry = Json::obj()
                .field("digest", digest)
                .field("spec", spec.to_json())
                .field("payload", payload)
                .build();
            let mut text = entry.write();
            text.push('\n');
            // Same directory as the final path so the rename cannot
            // cross a filesystem boundary; pid-qualified so concurrent
            // daemons sharing a cache directory don't collide.
            let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
            let result = std::fs::write(&tmp, text).and_then(|()| {
                std::fs::rename(&tmp, &path).inspect_err(|_| {
                    let _ = std::fs::remove_file(&tmp);
                })
            });
            if let Err(e) = result {
                eprintln!("serve: cache write {} failed: {e}", path.display());
            }
        }
    }

    /// Like [`lookup`](Self::lookup) but without touching the hit/miss
    /// counters: peer `fetch` probes from the rest of the fleet are
    /// not this daemon's workload, so they must not distort the
    /// admission-facing cache statistics.
    pub fn peek(&self, digest: &str) -> Option<String> {
        if let Some(p) = lock(&self.map).get(digest).cloned() {
            return Some(p);
        }
        if let Some(path) = self.disk_path(digest) {
            if let Some(payload) = read_entry(&path, digest) {
                lock(&self.map).insert(digest.to_string(), payload.clone());
                return Some(payload);
            }
        }
        None
    }

    /// Lookups that found a payload.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Read and validate one on-disk entry; `None` on any mismatch (a
/// corrupt file behaves as a miss and is overwritten on completion).
fn read_entry(path: &Path, digest: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = Json::parse(&text).ok()?;
    let obj = v.as_object("cache entry").ok()?;
    let stored = obj.get("digest", "cache entry").ok()?.as_string().ok()?;
    if stored != digest {
        return None;
    }
    obj.get("payload", "cache entry").ok()?.as_string().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mosaic-serve-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn memory_only_hits_and_misses() {
        let c = ResultCache::new(None).unwrap();
        let spec = JobSpec::new("table1", "tiny");
        let d = spec.digest();
        assert_eq!(c.lookup(&d), None);
        c.insert(&d, &spec, "{\"cells\":[]}");
        assert_eq!(c.lookup(&d).as_deref(), Some("{\"cells\":[]}"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn disk_entries_survive_a_new_cache_instance() {
        let dir = tmp_dir("persist");
        let spec = JobSpec::new("fig10_dynamic", "tiny");
        let d = spec.digest();
        {
            let c = ResultCache::new(Some(dir.clone())).unwrap();
            c.insert(&d, &spec, "payload-text");
        }
        let c2 = ResultCache::new(Some(dir.clone())).unwrap();
        assert_eq!(c2.lookup(&d).as_deref(), Some("payload-text"));
        assert_eq!(c2.hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_collected_and_never_served() {
        let dir = tmp_dir("straytmp");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = JobSpec::new("table1", "tiny");
        let d = spec.digest();
        // The residue of a daemon killed mid-insert: a half-written
        // temp entry that never got renamed into place.
        let stray = dir.join(format!("{d}.tmp-99999"));
        std::fs::write(&stray, "{\"digest\":\"torn").unwrap();
        let c = ResultCache::new(Some(dir.clone())).unwrap();
        assert_eq!(c.lookup(&d), None, "a temp file must never be served");
        assert!(!stray.exists(), "startup must GC the stray temp file");
        // A real insert over the same digest works normally afterwards.
        c.insert(&d, &spec, "good-payload");
        let c2 = ResultCache::new(Some(dir.clone())).unwrap();
        assert_eq!(c2.lookup(&d).as_deref(), Some("good-payload"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = JobSpec::new("table1", "tiny");
        let d = spec.digest();
        std::fs::write(dir.join(format!("{d}.json")), "not json").unwrap();
        let c = ResultCache::new(Some(dir.clone())).unwrap();
        assert_eq!(c.lookup(&d), None);
        assert_eq!(c.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
