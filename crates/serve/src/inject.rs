//! Host-side fault injection: an [`Executor`] decorator that makes the
//! inner executor panic, stall, or kill the whole process on purpose.
//!
//! This is the serve-stack half of the chaos story (the simulator half
//! lives in `mosaic-chaos` / `mosaic-sim`): wrap the real executor in a
//! [`FaultyExecutor`] and the scheduler's isolation machinery —
//! per-job `catch_unwind`, per-attempt timeouts, bounded
//! retry-with-backoff — gets exercised by *deterministic* failures
//! instead of waiting for rare real ones. Panics are injected on the
//! first `panic_attempts` attempts of **each distinct job id**, so a
//! retry policy with more attempts than that always recovers, and one
//! with fewer always surfaces `Failed` — both outcomes are asserted by
//! tests and the CI chaos smoke.
//!
//! The knobs mirror `mosaic_chaos::HostFaultPlan` but are plain fields
//! here: `mosaic-serve` stays chaos-free so the dependency arrow keeps
//! pointing from the harness into the service, never back.

use crate::job::JobSpec;
use crate::scheduler::Executor;
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::sync::lock;

/// Executor decorator injecting panics, slowness, and whole-process
/// kills ahead of the inner executor.
pub struct FaultyExecutor {
    inner: Arc<dyn Executor>,
    /// Panic this many leading attempts of each distinct job id.
    panic_attempts: u32,
    /// Sleep this long (in small cancellable slices) before every
    /// attempt that is allowed to proceed.
    slow: Duration,
    /// Abort the whole process this long after the first attempt
    /// begins (`None` = never). See [`FaultyExecutor::kill_after`].
    kill_after: Option<Duration>,
    /// Whether the kill timer has been armed (first `run` call wins).
    kill_armed: AtomicBool,
    attempts: Mutex<HashMap<String, u32>>,
}

impl FaultyExecutor {
    /// Wrap `inner`: panic on the first `panic_attempts` attempts per
    /// job id, then delay surviving attempts by `slow`.
    pub fn new(inner: Arc<dyn Executor>, panic_attempts: u32, slow: Duration) -> FaultyExecutor {
        FaultyExecutor {
            inner,
            panic_attempts,
            slow,
            kill_after: None,
            kill_armed: AtomicBool::new(false),
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Arm a process-kill fault: `delay` after the **first** attempt
    /// begins, a detached timer thread calls [`std::process::abort`] —
    /// the closest pure-std stand-in for an external `kill -9`. No
    /// destructors, no `catch_unwind`, no drain: whatever the journal
    /// and cache have already fsynced is all the next process gets.
    ///
    /// Anchored to the first attempt (not process start) so the killed
    /// job is guaranteed to be past its `started` journal record —
    /// the recovery harness then asserts `worker_deaths > 0` on
    /// restart rather than racing daemon startup.
    pub fn kill_after(mut self, delay: Duration) -> FaultyExecutor {
        self.kill_after = (!delay.is_zero()).then_some(delay);
        self
    }

    /// Attempts seen so far for `id` (test/metrics introspection).
    pub fn attempts_for(&self, id: &str) -> u32 {
        lock(&self.attempts).get(id).copied().unwrap_or(0)
    }

    fn arm_kill_timer(&self) {
        let Some(delay) = self.kill_after else {
            return;
        };
        if self
            .kill_armed
            .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            return;
        }
        eprintln!(
            "chaos: kill timer armed: aborting the process in {} ms",
            delay.as_millis()
        );
        let _ = std::thread::Builder::new()
            .name("chaos-kill".to_string())
            .spawn(move || {
                std::thread::sleep(delay);
                eprintln!("chaos: injected process kill (abort)");
                std::process::abort();
            });
    }
}

impl Executor for FaultyExecutor {
    fn run(
        &self,
        spec: &JobSpec,
        progress: &dyn Fn(u64, u64, &str),
        cancelled: &AtomicBool,
    ) -> Result<String, String> {
        self.arm_kill_timer();
        let id = spec.digest();
        let attempt = {
            let mut g = lock(&self.attempts);
            let n = g.entry(id).or_insert(0);
            *n += 1;
            *n
        };
        if attempt <= self.panic_attempts {
            progress(0, 0, &format!("chaos: injected panic on attempt {attempt}"));
            panic!(
                "chaos: injected host fault (attempt {attempt} of {})",
                self.panic_attempts
            );
        }
        if !self.slow.is_zero() {
            progress(0, 0, "chaos: injected slowness");
            // Sleep in slices so cancellation/timeout reclaims the
            // thread promptly instead of after the full stall.
            let mut left = self.slow;
            let slice = Duration::from_millis(20);
            while !left.is_zero() {
                if cancelled.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err("cancelled during injected slowness".to_string());
                }
                let step = left.min(slice);
                std::thread::sleep(step);
                left -= step;
            }
        }
        self.inner.run(spec, progress, cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::job::JobState;
    use crate::scheduler::{RetryPolicy, SchedConfig, Scheduler, Submit};
    use std::sync::atomic::Ordering;

    struct Echo;
    impl Executor for Echo {
        fn run(
            &self,
            spec: &JobSpec,
            _progress: &dyn Fn(u64, u64, &str),
            _cancelled: &AtomicBool,
        ) -> Result<String, String> {
            Ok(format!("{{\"experiment\":\"{}\"}}", spec.experiment))
        }
    }

    fn sched_with(panics: u32, attempts: u32) -> Arc<Scheduler> {
        let cfg = SchedConfig {
            retry: RetryPolicy {
                max_attempts: attempts,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            },
            ..SchedConfig::default()
        };
        let faulty = FaultyExecutor::new(Arc::new(Echo), panics, Duration::ZERO);
        Scheduler::start(cfg, ResultCache::new(None).unwrap(), Arc::new(faulty))
    }

    #[test]
    fn injected_panics_recover_within_the_retry_budget() {
        let sched = sched_with(2, 3);
        let Submit::Enqueued(job) = sched.submit(JobSpec::new("table1", "tiny")) else {
            panic!("expected enqueue");
        };
        let view = job.wait_terminal();
        assert_eq!(view.state, JobState::Done);
        assert_eq!(view.payload.as_deref(), Some("{\"experiment\":\"table1\"}"));
        assert_eq!(sched.metrics.retries.load(Ordering::Relaxed), 2);
        assert_eq!(sched.metrics.completed.load(Ordering::Relaxed), 1);
        assert_eq!(sched.metrics.failed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn injected_panics_beyond_the_budget_fail_cleanly() {
        let sched = sched_with(3, 2);
        let Submit::Enqueued(job) = sched.submit(JobSpec::new("table1", "tiny")) else {
            panic!("expected enqueue");
        };
        let view = job.wait_terminal();
        assert_eq!(view.state, JobState::Failed);
        let err = view.error.unwrap();
        assert!(
            err.contains("injected host fault"),
            "unexpected error: {err}"
        );
        assert_eq!(sched.metrics.retries.load(Ordering::Relaxed), 1);
        assert_eq!(sched.metrics.failed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn slowness_is_survivable_and_cancellable() {
        let faulty = FaultyExecutor::new(Arc::new(Echo), 0, Duration::from_millis(30));
        let spec = JobSpec::new("table1", "tiny");
        let flag = AtomicBool::new(false);
        let out = faulty.run(&spec, &|_, _, _| {}, &flag).unwrap();
        assert!(out.contains("table1"));

        let flag = AtomicBool::new(true);
        let err = faulty.run(&spec, &|_, _, _| {}, &flag).unwrap_err();
        assert!(err.contains("cancelled"), "unexpected error: {err}");
    }

    #[test]
    fn zero_kill_delay_disarms_the_timer() {
        // `kill=0` is the documented "never" spelling; the builder must
        // not arm a timer that aborts the test process immediately.
        let faulty =
            FaultyExecutor::new(Arc::new(Echo), 0, Duration::ZERO).kill_after(Duration::ZERO);
        assert!(faulty.kill_after.is_none());
        let flag = AtomicBool::new(false);
        let out = faulty
            .run(&JobSpec::new("table1", "tiny"), &|_, _, _| {}, &flag)
            .unwrap();
        assert!(out.contains("table1"));
        assert!(
            !faulty.kill_armed.load(Ordering::Relaxed),
            "no delay means nothing to arm"
        );
    }

    #[test]
    fn attempt_counts_are_per_job_id() {
        let faulty = FaultyExecutor::new(Arc::new(Echo), 0, Duration::ZERO);
        let a = JobSpec::new("table1", "tiny");
        let b = JobSpec::new("table1", "small");
        let flag = AtomicBool::new(false);
        faulty.run(&a, &|_, _, _| {}, &flag).unwrap();
        faulty.run(&a, &|_, _, _| {}, &flag).unwrap();
        faulty.run(&b, &|_, _, _| {}, &flag).unwrap();
        assert_eq!(faulty.attempts_for(&a.digest()), 2);
        assert_eq!(faulty.attempts_for(&b.digest()), 1);
        assert_eq!(faulty.attempts_for("unknown"), 0);
    }
}
