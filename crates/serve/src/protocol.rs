//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; each response is one
//! (or, for `watch` and `result --wait`, several) JSON object line(s).
//! Every response object carries a `"type"` discriminator. The
//! grammar is the [`jsonlite`] subset, so the protocol shares its one
//! serializer (and escaping bug surface) with the golden-number files.

use crate::job::{JobSpec, JobState};
use crate::scheduler::JobView;
use jsonlite::Json;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job spec; response: `accepted` / `overloaded` /
    /// `draining`.
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Tenant label for the gateway's token-bucket admission;
        /// empty = the shared anonymous bucket. Workers ignore it (it
        /// is admission metadata, not part of the job), and it is
        /// omitted from the wire form when empty so pre-fleet daemons
        /// parse new clients' submissions unchanged.
        tenant: String,
    },
    /// Query one job's state and progress counters.
    Status {
        /// Job id (spec digest).
        id: String,
    },
    /// Fetch a job's result; with `wait`, block until terminal.
    Result {
        /// Job id (spec digest).
        id: String,
        /// Block until the job is terminal instead of answering
        /// `pending`.
        wait: bool,
    },
    /// Stream progress events until the job is terminal.
    Watch {
        /// Job id (spec digest).
        id: String,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id (spec digest).
        id: String,
    },
    /// Fetch the live metrics snapshot.
    Metrics,
    /// Drain and stop the server (in-flight jobs complete).
    Shutdown,
    /// Fleet: ask this daemon to donate one queued job. Response:
    /// `stolen` (id + spec) or `no_work`. The connection then *is* the
    /// lease — the victim keeps the job marked running and expects an
    /// `offer` for it on the same connection; EOF before the offer
    /// requeues the job locally.
    Steal,
    /// Fleet: deliver the outcome of a previously stolen job back to
    /// its victim on the steal connection. Response: `offered`.
    Offer {
        /// Job id (spec digest) named by the `stolen` response.
        id: String,
        /// The thief's outcome: payload on success, error otherwise.
        payload: Result<String, String>,
    },
    /// Fleet: cache-only lookup — answer from the result cache without
    /// executing anything. Response: `cache` with `hit` true/false.
    /// Peers use it to resolve cross-node cache hits before paying for
    /// a re-execution.
    Fetch {
        /// Job id (spec digest).
        id: String,
    },
}

impl Request {
    /// Decode one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let obj = v.as_object("request")?;
        let ty = obj.get("type", "request")?.as_string()?;
        let id = |field: &str| -> Result<String, String> { obj.get(field, "request")?.as_string() };
        Ok(match ty.as_str() {
            "submit" => Request::Submit {
                spec: JobSpec::from_json(obj.get("spec", "submit")?)?,
                tenant: match obj.opt("tenant") {
                    Some(t) => t.as_string()?,
                    None => String::new(),
                },
            },
            "status" => Request::Status { id: id("id")? },
            "result" => Request::Result {
                id: id("id")?,
                wait: match obj.opt("wait") {
                    Some(w) => w.as_bool()?,
                    None => false,
                },
            },
            "watch" => Request::Watch { id: id("id")? },
            "cancel" => Request::Cancel { id: id("id")? },
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            "steal" => Request::Steal,
            "offer" => Request::Offer {
                id: id("id")?,
                payload: if obj.get("ok", "offer")?.as_bool()? {
                    Ok(obj.get("payload", "offer")?.as_string()?)
                } else {
                    Err(obj.get("error", "offer")?.as_string()?)
                },
            },
            "fetch" => Request::Fetch { id: id("id")? },
            other => return Err(format!("unknown request type {other:?}")),
        })
    }

    /// Encode for the wire (client side).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit { spec, tenant } => {
                let mut b = Json::obj()
                    .field("type", "submit")
                    .field("spec", spec.to_json());
                if !tenant.is_empty() {
                    b = b.field("tenant", tenant.as_str());
                }
                b.build()
            }
            Request::Status { id } => Json::obj()
                .field("type", "status")
                .field("id", id.as_str())
                .build(),
            Request::Result { id, wait } => Json::obj()
                .field("type", "result")
                .field("id", id.as_str())
                .field("wait", *wait)
                .build(),
            Request::Watch { id } => Json::obj()
                .field("type", "watch")
                .field("id", id.as_str())
                .build(),
            Request::Cancel { id } => Json::obj()
                .field("type", "cancel")
                .field("id", id.as_str())
                .build(),
            Request::Metrics => Json::obj().field("type", "metrics").build(),
            Request::Shutdown => Json::obj().field("type", "shutdown").build(),
            Request::Steal => Json::obj().field("type", "steal").build(),
            Request::Offer { id, payload } => {
                let mut b = Json::obj()
                    .field("type", "offer")
                    .field("id", id.as_str())
                    .field("ok", payload.is_ok());
                match payload {
                    Ok(p) => b = b.field("payload", p.as_str()),
                    Err(e) => b = b.field("error", e.as_str()),
                }
                b.build()
            }
            Request::Fetch { id } => Json::obj()
                .field("type", "fetch")
                .field("id", id.as_str())
                .build(),
        }
    }
}

/// `accepted`: the submission's id and how it will be served.
pub fn resp_accepted(id: &str, state: JobState, cached: bool) -> Json {
    Json::obj()
        .field("type", "accepted")
        .field("id", id)
        .field("state", state.as_str())
        .field("cached", cached)
        .build()
}

/// `overloaded`: admission control rejected the submission.
pub fn resp_overloaded(depth: usize, cap: usize) -> Json {
    Json::obj()
        .field("type", "overloaded")
        .field("queue_depth", depth as u64)
        .field("queue_cap", cap as u64)
        .build()
}

/// `draining`: the server is shutting down and rejects new work.
pub fn resp_draining() -> Json {
    Json::obj().field("type", "draining").build()
}

/// `status`: a job's state and progress counters.
pub fn resp_status(id: &str, view: &JobView) -> Json {
    Json::obj()
        .field("type", "status")
        .field("id", id)
        .field("state", view.state.as_str())
        .field("done", view.done)
        .field("total", view.total)
        .build()
}

/// `result`: terminal state plus payload or error.
pub fn resp_result(id: &str, view: &JobView) -> Json {
    let mut b = Json::obj()
        .field("type", "result")
        .field("id", id)
        .field("state", view.state.as_str());
    if let Some(p) = &view.payload {
        b = b.field("payload", p.as_str());
    }
    if let Some(e) = &view.error {
        b = b.field("error", e.as_str());
    }
    b.build()
}

/// `pending`: `result` without `wait` on a job still in flight.
pub fn resp_pending(id: &str, view: &JobView) -> Json {
    Json::obj()
        .field("type", "pending")
        .field("id", id)
        .field("state", view.state.as_str())
        .build()
}

/// `progress`: one streamed `watch` event.
pub fn resp_progress(id: &str, done: u64, total: u64, message: &str) -> Json {
    Json::obj()
        .field("type", "progress")
        .field("id", id)
        .field("done", done)
        .field("total", total)
        .field("message", message)
        .build()
}

/// `cancelled`: outcome of a cancel request.
pub fn resp_cancel(id: &str, state: JobState) -> Json {
    Json::obj()
        .field("type", "cancel")
        .field("id", id)
        .field("state", state.as_str())
        .build()
}

/// `shutdown`: drain acknowledged.
pub fn resp_shutdown() -> Json {
    Json::obj()
        .field("type", "shutdown")
        .field("draining", true)
        .build()
}

/// `stolen`: this daemon donates one queued job to the caller.
pub fn resp_stolen(id: &str, spec: &JobSpec) -> Json {
    Json::obj()
        .field("type", "stolen")
        .field("id", id)
        .field("spec", spec.to_json())
        .build()
}

/// `no_work`: a steal probe found nothing queued to donate.
pub fn resp_no_work() -> Json {
    Json::obj().field("type", "no_work").build()
}

/// `offered`: a stolen job's outcome was delivered home; `state` is
/// the job's terminal state as recorded by the victim.
pub fn resp_offered(id: &str, state: JobState) -> Json {
    Json::obj()
        .field("type", "offered")
        .field("id", id)
        .field("state", state.as_str())
        .build()
}

/// `cache`: a cache-only `fetch` answer (payload present iff `hit`).
pub fn resp_fetch(id: &str, payload: Option<&str>) -> Json {
    let mut b = Json::obj()
        .field("type", "cache")
        .field("id", id)
        .field("hit", payload.is_some());
    if let Some(p) = payload {
        b = b.field("payload", p);
    }
    b.build()
}

/// `error`: the request could not be served (unknown id, parse
/// failure, ...).
pub fn resp_error(message: &str) -> Json {
    Json::obj()
        .field("type", "error")
        .field("message", message)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let reqs = [
            Request::Submit {
                spec: JobSpec::new("table1", "tiny"),
                tenant: String::new(),
            },
            Request::Submit {
                spec: JobSpec::new("table1", "tiny"),
                tenant: "acme".into(),
            },
            Request::Status { id: "ab12".into() },
            Request::Result {
                id: "ab12".into(),
                wait: true,
            },
            Request::Watch { id: "ab12".into() },
            Request::Cancel { id: "ab12".into() },
            Request::Metrics,
            Request::Shutdown,
            Request::Steal,
            Request::Offer {
                id: "ab12".into(),
                payload: Ok("{\"cells\":[]}".into()),
            },
            Request::Offer {
                id: "ab12".into(),
                payload: Err("thief choked".into()),
            },
            Request::Fetch { id: "ab12".into() },
        ];
        for r in reqs {
            let line = r.to_json().write();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn result_without_wait_defaults_to_false() {
        let r = Request::parse("{\"type\":\"result\",\"id\":\"x\"}").unwrap();
        assert_eq!(
            r,
            Request::Result {
                id: "x".into(),
                wait: false
            }
        );
    }

    #[test]
    fn unknown_request_types_are_rejected() {
        assert!(Request::parse("{\"type\":\"frobnicate\"}").is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn submit_without_tenant_is_the_anonymous_tenant() {
        // The pre-fleet wire form (no tenant key) must keep parsing.
        let spec = JobSpec::new("table1", "tiny");
        let line = Json::obj()
            .field("type", "submit")
            .field("spec", spec.to_json())
            .build()
            .write();
        assert_eq!(
            Request::parse(&line).unwrap(),
            Request::Submit {
                spec,
                tenant: String::new()
            }
        );
    }
}
