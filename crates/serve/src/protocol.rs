//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; each response is one
//! (or, for `watch` and `result --wait`, several) JSON object line(s).
//! Every response object carries a `"type"` discriminator. The
//! grammar is the [`jsonlite`] subset, so the protocol shares its one
//! serializer (and escaping bug surface) with the golden-number files.

use crate::job::{JobSpec, JobState};
use crate::scheduler::JobView;
use jsonlite::Json;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job spec; response: `accepted` / `overloaded` /
    /// `draining`.
    Submit(JobSpec),
    /// Query one job's state and progress counters.
    Status {
        /// Job id (spec digest).
        id: String,
    },
    /// Fetch a job's result; with `wait`, block until terminal.
    Result {
        /// Job id (spec digest).
        id: String,
        /// Block until the job is terminal instead of answering
        /// `pending`.
        wait: bool,
    },
    /// Stream progress events until the job is terminal.
    Watch {
        /// Job id (spec digest).
        id: String,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id (spec digest).
        id: String,
    },
    /// Fetch the live metrics snapshot.
    Metrics,
    /// Drain and stop the server (in-flight jobs complete).
    Shutdown,
}

impl Request {
    /// Decode one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let obj = v.as_object("request")?;
        let ty = obj.get("type", "request")?.as_string()?;
        let id = |field: &str| -> Result<String, String> { obj.get(field, "request")?.as_string() };
        Ok(match ty.as_str() {
            "submit" => Request::Submit(JobSpec::from_json(obj.get("spec", "submit")?)?),
            "status" => Request::Status { id: id("id")? },
            "result" => Request::Result {
                id: id("id")?,
                wait: match obj.opt("wait") {
                    Some(w) => w.as_bool()?,
                    None => false,
                },
            },
            "watch" => Request::Watch { id: id("id")? },
            "cancel" => Request::Cancel { id: id("id")? },
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request type {other:?}")),
        })
    }

    /// Encode for the wire (client side).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit(spec) => Json::obj()
                .field("type", "submit")
                .field("spec", spec.to_json())
                .build(),
            Request::Status { id } => Json::obj()
                .field("type", "status")
                .field("id", id.as_str())
                .build(),
            Request::Result { id, wait } => Json::obj()
                .field("type", "result")
                .field("id", id.as_str())
                .field("wait", *wait)
                .build(),
            Request::Watch { id } => Json::obj()
                .field("type", "watch")
                .field("id", id.as_str())
                .build(),
            Request::Cancel { id } => Json::obj()
                .field("type", "cancel")
                .field("id", id.as_str())
                .build(),
            Request::Metrics => Json::obj().field("type", "metrics").build(),
            Request::Shutdown => Json::obj().field("type", "shutdown").build(),
        }
    }
}

/// `accepted`: the submission's id and how it will be served.
pub fn resp_accepted(id: &str, state: JobState, cached: bool) -> Json {
    Json::obj()
        .field("type", "accepted")
        .field("id", id)
        .field("state", state.as_str())
        .field("cached", cached)
        .build()
}

/// `overloaded`: admission control rejected the submission.
pub fn resp_overloaded(depth: usize, cap: usize) -> Json {
    Json::obj()
        .field("type", "overloaded")
        .field("queue_depth", depth as u64)
        .field("queue_cap", cap as u64)
        .build()
}

/// `draining`: the server is shutting down and rejects new work.
pub fn resp_draining() -> Json {
    Json::obj().field("type", "draining").build()
}

/// `status`: a job's state and progress counters.
pub fn resp_status(id: &str, view: &JobView) -> Json {
    Json::obj()
        .field("type", "status")
        .field("id", id)
        .field("state", view.state.as_str())
        .field("done", view.done)
        .field("total", view.total)
        .build()
}

/// `result`: terminal state plus payload or error.
pub fn resp_result(id: &str, view: &JobView) -> Json {
    let mut b = Json::obj()
        .field("type", "result")
        .field("id", id)
        .field("state", view.state.as_str());
    if let Some(p) = &view.payload {
        b = b.field("payload", p.as_str());
    }
    if let Some(e) = &view.error {
        b = b.field("error", e.as_str());
    }
    b.build()
}

/// `pending`: `result` without `wait` on a job still in flight.
pub fn resp_pending(id: &str, view: &JobView) -> Json {
    Json::obj()
        .field("type", "pending")
        .field("id", id)
        .field("state", view.state.as_str())
        .build()
}

/// `progress`: one streamed `watch` event.
pub fn resp_progress(id: &str, done: u64, total: u64, message: &str) -> Json {
    Json::obj()
        .field("type", "progress")
        .field("id", id)
        .field("done", done)
        .field("total", total)
        .field("message", message)
        .build()
}

/// `cancelled`: outcome of a cancel request.
pub fn resp_cancel(id: &str, state: JobState) -> Json {
    Json::obj()
        .field("type", "cancel")
        .field("id", id)
        .field("state", state.as_str())
        .build()
}

/// `shutdown`: drain acknowledged.
pub fn resp_shutdown() -> Json {
    Json::obj()
        .field("type", "shutdown")
        .field("draining", true)
        .build()
}

/// `error`: the request could not be served (unknown id, parse
/// failure, ...).
pub fn resp_error(message: &str) -> Json {
    Json::obj()
        .field("type", "error")
        .field("message", message)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let reqs = [
            Request::Submit(JobSpec::new("table1", "tiny")),
            Request::Status { id: "ab12".into() },
            Request::Result {
                id: "ab12".into(),
                wait: true,
            },
            Request::Watch { id: "ab12".into() },
            Request::Cancel { id: "ab12".into() },
            Request::Metrics,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_json().write();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn result_without_wait_defaults_to_false() {
        let r = Request::parse("{\"type\":\"result\",\"id\":\"x\"}").unwrap();
        assert_eq!(
            r,
            Request::Result {
                id: "x".into(),
                wait: false
            }
        );
    }

    #[test]
    fn unknown_request_types_are_rejected() {
        assert!(Request::parse("{\"type\":\"frobnicate\"}").is_err());
        assert!(Request::parse("not json").is_err());
    }
}
