#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # mosaic-serve
//!
//! Simulation-as-a-service: turns the one-shot experiment binaries
//! into a persistent daemon that accepts jobs over TCP, executes them
//! on a bounded worker pool, and memoizes results in a
//! content-addressed cache.
//!
//! Four layers (each its own module):
//!
//! - [`job`] — the canonical [`JobSpec`] and its deterministic digest
//!   (the job id *and* the cache key: same spec ⇒ byte-identical
//!   simulation output, so content addressing is sound).
//! - [`cache`] — two-tier (memory + `results/cache/<digest>.json`)
//!   result cache with hit/miss counters.
//! - [`journal`] — crash-safe append-only job journal
//!   (`results/journal/journal.mlog`): a killed daemon replays it on
//!   restart, re-admits the jobs it lost, and converges to the same
//!   byte-identical results as an uninterrupted run.
//! - [`scheduler`] — bounded FIFO queue with typed `overloaded`
//!   admission control, a worker pool sized like `mosaic-bench`'s
//!   sweep pool (`workers × host_threads_per_run ≤ host cores`),
//!   per-job `catch_unwind` panic isolation, wall-clock timeouts,
//!   cancellation, and graceful drain.
//! - [`protocol`] / [`server`] / [`client`] — newline-delimited JSON
//!   over `std::net::TcpListener` (the environment is offline; no
//!   hyper/tokio): `submit` / `status` / `result` / `watch` /
//!   `cancel` / `metrics` / `shutdown`, plus the fleet verbs
//!   `steal` / `offer` / `fetch`.
//! - [`fleet`] — the multi-daemon tier: a consistent-hash
//!   [`Gateway`] front, inter-node work
//!   stealing, cross-node cache lookup, and per-tenant token-bucket
//!   admission.
//!
//! The crate is executor-agnostic: callers inject an [`Executor`]
//! mapping a spec to a JSON payload. `mosaic-bench` provides the real
//! one (running the experiment harnesses); tests inject synthetic
//! ones. This keeps the dependency arrow pointing from the harness to
//! the service, never back.

pub mod cache;
pub mod client;
pub mod fleet;
pub mod inject;
pub mod job;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod server;
mod sync;

pub use cache::ResultCache;
pub use client::{Client, ResultReply, SubmitReply};
pub use fleet::bucket::TenantGate;
pub use fleet::gateway::{Fanout, Gateway, GatewayConfig, NoFanout, SubJob};
pub use fleet::ring::HashRing;
pub use fleet::steal::PeerCache;
pub use inject::FaultyExecutor;
pub use job::{JobSpec, JobState};
pub use journal::{Journal, Replay, ReplayJob};
pub use metrics::Metrics;
pub use protocol::Request;
pub use scheduler::{
    Executor, JobRecord, JobView, RemoteLookup, RetryPolicy, SchedConfig, Scheduler, Submit,
};
pub use server::{Server, ServerConfig};
