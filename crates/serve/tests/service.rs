//! End-to-end service tests over a real TCP socket with a synthetic
//! executor: cache round trips, admission control, cancellation,
//! timeouts, panic isolation, progress streaming, graceful drain.

use mosaic_serve::{
    Client, Executor, FaultyExecutor, JobSpec, JobState, RetryPolicy, SchedConfig, Server,
    ServerConfig, SubmitReply,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Behavior is encoded in `spec.workload`: empty = succeed instantly,
/// `sleep:N` = poll the cancel flag for N ms then succeed, `fail` =
/// executor error, `panic` = panic (exercises `catch_unwind`).
struct TestExec;

impl Executor for TestExec {
    fn run(
        &self,
        spec: &JobSpec,
        progress: &dyn Fn(u64, u64, &str),
        cancelled: &AtomicBool,
    ) -> Result<String, String> {
        progress(1, 2, "started");
        match spec.workload.as_str() {
            "fail" => return Err("synthetic failure".to_string()),
            "panic" => panic!("synthetic panic"),
            w => {
                if let Some(ms) = w.strip_prefix("sleep:") {
                    let ms: u64 = ms.parse().expect("sleep:N");
                    let deadline = Instant::now() + Duration::from_millis(ms);
                    while Instant::now() < deadline {
                        if cancelled.load(Ordering::Relaxed) {
                            return Err("observed cancel flag".to_string());
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        }
        progress(2, 2, "finished");
        Ok(format!(
            "{{\"echo\":{},\"seed\":{},\"fidelity\":{}}}",
            jsonlite::escape(&spec.experiment),
            spec.seed,
            jsonlite::escape(&spec.fidelity)
        ))
    }
}

fn start(queue_cap: usize, workers: usize, timeout_ms: u64) -> Server {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sched: SchedConfig {
            queue_cap,
            workers,
            job_timeout: Duration::from_millis(timeout_ms),
            ..SchedConfig::default()
        },
        cache_dir: None,
        journal_dir: None,
        peers: Vec::new(),
    };
    Server::start(cfg, Arc::new(TestExec)).expect("start server")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string()).expect("connect")
}

fn spec(experiment: &str, workload: &str, seed: u64) -> JobSpec {
    let mut s = JobSpec::new(experiment, "tiny");
    s.workload = workload.to_string();
    s.seed = seed;
    s
}

fn metric(client: &mut Client, field: &str) -> u64 {
    let snap = client.metrics().expect("metrics");
    snap.as_object("metrics")
        .unwrap()
        .get(field, "metrics")
        .unwrap()
        .as_u64()
        .unwrap()
}

#[test]
fn same_job_twice_is_identical_and_served_from_cache() {
    let server = start(8, 2, 60_000);
    let mut client = connect(&server);
    let s = spec("tiny-exp", "", 0);

    let first = client.submit(&s).expect("submit");
    let SubmitReply::Accepted { id, cached, .. } = first else {
        panic!("expected acceptance, got {first:?}");
    };
    assert!(!cached, "first submission must not be a cache hit");
    let r1 = client.wait_result(&id).expect("result");
    assert_eq!(r1.state, JobState::Done);

    let second = client.submit(&s).expect("resubmit");
    let SubmitReply::Accepted {
        id: id2,
        state,
        cached,
    } = second
    else {
        panic!("expected acceptance, got {second:?}");
    };
    assert_eq!(id2, id, "content-addressed id must be stable");
    assert!(cached, "second submission must be served from cache");
    assert_eq!(state, JobState::Done);
    let r2 = client.wait_result(&id).expect("cached result");
    assert_eq!(r1.payload, r2.payload, "cached payload must be identical");

    assert!(metric(&mut client, "cache_hits") >= 1);
    assert_eq!(metric(&mut client, "cache_misses"), 1);
    assert_eq!(metric(&mut client, "completed"), 1);

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn queue_cap_zero_rejects_with_overloaded() {
    let server = start(0, 1, 60_000);
    let mut client = connect(&server);
    let reply = client.submit(&spec("rejected", "", 0)).expect("submit");
    assert_eq!(reply, SubmitReply::Overloaded { depth: 0, cap: 0 });
    assert_eq!(metric(&mut client, "rejected"), 1);
    assert_eq!(metric(&mut client, "accepted"), 0);
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn graceful_drain_completes_in_flight_jobs() {
    let server = start(8, 1, 60_000);
    let mut client = connect(&server);
    let slow = spec("drain-me", "sleep:300", 0);
    let SubmitReply::Accepted { id, .. } = client.submit(&slow).expect("submit") else {
        panic!("expected acceptance");
    };

    client.shutdown().expect("shutdown");
    // New work is refused while draining...
    let refused = client.submit(&spec("too-late", "", 1)).expect("submit");
    assert_eq!(refused, SubmitReply::Draining);

    // ...but the in-flight job still runs to completion.
    let res = client.wait_result(&id).expect("result");
    assert_eq!(res.state, JobState::Done);
    server.join();
    assert_eq!(
        server
            .scheduler()
            .job(&id)
            .expect("job survives")
            .view()
            .state,
        JobState::Done
    );
}

#[test]
fn wall_clock_timeout_fails_the_job_but_not_the_server() {
    let server = start(8, 1, 100);
    let mut client = connect(&server);
    let SubmitReply::Accepted { id, .. } = client
        .submit(&spec("togslow", "sleep:60000", 0))
        .expect("submit")
    else {
        panic!("expected acceptance");
    };
    let res = client.wait_result(&id).expect("result");
    assert_eq!(res.state, JobState::TimedOut);
    assert_eq!(metric(&mut client, "timed_out"), 1);

    // The worker is free again: a fast job still completes.
    let SubmitReply::Accepted { id, .. } = client
        .submit(&spec("after-timeout", "", 0))
        .expect("submit")
    else {
        panic!("expected acceptance");
    };
    assert_eq!(
        client.wait_result(&id).expect("result").state,
        JobState::Done
    );
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn queued_jobs_can_be_cancelled() {
    let server = start(8, 1, 60_000);
    let mut client = connect(&server);
    // Occupy the single worker...
    let SubmitReply::Accepted { id: busy, .. } = client
        .submit(&spec("busy", "sleep:400", 0))
        .expect("submit")
    else {
        panic!("expected acceptance");
    };
    // ...so this one stays queued and can be cancelled outright.
    let SubmitReply::Accepted {
        id: queued, state, ..
    } = client.submit(&spec("queued", "", 7)).expect("submit")
    else {
        panic!("expected acceptance");
    };
    assert_eq!(state, JobState::Queued);
    assert_eq!(client.cancel(&queued).expect("cancel"), JobState::Cancelled);
    assert_eq!(
        client.wait_result(&queued).expect("result").state,
        JobState::Cancelled
    );
    assert_eq!(
        client.wait_result(&busy).expect("result").state,
        JobState::Done
    );
    assert_eq!(metric(&mut client, "cancelled"), 1);
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn a_panicking_job_fails_alone() {
    let server = start(8, 1, 60_000);
    let mut client = connect(&server);
    let SubmitReply::Accepted { id, .. } = client
        .submit(&spec("poisoned", "panic", 0))
        .expect("submit")
    else {
        panic!("expected acceptance");
    };
    let res = client.wait_result(&id).expect("result");
    assert_eq!(res.state, JobState::Failed);
    assert!(
        res.error.as_deref().unwrap_or("").contains("panicked"),
        "error should name the panic: {:?}",
        res.error
    );

    // Server lives: the next job on the same worker completes.
    let SubmitReply::Accepted { id, .. } = client.submit(&spec("survivor", "", 0)).expect("submit")
    else {
        panic!("expected acceptance");
    };
    assert_eq!(
        client.wait_result(&id).expect("result").state,
        JobState::Done
    );
    assert_eq!(metric(&mut client, "failed"), 1);
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn watch_streams_progress_events_until_terminal() {
    let server = start(8, 1, 60_000);
    let mut client = connect(&server);
    let SubmitReply::Accepted { id, .. } = client
        .submit(&spec("watched", "sleep:100", 0))
        .expect("submit")
    else {
        panic!("expected acceptance");
    };
    // A second connection watches while the first keeps the job's
    // submit connection open (connections are independent).
    let mut watcher = connect(&server);
    let mut events = Vec::new();
    let final_state = watcher
        .watch(&id, |done, total, msg| {
            events.push((done, total, msg.to_string()))
        })
        .expect("watch");
    assert_eq!(final_state, JobState::Done);
    assert!(
        events.len() >= 2,
        "expected streamed events, got {events:?}"
    );
    assert_eq!(events[0].2, "started");
    assert_eq!(events.last().map(|e| e.2.as_str()), Some("finished"));
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn injected_host_panics_recover_through_the_retry_policy() {
    // The full chaos-recovery path over TCP: the executor panics on
    // the first two attempts of every job, the retry policy allows
    // three, so every submission still completes — and the recovery is
    // visible in the metrics.
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sched: SchedConfig {
            queue_cap: 8,
            workers: 1,
            job_timeout: Duration::from_secs(60),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            },
            ..SchedConfig::default()
        },
        cache_dir: None,
        journal_dir: None,
        peers: Vec::new(),
    };
    let faulty = FaultyExecutor::new(Arc::new(TestExec), 2, Duration::from_millis(10));
    let server = Server::start(cfg, Arc::new(faulty)).expect("start server");

    // Connect-with-retry also covers the client half of resilience.
    let mut client = Client::connect_with_retry(
        &server.local_addr().to_string(),
        &RetryPolicy::with_attempts(3),
    )
    .expect("connect");
    let SubmitReply::Accepted { id, .. } = client.submit(&spec("chaotic", "", 0)).expect("submit")
    else {
        panic!("expected acceptance");
    };
    let res = client.wait_result(&id).expect("result");
    assert_eq!(res.state, JobState::Done);
    assert_eq!(metric(&mut client, "retries"), 2);
    assert_eq!(metric(&mut client, "completed"), 1);
    assert_eq!(metric(&mut client, "failed"), 0);
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn connect_with_retry_gives_up_after_the_budget() {
    // Nothing listens on a port we grab and immediately release.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
    };
    assert!(Client::connect_with_retry(&addr, &policy).is_err());
}

#[test]
fn connect_deadline_caps_the_retry_budget() {
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    // A policy that would retry for many seconds, capped to ~30 ms
    // overall: the deadline, not the attempt count, must win.
    let policy = RetryPolicy {
        max_attempts: 50,
        base_backoff: Duration::from_millis(400),
        max_backoff: Duration::from_secs(2),
    };
    let started = Instant::now();
    let result = Client::connect_with_deadline(&addr, &policy, Duration::from_millis(30));
    assert!(result.is_err());
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "deadline must cut the retry loop short, took {:?}",
        started.elapsed()
    );
}

#[test]
fn duplicate_in_flight_submissions_coalesce() {
    let server = start(8, 1, 60_000);
    let mut client = connect(&server);
    let s = spec("dup", "sleep:200", 0);
    let SubmitReply::Accepted { id, .. } = client.submit(&s).expect("submit") else {
        panic!("expected acceptance");
    };
    let SubmitReply::Accepted {
        id: id2, cached, ..
    } = client.submit(&s).expect("dup submit")
    else {
        panic!("expected acceptance");
    };
    assert_eq!(id, id2);
    assert!(!cached, "in-flight duplicate is coalesced, not a cache hit");
    // Only one execution: accepted counts the first admission only.
    assert_eq!(metric(&mut client, "accepted"), 1);
    assert_eq!(
        client.wait_result(&id).expect("result").state,
        JobState::Done
    );
    client.shutdown().expect("shutdown");
    server.join();
}

/// A synthetic calibration table: `fast-exp` is tightly calibrated at
/// tiny scale, `wobbly-exp` is calibrated but far outside the
/// escalation bound, and anything else is uncovered.
fn synthetic_calibration() -> mosaic_model::CalibrationTable {
    let mut table = mosaic_model::CalibrationTable::new(100_000);
    table.experiments.push(mosaic_model::ExperimentBound {
        experiment: "fast-exp".to_string(),
        scale: "tiny".to_string(),
        max_err_ppm: 20_000,
    });
    table.experiments.push(mosaic_model::ExperimentBound {
        experiment: "wobbly-exp".to_string(),
        scale: "tiny".to_string(),
        max_err_ppm: 500_000,
    });
    table
}

#[test]
fn auto_fidelity_answers_calibrated_jobs_fast_and_escalates_the_rest() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sched: SchedConfig {
            queue_cap: 8,
            workers: 2,
            calibration: Some(Arc::new(synthetic_calibration())),
            escalate_bound_ppm: 100_000,
            ..SchedConfig::default()
        },
        cache_dir: None,
        journal_dir: None,
        peers: Vec::new(),
    };
    let server = Server::start(cfg, Arc::new(TestExec)).expect("start server");
    let mut client = connect(&server);

    let submit_auto = |client: &mut Client, experiment: &str| -> String {
        let mut s = spec(experiment, "", 0);
        s.fidelity = "auto".to_string();
        let SubmitReply::Accepted { id, .. } = client.submit(&s).expect("submit") else {
            panic!("expected acceptance");
        };
        let res = client.wait_result(&id).expect("result");
        assert_eq!(res.state, JobState::Done);
        res.payload.expect("payload")
    };

    // Calibrated inside the bound: answered by the analytic backend.
    let fast = submit_auto(&mut client, "fast-exp");
    assert!(fast.contains("\"fidelity\":\"analytic\""), "{fast}");
    // Calibrated but outside the bound: escalated to cycle-accurate.
    let wobbly = submit_auto(&mut client, "wobbly-exp");
    assert!(wobbly.contains("\"fidelity\":\"cycle\""), "{wobbly}");
    // Never calibrated at all: also escalated.
    let unknown = submit_auto(&mut client, "uncovered-exp");
    assert!(unknown.contains("\"fidelity\":\"cycle\""), "{unknown}");

    assert_eq!(metric(&mut client, "fast_jobs"), 1);
    assert_eq!(metric(&mut client, "escalations"), 2);

    // Resolution happens before the digest, so an auto submission that
    // resolved analytic shares its cache entry with an explicit one.
    let mut explicit = spec("fast-exp", "", 0);
    explicit.fidelity = "analytic".to_string();
    let reply = client.submit(&explicit).expect("resubmit");
    let SubmitReply::Accepted { cached, .. } = reply else {
        panic!("expected acceptance, got {reply:?}");
    };
    assert!(cached, "resolved auto and explicit analytic must coalesce");

    // The per-fidelity latency split saw both backends.
    let snap = client.metrics().expect("metrics");
    let obj = snap.as_object("metrics").unwrap();
    let by = obj
        .get("latency_by_fidelity", "metrics")
        .unwrap()
        .as_object("by")
        .unwrap();
    for (label, count) in [("analytic", 1), ("cycle", 2)] {
        let bucket = by.get(label, "by").unwrap().as_object("bucket").unwrap();
        assert_eq!(bucket.get("count", "bucket").unwrap().as_u64(), Ok(count));
    }

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn journal_replay_readmits_killed_jobs_and_marks_clean_drains() {
    // Fabricate a crashed daemon's journal: one job admitted and
    // mid-run (the "process died under a worker" shape), one merely
    // queued, one completed. A fresh server over that directory must
    // re-admit exactly the two unfinished jobs, run them, count them
    // in replayed_jobs (and the mid-run one in worker_deaths), and —
    // after a graceful drain — leave a journal the next start
    // considers clean.
    let dir = std::env::temp_dir().join(format!("mosaic-serve-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (running, queued, done) = (
        spec("echo", "", 101),
        spec("echo", "", 102),
        spec("echo", "", 103),
    );
    {
        let (j, _) = mosaic_serve::Journal::open(&dir).expect("open journal");
        j.record_admitted(&running.digest(), &running);
        j.record_started(&running.digest());
        j.record_admitted(&queued.digest(), &queued);
        j.record_admitted(&done.digest(), &done);
        j.record_completed(&done.digest(), true);
        // No drained-clean: this is the kill.
    }
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sched: SchedConfig {
            queue_cap: 8,
            workers: 1,
            ..SchedConfig::default()
        },
        cache_dir: None,
        journal_dir: Some(dir.clone()),
        peers: Vec::new(),
    };
    let server = Server::start(cfg.clone(), Arc::new(TestExec)).expect("start server");
    let mut client = connect(&server);
    assert_eq!(metric(&mut client, "replayed_jobs"), 2);
    assert_eq!(metric(&mut client, "worker_deaths"), 1);
    // The replayed jobs actually run to completion.
    let reply = client.wait_result(&running.digest()).expect("result");
    assert_eq!(reply.state, JobState::Done);
    let reply = client.wait_result(&queued.digest()).expect("result");
    assert_eq!(reply.state, JobState::Done);
    server.request_shutdown();
    server.join();
    // The drain left a clean marker: a restart replays nothing.
    let server2 = Server::start(cfg, Arc::new(TestExec)).expect("restart server");
    let mut client2 = connect(&server2);
    assert_eq!(metric(&mut client2, "replayed_jobs"), 0);
    assert_eq!(metric(&mut client2, "worker_deaths"), 0);
    server2.request_shutdown();
    server2.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_fidelity_without_a_calibration_table_is_rejected() {
    // The default SchedConfig carries no calibration table.
    let server = start(8, 1, 60_000);
    let mut client = connect(&server);
    let mut s = spec("fast-exp", "", 0);
    s.fidelity = "auto".to_string();
    let err = client.submit(&s).expect_err("auto must be rejected");
    assert!(err.contains("calibration"), "{err}");
    // Explicit fidelities still flow through untouched.
    s.fidelity = "cycle".to_string();
    let SubmitReply::Accepted { id, .. } = client.submit(&s).expect("submit") else {
        panic!("expected acceptance");
    };
    assert_eq!(
        client.wait_result(&id).expect("result").state,
        JobState::Done
    );
    client.shutdown().expect("shutdown");
    server.join();
}
