//! Fleet-tier integration tests over real TCP sockets: inter-node
//! steal, cross-node cache lookup, gateway forwarding and fan-out,
//! per-tenant admission, dead-node re-routing, and idempotent replay
//! of orphaned subjob journal records.

use mosaic_serve::fleet::ring::DEFAULT_REPLICAS;
use mosaic_serve::{
    Client, Executor, Fanout, Gateway, GatewayConfig, HashRing, JobSpec, JobState, SchedConfig,
    Server, ServerConfig, SubJob, SubmitReply,
};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Same synthetic executor contract as the service tests: behavior is
/// encoded in `spec.workload` (`sleep:N` = N ms of cancellable work,
/// anything else = succeed instantly with a spec-determined payload).
struct TestExec;

impl Executor for TestExec {
    fn run(
        &self,
        spec: &JobSpec,
        progress: &dyn Fn(u64, u64, &str),
        _cancelled: &AtomicBool,
    ) -> Result<String, String> {
        progress(1, 2, "started");
        if let Some(ms) = spec.workload.strip_prefix("sleep:") {
            let ms: u64 = ms.parse().expect("sleep:N");
            std::thread::sleep(Duration::from_millis(ms));
        }
        progress(2, 2, "finished");
        Ok(format!(
            "{{\"echo\":{},\"workload\":{},\"seed\":{}}}",
            jsonlite::escape(&spec.experiment),
            jsonlite::escape(&spec.workload),
            spec.seed
        ))
    }
}

/// An executor that must never run: proves a job was answered from a
/// peer's cache rather than executed.
struct MustNotRun;

impl Executor for MustNotRun {
    fn run(
        &self,
        spec: &JobSpec,
        _progress: &dyn Fn(u64, u64, &str),
        _cancelled: &AtomicBool,
    ) -> Result<String, String> {
        panic!(
            "executor ran for {} — the peer cache was bypassed",
            spec.experiment
        );
    }
}

fn worker_with(peers: Vec<String>, workers: usize, exec: Arc<dyn Executor>) -> Server {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sched: SchedConfig {
            queue_cap: 64,
            workers,
            job_timeout: Duration::from_secs(60),
            ..SchedConfig::default()
        },
        cache_dir: None,
        journal_dir: None,
        peers,
    };
    Server::start(cfg, exec).expect("start worker")
}

fn worker(peers: Vec<String>) -> Server {
    worker_with(peers, 1, Arc::new(TestExec))
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).expect("connect")
}

fn spec(experiment: &str, workload: &str, seed: u64) -> JobSpec {
    let mut s = JobSpec::new(experiment, "tiny");
    s.workload = workload.to_string();
    s.seed = seed;
    s
}

fn accept(reply: SubmitReply) -> String {
    match reply {
        SubmitReply::Accepted { id, .. } => id,
        other => panic!("expected acceptance, got {other:?}"),
    }
}

fn metric(client: &mut Client, field: &str) -> u64 {
    let snap = client.metrics().expect("metrics");
    snap.as_object("metrics")
        .unwrap()
        .get(field, "metrics")
        .unwrap()
        .as_u64()
        .unwrap()
}

#[test]
fn an_idle_peer_steals_queued_jobs_and_payloads_are_unchanged() {
    // The victim's single worker is buried under queued jobs; the
    // thief is idle and peered on it. Every job must still complete on
    // the victim's records (offers resolve the loans), with the same
    // payload a solo run would produce, and both sides must count the
    // transfer.
    let victim = worker(Vec::new());
    let victim_addr = victim.local_addr().to_string();
    let thief = worker(vec![victim_addr.clone()]);

    let mut client = connect(&victim_addr);
    let ids: Vec<String> = (0..6)
        .map(|i| {
            accept(
                client
                    .submit(&spec("stealable", "sleep:150", i))
                    .expect("submit"),
            )
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let res = client.wait_result(id).expect("result");
        assert_eq!(res.state, JobState::Done, "job {id}");
        assert_eq!(
            res.payload.as_deref(),
            Some(
                format!("{{\"echo\":\"stealable\",\"workload\":\"sleep:150\",\"seed\":{i}}}")
                    .as_str()
            ),
            "stolen jobs must produce the exact solo payload"
        );
    }

    let donated = metric(&mut client, "donated");
    assert!(donated >= 1, "the idle peer never stole (donated = 0)");
    let mut thief_client = connect(&thief.local_addr().to_string());
    assert_eq!(metric(&mut thief_client, "steals"), donated);

    client.shutdown().expect("shutdown victim");
    victim.join();
    thief_client.shutdown().expect("shutdown thief");
    thief.join();
}

#[test]
fn a_peer_cache_hit_answers_without_executing() {
    // Worker A computes the payload; worker B — whose executor panics
    // if it ever runs — is peered on A and must answer the same spec
    // from A's cache.
    let a = worker(Vec::new());
    let a_addr = a.local_addr().to_string();
    let mut client_a = connect(&a_addr);
    let s = spec("cached-exp", "", 42);
    let id = accept(client_a.submit(&s).expect("submit"));
    let reference = client_a.wait_result(&id).expect("result");
    assert_eq!(reference.state, JobState::Done);

    let b = worker_with(vec![a_addr], 1, Arc::new(MustNotRun));
    let mut client_b = connect(&b.local_addr().to_string());
    let id_b = accept(client_b.submit(&s).expect("submit"));
    assert_eq!(id_b, id, "content-addressed ids agree across the fleet");
    let res = client_b.wait_result(&id_b).expect("result");
    assert_eq!(res.state, JobState::Done);
    assert_eq!(
        res.payload, reference.payload,
        "remote hit must be byte-identical"
    );
    assert_eq!(metric(&mut client_b, "remote_cache_hits"), 1);
    assert_eq!(metric(&mut client_b, "failed"), 0);

    client_a.shutdown().expect("shutdown a");
    a.join();
    client_b.shutdown().expect("shutdown b");
    b.join();
}

/// A gateway fanout for tests: splits `sweep-*` experiments into three
/// seed-distinguished subjobs and merges by labelled concatenation.
struct TestFanout;

impl Fanout for TestFanout {
    fn split(&self, spec: &JobSpec) -> Option<Vec<SubJob>> {
        if !spec.experiment.starts_with("sweep-") {
            return None;
        }
        Some(
            (1..=3)
                .map(|i| {
                    let mut sub = spec.clone();
                    sub.seed = i;
                    SubJob {
                        label: format!("part{i}"),
                        spec: sub,
                    }
                })
                .collect(),
        )
    }

    fn merge(&self, _spec: &JobSpec, parts: &[(String, String)]) -> Result<String, String> {
        Ok(parts
            .iter()
            .map(|(label, payload)| format!("{label}={payload};"))
            .collect())
    }
}

fn gateway(workers: Vec<String>, tenant_rate: u64, tenant_burst: u64) -> Gateway {
    let cfg = GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        replicas: DEFAULT_REPLICAS,
        tenant_rate,
        tenant_burst,
    };
    Gateway::start(cfg, Arc::new(TestFanout)).expect("start gateway")
}

#[test]
fn the_gateway_forwards_singletons_and_merges_fanned_out_sweeps() {
    let a = worker(Vec::new());
    let b = worker(Vec::new());
    let (a_addr, b_addr) = (a.local_addr().to_string(), b.local_addr().to_string());
    let gw = gateway(vec![a_addr.clone(), b_addr], 0, 8);
    let mut client = connect(&gw.local_addr().to_string());

    // A singleton is forwarded whole and completes with the worker's
    // exact payload.
    let solo = spec("solo-exp", "", 7);
    let id = accept(client.submit(&solo).expect("submit"));
    assert_eq!(id, solo.digest(), "the gateway job id is the spec digest");
    let res = client.wait_result(&id).expect("result");
    assert_eq!(res.state, JobState::Done);
    assert_eq!(
        res.payload.as_deref(),
        Some("{\"echo\":\"solo-exp\",\"workload\":\"\",\"seed\":7}")
    );

    // A sweep fans out into three subjobs, collected and merged in
    // canonical split order regardless of which worker ran which part.
    let sweep = spec("sweep-exp", "", 0);
    let sweep_id = accept(client.submit(&sweep).expect("submit"));
    let res = client.wait_result(&sweep_id).expect("result");
    assert_eq!(res.state, JobState::Done, "{:?}", res.error);
    let expected: String = (1..=3)
        .map(|i| format!("part{i}={{\"echo\":\"sweep-exp\",\"workload\":\"\",\"seed\":{i}}};"))
        .collect();
    assert_eq!(res.payload.as_deref(), Some(expected.as_str()));

    // Resubmitting through the gateway replays its completed record as
    // a gateway-level cache hit.
    match client.submit(&sweep).expect("resubmit") {
        SubmitReply::Accepted { id, cached, .. } => {
            assert_eq!(id, sweep_id);
            assert!(cached, "a completed gateway job must replay as cached");
        }
        other => panic!("expected acceptance, got {other:?}"),
    }

    // A spec already cached on a worker (submitted around the gateway)
    // comes back as a cross-node cache hit when forwarded.
    let warm = spec("warm-exp", "", 3);
    let mut direct = connect(&a_addr);
    let warm_id = accept(direct.submit(&warm).expect("direct submit"));
    assert_eq!(
        direct.wait_result(&warm_id).expect("result").state,
        JobState::Done
    );
    // Forwarding may land on either worker; only the owner holds the
    // payload, so probe via the gateway and accept a hit on whichever
    // route it took.
    let _ = accept(client.submit(&warm).expect("submit"));
    let res = client.wait_result(&warm.digest()).expect("result");
    assert_eq!(res.state, JobState::Done);

    assert!(
        metric(&mut client, "forwards") >= 5,
        "solo + 3 subjobs + warm"
    );
    assert_eq!(metric(&mut client, "fanouts"), 1);
    assert_eq!(metric(&mut client, "subjobs"), 3);
    assert_eq!(metric(&mut client, "failed"), 0);
    let snap = client.metrics().expect("metrics");
    let obj = snap.as_object("metrics").unwrap();
    assert_eq!(
        obj.get("role", "metrics").unwrap().as_string().unwrap(),
        "gateway"
    );
    assert_eq!(obj.get("workers", "metrics").unwrap().as_u64(), Ok(2));

    client.shutdown().expect("shutdown gateway");
    gw.join();
    for (w, addr) in [(&a, &a_addr), (&b, &b.local_addr().to_string())] {
        connect(addr).shutdown().expect("shutdown worker");
        w.join();
    }
}

#[test]
fn tenant_buckets_throttle_independently() {
    let a = worker(Vec::new());
    let a_addr = a.local_addr().to_string();
    // 1 token/s with burst 1: the second submission inside the same
    // second bounces, but only for the same tenant.
    let gw = gateway(vec![a_addr.clone()], 1, 1);
    let mut client = connect(&gw.local_addr().to_string());

    let first = accept(
        client
            .submit_as(&spec("throttle-exp", "", 1), "alice")
            .expect("submit"),
    );
    match client
        .submit_as(&spec("throttle-exp", "", 2), "alice")
        .expect("submit")
    {
        SubmitReply::Overloaded { depth, cap } => {
            assert_eq!((depth, cap), (0, 1), "bucket rides the overloaded path");
        }
        other => panic!("expected throttling, got {other:?}"),
    }
    let second = accept(
        client
            .submit_as(&spec("throttle-exp", "", 3), "bob")
            .expect("submit"),
    );
    for id in [first, second] {
        assert_eq!(
            client.wait_result(&id).expect("result").state,
            JobState::Done
        );
    }
    assert_eq!(metric(&mut client, "throttled"), 1);

    client.shutdown().expect("shutdown gateway");
    gw.join();
    connect(&a_addr).shutdown().expect("shutdown worker");
    a.join();
}

#[test]
fn the_gateway_reroutes_around_a_dead_worker() {
    let a = worker(Vec::new());
    let a_addr = a.local_addr().to_string();
    // A port that answered once and will never answer again: the
    // classic dead node.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    // Pick a seed whose digest the ring assigns to the dead node, so
    // the re-route path is exercised deterministically rather than by
    // luck of the hash.
    let ring = HashRing::new(&[a_addr.clone(), dead_addr.clone()], DEFAULT_REPLICAS).unwrap();
    let doomed = (0..1000)
        .map(|seed| spec("reroute-exp", "", seed))
        .find(|s| ring.owner(&s.digest()) == dead_addr)
        .expect("some seed must hash to the dead node");

    let gw = gateway(vec![a_addr.clone(), dead_addr], 0, 8);
    let mut client = connect(&gw.local_addr().to_string());
    let started = Instant::now();
    let id = accept(client.submit(&doomed).expect("submit"));
    let res = client.wait_result(&id).expect("result");
    assert_eq!(res.state, JobState::Done, "{:?}", res.error);
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "re-route must not hang on the dead node, took {:?}",
        started.elapsed()
    );
    assert!(metric(&mut client, "reroutes") >= 1);
    let snap = client.metrics().expect("metrics");
    let obj = snap.as_object("metrics").unwrap();
    assert_eq!(obj.get("down_workers", "metrics").unwrap().as_u64(), Ok(1));

    client.shutdown().expect("shutdown gateway");
    gw.join();
    connect(&a_addr).shutdown().expect("shutdown worker");
    a.join();
}

#[test]
fn replaying_subjob_records_for_a_finished_sweep_is_idempotent() {
    // A worker died holding journaled subjob records (workload-filtered
    // specs minted by gateway fan-out) whose parent sweep the gateway
    // already merged from a re-route to a survivor. The restarted
    // worker must replay them anyway — over-recovery — and converge:
    // the subjobs rerun deterministically, land in the cache, and a
    // resubmission (e.g. the gateway firing the same cell again) is a
    // pure cache hit rather than a duplicate execution.
    let dir = std::env::temp_dir().join(format!("mosaic-fleet-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let running_sub = spec("sweep-exp", "w1", 0);
    let queued_sub = spec("sweep-exp", "w2", 0);
    let merged_sub = spec("sweep-exp", "w3", 0);
    {
        let (j, _) = mosaic_serve::Journal::open(&dir).expect("open journal");
        j.record_admitted(&running_sub.digest(), &running_sub);
        j.record_started(&running_sub.digest());
        j.record_admitted(&queued_sub.digest(), &queued_sub);
        j.record_admitted(&merged_sub.digest(), &merged_sub);
        j.record_completed(&merged_sub.digest(), true);
        // No drained-clean marker: this is the node kill.
    }
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sched: SchedConfig {
            queue_cap: 8,
            workers: 1,
            ..SchedConfig::default()
        },
        cache_dir: None,
        journal_dir: Some(dir.clone()),
        peers: Vec::new(),
    };
    let server = Server::start(cfg, Arc::new(TestExec)).expect("start server");
    let mut client = connect(&server.local_addr().to_string());
    assert_eq!(metric(&mut client, "replayed_jobs"), 2);
    assert_eq!(metric(&mut client, "worker_deaths"), 1);
    for sub in [&running_sub, &queued_sub] {
        let res = client.wait_result(&sub.digest()).expect("result");
        assert_eq!(res.state, JobState::Done);
    }
    // The gateway re-firing an already-recovered cell coalesces into
    // the cache instead of executing twice.
    match client.submit(&running_sub).expect("resubmit") {
        SubmitReply::Accepted { cached, state, .. } => {
            assert!(cached, "over-recovered subjob must be a cache hit");
            assert_eq!(state, JobState::Done);
        }
        other => panic!("expected acceptance, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
