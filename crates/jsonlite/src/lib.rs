#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # jsonlite
//!
//! A dependency-free codec for the strict JSON subset used throughout
//! the workspace: objects, arrays, strings, unsigned integers, and
//! booleans. The build container cannot fetch serde, so both the
//! golden-number files (`mosaic-bench`) and the service wire protocol
//! (`mosaic-serve`) share this one hand-rolled serializer and
//! recursive-descent parser — one escaping bug surface instead of two.
//!
//! The writer emits exactly the grammar the parser accepts, and object
//! key order is preserved (insertion order), so `parse(write(v)) == v`
//! and serialized forms are deterministic — a property the
//! content-addressed result cache in `mosaic-serve` relies on.

pub mod frame;

use std::fmt::Write as _;

/// A JSON value in the workspace subset grammar.
///
/// Numbers are unsigned 64-bit integers only: every quantity the
/// workspace serializes (cycles, instructions, counters, millisecond
/// latencies) is a `u64`, and exact integers keep golden files and
/// cache digests bit-stable across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `{...}` with insertion-ordered fields.
    Object(Vec<(String, Json)>),
    /// `[...]`.
    Array(Vec<Json>),
    /// `"..."`.
    String(String),
    /// Unsigned integer.
    Number(u64),
    /// `true` / `false`.
    Bool(bool),
}

impl Json {
    /// Parse a complete document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Serialize compactly (single line, no spaces after `,`/`:`).
    /// Deterministic: field order is preserved as built.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::String(s) => out.push_str(&escape(s)),
            Json::Number(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    /// Start building an object (see [`ObjBuilder`]).
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// View as an object; `what` names the context for the error.
    pub fn as_object(&self, what: &str) -> Result<ObjectView<'_>, String> {
        match self {
            Json::Object(fields) => Ok(ObjectView(fields)),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    /// View as an array slice; `what` names the context for the error.
    pub fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    /// Clone out a string value.
    pub fn as_string(&self) -> Result<String, String> {
        match self {
            Json::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// Read a number value.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// Read a boolean value.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// Fluent object builder preserving field insertion order:
/// `Json::obj().field("type", "submit").field("cap", 8u64).build()`.
#[derive(Debug, Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Append one field.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.0.push((key.to_string(), value.into()));
        self
    }

    /// Finish into a [`Json::Object`].
    pub fn build(self) -> Json {
        Json::Object(self.0)
    }
}

/// A borrowed view over [`Json::Object`] fields adding keyed lookup.
#[derive(Clone, Copy)]
pub struct ObjectView<'a>(&'a [(String, Json)]);

impl ObjectView<'_> {
    /// The field `name`, or an error naming the enclosing `what`.
    pub fn get(&self, name: &str, what: &str) -> Result<&Json, String> {
        self.opt(name)
            .ok_or_else(|| format!("{what}: missing field {name:?}"))
    }

    /// The field `name` if present.
    pub fn opt(&self, name: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Field names in serialization order (objects keep insertion
    /// order; no sorting, no dedup).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.0.iter().map(|(k, _)| k.as_str())
    }
}

/// Quote and escape `s` as a JSON string literal (the one escaping
/// routine in the workspace — golden files and the wire protocol both
/// go through here).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            ch as char,
            *pos,
            b.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::String(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .expect("ASCII digits are valid UTF-8")
                .parse()
                .map(Json::Number)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape".to_string())?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj()
            .field("name", "PR-\"email\"\n")
            .field("count", 42u64)
            .field("ok", true)
            .field("items", vec![Json::Number(1), Json::String("héllo".into())])
            .field("empty_obj", Json::Object(Vec::new()))
            .field("empty_arr", Json::Array(Vec::new()))
            .build()
    }

    #[test]
    fn write_parse_round_trips_exactly() {
        let v = sample();
        assert_eq!(Json::parse(&v.write()).unwrap(), v);
    }

    #[test]
    fn write_is_deterministic_and_order_preserving() {
        let v = Json::obj().field("b", 1u64).field("a", 2u64).build();
        assert_eq!(v.write(), "{\"b\":1,\"a\":2}");
        assert_eq!(v.write(), v.write());
    }

    #[test]
    fn escape_covers_quotes_backslashes_and_control() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parser_accepts_whitespace_and_multiline_forms() {
        let v = Json::parse("{\n  \"a\": [1, 2],\n  \"b\": {\"c\": true}\n}\n").unwrap();
        let obj = v.as_object("top").unwrap();
        assert_eq!(obj.get("a", "top").unwrap().as_array("a").unwrap().len(), 2);
    }

    #[test]
    fn accessors_report_context_on_type_mismatch() {
        let v = Json::parse("{\"a\": 1}").unwrap();
        let top = v.as_object("top").unwrap();
        let num = top.opt("a").unwrap();
        assert!(num.as_string().is_err());
        assert!(v.as_array("top").unwrap_err().contains("top"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1, 2] trailing").is_err());
        assert!(Json::parse("-1").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_view_get_names_missing_fields() {
        let v = Json::parse("{\"a\": 1}").unwrap();
        let err = v.as_object("top").unwrap().get("zzz", "top").unwrap_err();
        assert!(err.contains("zzz"), "{err}");
    }
}
