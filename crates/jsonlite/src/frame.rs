//! Binary-safe record framing for append-only logs and checkpoint
//! files: `[payload_len: u32 LE][crc32: u32 LE][payload bytes]`.
//!
//! The job journal in `mosaic-serve` and the checkpoint container in
//! `mosaic-sim` both need to append records that survive a `kill -9`
//! mid-write: a torn tail (a record whose length prefix, payload, or
//! CRC never fully reached the disk) must be detectable and skippable
//! without losing the intact records before it. This module is that one
//! shared framing layer — length prefix to find record boundaries, a
//! CRC-32 over the payload to reject partially-flushed bytes that
//! happen to look complete.
//!
//! [`decode_records`] is deliberately forgiving about the *tail* and
//! strict about everything before it: the first frame that fails to
//! decode ends the scan, and the remaining byte count is reported so
//! the caller can log what was dropped.

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the same checksum gzip and PNG use. Bitwise implementation; record
/// payloads are small (a JSON line or one checkpoint body), so a lookup
/// table would buy nothing measurable.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frame one payload: `[len u32 LE][crc32 u32 LE][payload]`.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode back-to-back frames from `buf`. Returns the intact payloads
/// in order plus the number of trailing bytes that did not form a
/// complete, CRC-valid record (the torn tail a crash mid-append leaves
/// behind; `0` for a cleanly written log).
pub fn decode_records(buf: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        let start = pos + 8;
        let Some(payload) = buf.get(start..start.saturating_add(len)) else {
            break; // length prefix promises more bytes than exist: torn
        };
        if crc32(payload) != crc {
            break; // payload bytes never fully landed: torn
        }
        records.push(payload);
        pos = start + len;
    }
    (records, buf.len() - pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut log = Vec::new();
        let payloads: [&[u8]; 3] = [b"first", b"", b"third record\nwith bytes \x00\xff"];
        for p in payloads {
            log.extend_from_slice(&encode_record(p));
        }
        let (records, torn) = decode_records(&log);
        assert_eq!(records, payloads);
        assert_eq!(torn, 0);
    }

    #[test]
    fn torn_tail_is_tolerated_and_counted() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(b"intact"));
        let partial = encode_record(b"this one never finished");
        // Simulate a crash mid-append: only half the frame landed.
        log.extend_from_slice(&partial[..partial.len() / 2]);
        let torn_len = partial.len() / 2;
        let (records, torn) = decode_records(&log);
        assert_eq!(records, vec![b"intact".as_slice()]);
        assert_eq!(torn, torn_len);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(b"good"));
        let mut bad = encode_record(b"evil");
        bad[8] ^= 0x40; // flip a payload bit; the CRC no longer matches
        log.extend_from_slice(&bad);
        log.extend_from_slice(&encode_record(b"unreachable"));
        let (records, torn) = decode_records(&log);
        assert_eq!(records, vec![b"good".as_slice()]);
        assert!(torn > 0);
    }

    #[test]
    fn truncated_length_prefix_is_torn() {
        let (records, torn) = decode_records(&[0x05, 0x00, 0x00]);
        assert!(records.is_empty());
        assert_eq!(torn, 3);
    }

    #[test]
    fn oversized_length_prefix_is_torn_not_a_panic() {
        // A length prefix near u32::MAX must not overflow the range
        // arithmetic.
        let mut log = (u32::MAX - 1).to_le_bytes().to_vec();
        log.extend_from_slice(&[0u8; 12]);
        let (records, torn) = decode_records(&log);
        assert!(records.is_empty());
        assert_eq!(torn, log.len());
    }
}
