//! The detlint rule catalog (D001…D010) and the token-level passes
//! that implement it.
//!
//! Every rule reports span-accurate findings (`file:line:col`) against
//! the lexed token stream from [`crate::lexer`], plus two cheap
//! structural passes: brace-matched `#[cfg(test)]` module regions and
//! `fn` body spans. See `docs/detlint.md` for the full catalog with
//! fix-it examples.

use crate::config::DigestEntry;
use crate::lexer::{Comment, Lexed, Tok, Token};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code (`D001`…).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule code (`D001`…).
    pub code: &'static str,
    /// Short name (kebab case).
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full rule catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "D001",
        name: "unordered-container",
        summary: "HashMap/HashSet in a golden-affecting crate: iteration order is \
                  host-random; use BTreeMap/BTreeSet or sorted iteration, or allow \
                  with a written justification",
    },
    RuleInfo {
        code: "D002",
        name: "wall-clock",
        summary: "Instant/SystemTime outside the host-side crates (bench, serve): \
                  wall-clock time must never influence simulated state",
    },
    RuleInfo {
        code: "D003",
        name: "ambient-host-state",
        summary: "std::env reads or thread::current() in a golden-affecting crate: \
                  environment and host-thread identity must not influence simulation",
    },
    RuleInfo {
        code: "D004",
        name: "float-accumulation",
        summary: "floating-point accumulation (+= or .sum::<f32/f64>()) in a \
                  golden-affecting crate: association order changes the result; \
                  use integers or document the fixed order with an allow",
    },
    RuleInfo {
        code: "D005",
        name: "digest-coverage",
        summary: "a field of a digest-tracked struct (JobSpec/MachineConfig/FaultPlan) \
                  is neither serialized by the canonical serializer nor on the \
                  exemption list: new knobs must not silently alias cache entries",
    },
    RuleInfo {
        code: "D006",
        name: "undocumented-sync-site",
        summary: "a fence()/amo_release() call site in crates/core or crates/sim \
                  lacks the adjacent `// Invariant:` comment explaining what the \
                  ordering protects",
    },
    RuleInfo {
        code: "D007",
        name: "flag-parity",
        summary: "a crates/bench/src/bin binary neither constructs the shared \
                  Options CLI nor spells the standard flag set \
                  (--sanitize/--profile/--faults/--host-threads/--fidelity/\
                  --check-golden)",
    },
    RuleInfo {
        code: "D008",
        name: "undocumented-unsafe",
        summary: "`unsafe` without an adjacent `// SAFETY:` comment",
    },
    RuleInfo {
        code: "D009",
        name: "allow-without-reason",
        summary: "#[allow(...)] without an adjacent `//` reason comment",
    },
    RuleInfo {
        code: "D010",
        name: "stale-allowance",
        summary: "a detlint allowance that no longer does anything: malformed \
                  directive, unused directive/allowlist entry (--self-check), or a \
                  digest exemption that names a missing or already-covered field",
    },
];

/// Look up a rule by code.
pub fn rule_info(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

/// How a file participates in the rule set, derived from its
/// workspace-relative path (see [`classify`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Crate whose behaviour feeds golden numbers (sim, core, mem,
    /// mesh, prof, workloads, chaos, model): D001/D003/D004 apply.
    pub golden_affecting: bool,
    /// Host-side crate (bench, serve, detlint) or workspace test /
    /// example code: wall-clock use is fine (D002 does not apply).
    pub host_side: bool,
    /// Crate whose fence/AMO sync sites must carry invariant comments
    /// (core, sim): D006 applies.
    pub sync_documented: bool,
    /// A `crates/bench/src/bin/*.rs` harness binary: D007 applies.
    pub bench_bin: bool,
}

/// Crates whose behaviour determines golden numbers. `model` is on
/// the list because analytic answers are cached and diffed like any
/// other payload: the estimator must be exactly reproducible, so the
/// determinism rules (no hash iteration, no floats, no ambient host
/// state) bind it the same as the cycle engine.
pub const GOLDEN_CRATES: &[&str] = &[
    "sim",
    "core",
    "mem",
    "mesh",
    "prof",
    "workloads",
    "chaos",
    "model",
];

/// Host-side crates where wall-clock time is legitimate.
pub const HOST_CRATES: &[&str] = &["bench", "serve", "detlint"];

/// Classify a workspace-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let mut class = FileClass::default();
    if let Some(rest) = path.strip_prefix("crates/") {
        let krate = rest.split('/').next().unwrap_or("");
        class.golden_affecting = GOLDEN_CRATES.contains(&krate);
        class.host_side = HOST_CRATES.contains(&krate);
        // Integration-test files exercise sync sites without making
        // ordering decisions; only library code needs the invariant
        // comments (in-crate #[cfg(test)] mods are handled per-region).
        class.sync_documented = (krate == "core" || krate == "sim") && !rest.contains("/tests/");
        class.bench_bin = path.starts_with("crates/bench/src/bin/") && path.ends_with(".rs");
    } else if path.starts_with("xtests/")
        || path.starts_with("examples/")
        || path.starts_with("tests/")
    {
        class.host_side = true;
    }
    class
}

/// A line range (1-based, inclusive) of a `#[cfg(test)] mod` body or a
/// `fn` body.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// First line.
    pub start: u32,
    /// Last line.
    pub end: u32,
}

/// Structural facts shared by several rules.
pub struct Structure {
    /// `#[cfg(test)] mod` body regions.
    pub test_regions: Vec<Region>,
    /// `(name, region)` for every `fn` with a body.
    pub fns: Vec<(String, Region)>,
}

impl Structure {
    /// Whether `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|r| r.start <= line && line <= r.end)
    }

    /// Name of the innermost `fn` whose body contains `line`.
    pub fn enclosing_fn(&self, line: u32) -> Option<&str> {
        self.fns
            .iter()
            .filter(|(_, r)| r.start <= line && line <= r.end)
            .min_by_key(|(_, r)| r.end - r.start)
            .map(|(n, _)| n.as_str())
    }
}

/// Index of the token matching the `{` at `open` (or the last token if
/// unbalanced).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.tok.is_punct('{') {
            depth += 1;
        } else if t.tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Compute [`Structure`] for a lexed file.
pub fn structure(lexed: &Lexed) -> Structure {
    let tokens = &lexed.tokens;
    let mut test_regions = Vec::new();
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // #[cfg(test)] … mod name { … }
        if tokens[i].tok.is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.tok.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.tok.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.tok.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.tok.is_punct(')'))
            && tokens.get(i + 6).is_some_and(|t| t.tok.is_punct(']'))
        {
            let mut j = i + 7;
            // Skip any further attributes between cfg(test) and `mod`.
            while tokens.get(j).is_some_and(|t| t.tok.is_punct('#')) {
                let mut depth = 0usize;
                while let Some(t) = tokens.get(j) {
                    if t.tok.is_punct('[') {
                        depth += 1;
                    } else if t.tok.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if tokens.get(j).is_some_and(|t| t.tok.is_ident("mod")) {
                // mod name { … }
                let mut k = j + 1;
                while let Some(t) = tokens.get(k) {
                    if t.tok.is_punct('{') {
                        let close = match_brace(tokens, k);
                        test_regions.push(Region {
                            start: tokens[k].line,
                            end: tokens[close].line,
                        });
                        break;
                    }
                    if t.tok.is_punct(';') {
                        break;
                    }
                    k += 1;
                }
            }
            i += 7;
            continue;
        }
        // fn name … { … }
        if tokens[i].tok.is_ident("fn") {
            if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                let mut paren = 0i32;
                let mut k = i + 2;
                while let Some(t) = tokens.get(k) {
                    match &t.tok {
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct(';') if paren == 0 => break, // trait decl, no body
                        Tok::Punct('{') if paren == 0 => {
                            let close = match_brace(tokens, k);
                            fns.push((
                                name.clone(),
                                Region {
                                    start: tokens[k].line,
                                    end: tokens[close].line,
                                },
                            ));
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    Structure { test_regions, fns }
}

/// Whether any comment containing `marker` ends within `window` lines
/// at or above `line`.
fn comment_above(comments: &[Comment], marker: &str, line: u32, window: u32) -> bool {
    comments
        .iter()
        .any(|c| c.text.contains(marker) && c.end_line <= line && c.end_line + window >= line)
}

/// Run every per-file rule that applies under `class` and return raw
/// (un-suppressed) findings. Directive/allowlist filtering happens in
/// the driver ([`crate::scan_file`]).
pub fn per_file_rules(path: &str, lexed: &Lexed, class: &FileClass) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let comments = &lexed.comments;
    let st = structure(lexed);
    let mut out = Vec::new();
    let finding = |rule: &'static str, t: &Token, message: String| Finding {
        rule,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message,
    };

    // Collected once for D004.
    let float_names = if class.golden_affecting {
        float_typed_names(tokens)
    } else {
        Vec::new()
    };

    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            // D001 — unordered containers in golden-affecting crates.
            Tok::Ident(id) if class.golden_affecting && (id == "HashMap" || id == "HashSet") => {
                out.push(finding(
                    "D001",
                    t,
                    format!(
                        "{id} in a golden-affecting crate: iteration order is randomized \
                         per-process and can leak into golden numbers; use BTree{} or \
                         sorted iteration, or add `// detlint: allow(D001) -- <why>`",
                        if id == "HashMap" { "Map" } else { "Set" }
                    ),
                ));
            }
            // D002 — wall-clock types outside host-side crates.
            Tok::Ident(id) if !class.host_side && (id == "Instant" || id == "SystemTime") => {
                out.push(finding(
                    "D002",
                    t,
                    format!(
                        "{id} outside a host-side crate: wall-clock time must never \
                         influence simulated state (move timing to crates/bench or \
                         crates/serve, or allow with a reason)"
                    ),
                ));
            }
            // D003 — ambient host state in golden-affecting crates.
            Tok::Ident(id) if class.golden_affecting && id == "env" => {
                let from_std =
                    i >= 2 && tokens[i - 1].tok.is_op("::") && tokens[i - 2].tok.is_ident("std");
                let reads = tokens.get(i + 1).is_some_and(|n| n.tok.is_op("::"))
                    && tokens.get(i + 2).is_some_and(|n| {
                        ["var", "vars", "var_os", "vars_os", "args", "args_os"]
                            .iter()
                            .any(|m| n.tok.is_ident(m))
                    });
                if from_std || reads {
                    out.push(finding(
                        "D003",
                        t,
                        "std::env read in a golden-affecting crate: the simulation \
                         must be a pure function of MachineConfig + inputs, not of \
                         the host environment"
                            .to_string(),
                    ));
                }
            }
            Tok::Ident(id)
                if class.golden_affecting
                    && id == "current"
                    && i >= 2
                    && tokens[i - 1].tok.is_op("::")
                    && tokens[i - 2].tok.is_ident("thread") =>
            {
                out.push(finding(
                    "D003",
                    t,
                    "thread::current() in a golden-affecting crate: host-thread \
                     identity is scheduling-dependent and must not influence \
                     simulation (the window-parallel engine varies it freely)"
                        .to_string(),
                ));
            }
            // D004 — float accumulation in golden-affecting crates.
            Tok::Op(op) if class.golden_affecting && (*op == "+=" || *op == "-=") => {
                if let Some(name) = accumulation_target(tokens, i) {
                    if float_names.iter().any(|f| f == name) {
                        out.push(finding(
                            "D004",
                            t,
                            format!(
                                "float accumulation into `{name}`: addition order \
                                 changes the result in the last bits; accumulate in \
                                 integers, fix the iteration order, or allow with a \
                                 written order argument"
                            ),
                        ));
                    }
                }
            }
            // .sum::<f64>() / .sum::<f32>()
            Tok::Ident(id)
                if class.golden_affecting
                    && id == "sum"
                    && i >= 1
                    && tokens[i - 1].tok.is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.tok.is_op("::"))
                    && tokens.get(i + 2).is_some_and(|n| n.tok.is_punct('<'))
                    && tokens
                        .get(i + 3)
                        .is_some_and(|n| n.tok.is_ident("f64") || n.tok.is_ident("f32")) =>
            {
                out.push(finding(
                    "D004",
                    t,
                    "float .sum() in a golden-affecting crate: summation order \
                     changes the result in the last bits; sum integers or allow \
                     with a written order argument"
                        .to_string(),
                ));
            }
            // D006 — undocumented sync sites in core/sim.
            Tok::Ident(id) if class.sync_documented && (id == "fence" || id == "amo_release") => {
                let is_method_call = i >= 1
                    && tokens[i - 1].tok.is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.tok.is_punct('('));
                if is_method_call && !st.in_test(t.line) {
                    // A wrapper like `fn fence(&mut self) { self.api.fence() }`
                    // is delegation, not a sync decision — the invariant
                    // lives at the real call sites.
                    let delegation = st.enclosing_fn(t.line) == Some(id.as_str());
                    if !delegation && !comment_above(comments, "Invariant", t.line, 10) {
                        out.push(finding(
                            "D006",
                            t,
                            format!(
                                "{id}() without an adjacent `// Invariant:` comment: \
                                 every sync site must say what ordering it \
                                 establishes and which reader depends on it"
                            ),
                        ));
                    }
                }
            }
            // D008 — undocumented unsafe.
            Tok::Ident(id) if id == "unsafe" && !comment_above(comments, "SAFETY", t.line, 3) => {
                out.push(finding(
                    "D008",
                    t,
                    "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                ));
            }
            // D009 — #[allow(…)] without a reason comment.
            Tok::Ident(id) if id == "allow" => {
                let attr = (i >= 2
                    && tokens[i - 1].tok.is_punct('[')
                    && (tokens[i - 2].tok.is_punct('#') || tokens[i - 2].tok.is_punct('!')))
                    && tokens.get(i + 1).is_some_and(|n| n.tok.is_punct('('));
                if attr {
                    let has_reason = comments.iter().any(|c| {
                        !c.doc
                            && !c.text.trim().is_empty()
                            && (c.end_line + 1 == t.line || c.line == t.line)
                    });
                    if !has_reason {
                        out.push(finding(
                            "D009",
                            t,
                            "#[allow(...)] without a reason: add a trailing or \
                             preceding `//` comment saying why the lint is wrong here"
                                .to_string(),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    // D007 — flag parity for bench binaries.
    if class.bench_bin {
        out.extend(flag_parity(path, lexed));
    }
    out
}

/// D007: a harness binary must construct the shared [`Options`] parser
/// or spell the full standard flag set itself.
fn flag_parity(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let uses_options = tokens.windows(3).any(|w| {
        w[0].tok.is_ident("Options") && w[1].tok.is_op("::") && w[2].tok.is_ident("parse")
    });
    if uses_options {
        return Vec::new();
    }
    const REQUIRED: &[&str] = &[
        "--sanitize",
        "--profile",
        "--faults",
        "--host-threads",
        "--fidelity",
        "--check-golden",
    ];
    let literals: Vec<&str> = tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let missing: Vec<&str> = REQUIRED
        .iter()
        .copied()
        .filter(|f| !literals.contains(f))
        .collect();
    if missing.is_empty() {
        return Vec::new();
    }
    vec![Finding {
        rule: "D007",
        path: path.to_string(),
        line: 1,
        col: 1,
        message: format!(
            "harness binary neither calls Options::parse nor handles the standard \
             flags {} — new bins must not ship without the shared \
             sanitize/profile/faults/host-threads/fidelity/golden plumbing",
            missing.join(", ")
        ),
    }]
}

/// Names declared with a floating-point type (or float-literal
/// initializer) anywhere in the file: `let x: f64`, `let mut x = 0.0`,
/// struct fields / fn args `x: f64`, `sum: Vec<f64>`.
fn float_typed_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        let Tok::Ident(name) = &tokens[i].tok else {
            continue;
        };
        if name == "let" || name == "mut" {
            continue;
        }
        // `name : … f32/f64 …` up to a delimiter.
        if tokens.get(i + 1).is_some_and(|t| t.tok.is_punct(':')) {
            let mut j = i + 2;
            let mut steps = 0;
            while let Some(t) = tokens.get(j) {
                if steps > 24
                    || t.tok.is_punct(',')
                    || t.tok.is_punct(';')
                    || t.tok.is_punct('=')
                    || t.tok.is_punct(')')
                    || t.tok.is_punct('{')
                {
                    break;
                }
                if t.tok.is_ident("f32") || t.tok.is_ident("f64") {
                    names.push(name.clone());
                    break;
                }
                j += 1;
                steps += 1;
            }
        }
        // `let [mut] name = <float literal>`
        let let_decl = (i >= 1 && tokens[i - 1].tok.is_ident("let"))
            || (i >= 2 && tokens[i - 1].tok.is_ident("mut") && tokens[i - 2].tok.is_ident("let"));
        if let_decl && tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('=')) {
            let mut j = i + 2;
            if tokens.get(j).is_some_and(|t| t.tok.is_punct('-')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.tok.is_float_literal()) {
                names.push(name.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// The identifier being accumulated into by the `+=`/`-=` at `op_idx`:
/// handles `x +=`, `self.x +=`, and `x[i] +=` / `self.x[i] +=`.
fn accumulation_target(tokens: &[Token], op_idx: usize) -> Option<&str> {
    let mut i = op_idx.checked_sub(1)?;
    if tokens[i].tok.is_punct(']') {
        // Walk back over the index expression to its `[`.
        let mut depth = 0usize;
        loop {
            match tokens[i].tok {
                Tok::Punct(']') => depth += 1,
                Tok::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i = i.checked_sub(1)?;
        }
        i = i.checked_sub(1)?;
    }
    tokens[i].tok.ident()
}

// ---------------------------------------------------------------------------
// D005 — digest coverage
// ---------------------------------------------------------------------------

/// A struct field with its declaration site.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
}

/// Extract the named struct's field list from a lexed file.
pub fn struct_fields(lexed: &Lexed, struct_name: &str) -> Option<Vec<FieldDecl>> {
    let tokens = &lexed.tokens;
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].tok.is_ident("struct") && tokens[i + 1].tok.is_ident(struct_name) {
            // Find the body `{` (skipping generics); `;` means a unit
            // or tuple struct — no named fields.
            let mut j = i + 2;
            while let Some(t) = tokens.get(j) {
                if t.tok.is_punct('{') {
                    return Some(fields_in_body(tokens, j));
                }
                if t.tok.is_punct(';') || t.tok.is_punct('(') {
                    return Some(Vec::new());
                }
                j += 1;
            }
            return Some(Vec::new());
        }
        i += 1;
    }
    None
}

/// Fields at depth 1 of the brace body opening at `open`.
fn fields_in_body(tokens: &[Token], open: usize) -> Vec<FieldDecl> {
    let close = match_brace(tokens, open);
    let mut fields = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &tokens[i];
        // Skip attributes.
        if t.tok.is_punct('#') {
            let mut depth = 0usize;
            while i < close {
                if tokens[i].tok.is_punct('[') {
                    depth += 1;
                } else if tokens[i].tok.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            continue;
        }
        // Skip visibility.
        if t.tok.is_ident("pub") {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.tok.is_punct('(')) {
                while i < close && !tokens[i].tok.is_punct(')') {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        // A field: ident `:` type…,
        if let Tok::Ident(name) = &t.tok {
            if tokens.get(i + 1).is_some_and(|n| n.tok.is_punct(':')) {
                fields.push(FieldDecl {
                    name: name.clone(),
                    line: t.line,
                    col: t.col,
                });
                // Skip the type to the field-separating comma at depth 0
                // (angle brackets and parens both nest). The lexer
                // fuses `>>`/`<<` into shift operators, which in type
                // position are really two nested angle closes — e.g.
                // `Option<Box<T>>` — so they count double here.
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut j = i + 2;
                while j < close {
                    match tokens[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Op("<<") => angle += 2,
                        Tok::Op(">>") => angle -= 2,
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct(',') if angle <= 0 && paren <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    fields
}

/// All string literals inside the body of `fn name`.
pub fn fn_string_literals(lexed: &Lexed, name: &str) -> Option<Vec<String>> {
    let tokens = &lexed.tokens;
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].tok.is_ident("fn") && tokens[i + 1].tok.is_ident(name) {
            let mut paren = 0i32;
            let mut j = i + 2;
            while let Some(t) = tokens.get(j) {
                match &t.tok {
                    Tok::Punct('(') => paren += 1,
                    Tok::Punct(')') => paren -= 1,
                    Tok::Punct(';') if paren == 0 => return None,
                    Tok::Punct('{') if paren == 0 => {
                        let close = match_brace(tokens, j);
                        return Some(
                            tokens[j..=close]
                                .iter()
                                .filter_map(|t| match &t.tok {
                                    Tok::Str(s) => Some(s.clone()),
                                    _ => None,
                                })
                                .collect(),
                        );
                    }
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// True when `literal` mentions `word` with non-identifier characters
/// (or the string boundary) on both sides — so the field `seed` is
/// covered by `"seed"` and by `"seed={}"`, but `freeze` is not covered
/// by `"unfreeze"` and `flips` is not covered by `"flip="`.
fn contains_word(literal: &str, word: &str) -> bool {
    let bytes = literal.as_bytes();
    let w = word.as_bytes();
    if w.is_empty() || bytes.len() < w.len() {
        return false;
    }
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    for start in 0..=(bytes.len() - w.len()) {
        if &bytes[start..start + w.len()] == w {
            let before_ok = start == 0 || !is_ident(bytes[start - 1]);
            let after = start + w.len();
            let after_ok = after == bytes.len() || !is_ident(bytes[after]);
            if before_ok && after_ok {
                return true;
            }
        }
    }
    false
}

/// D005: check one digest-tracked struct against its canonical
/// serializer. `struct_lexed`/`ser_lexed` are the lexed declaration
/// and serializer files (which may be the same file).
pub fn digest_rule(entry: &DigestEntry, struct_lexed: &Lexed, ser_lexed: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(fields) = struct_fields(struct_lexed, &entry.struct_name) else {
        out.push(Finding {
            rule: "D005",
            path: entry.file.clone(),
            line: 1,
            col: 1,
            message: format!(
                "digest-tracked struct `{}` not found in {} — fix detlint.toml so \
                 digest coverage cannot silently stop checking",
                entry.struct_name, entry.file
            ),
        });
        return out;
    };
    let Some(literals) = fn_string_literals(ser_lexed, &entry.serializer) else {
        out.push(Finding {
            rule: "D005",
            path: entry.serializer_file.clone(),
            line: 1,
            col: 1,
            message: format!(
                "canonical serializer fn `{}` not found in {} — fix detlint.toml so \
                 digest coverage cannot silently stop checking",
                entry.serializer, entry.serializer_file
            ),
        });
        return out;
    };
    let alias = |field: &str| -> String {
        entry
            .map
            .iter()
            .find(|(f, _)| f == field)
            .map(|(_, a)| a.clone())
            .unwrap_or_else(|| field.to_string())
    };
    for f in &fields {
        let token = alias(&f.name);
        let covered = literals.iter().any(|l| contains_word(l, &token));
        let exempted = entry.exempt.iter().any(|(n, _)| n == &f.name);
        if exempted && covered {
            out.push(Finding {
                rule: "D010",
                path: entry.file.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "`{}.{}` is on the digest exemption list but `{}` serializes it — \
                     remove the stale exemption",
                    entry.struct_name, f.name, entry.serializer
                ),
            });
        } else if !exempted && !covered {
            out.push(Finding {
                rule: "D005",
                path: entry.file.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "`{}.{}` is neither serialized by `{}` nor on the exemption list: \
                     a knob outside the digest silently aliases cache entries — digest \
                     it, or exempt it in detlint.toml with a reason",
                    entry.struct_name, f.name, entry.serializer
                ),
            });
        }
    }
    // Exemptions must name real fields, or the list rots.
    for (name, _) in &entry.exempt {
        if !fields.iter().any(|f| &f.name == name) {
            out.push(Finding {
                rule: "D010",
                path: entry.file.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "digest exemption names `{}.{name}`, which is not a field of the \
                     struct — remove or fix the entry",
                    entry.struct_name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classify_knows_the_crate_map() {
        assert!(classify("crates/sim/src/engine.rs").golden_affecting);
        assert!(classify("crates/core/src/worker.rs").sync_documented);
        assert!(!classify("crates/sim/tests/engine_semantics.rs").sync_documented);
        assert!(classify("crates/sim/tests/engine_semantics.rs").golden_affecting);
        assert!(classify("crates/model/src/estimate.rs").golden_affecting);
        assert!(!classify("crates/model/src/estimate.rs").host_side);
        assert!(classify("crates/bench/src/cli.rs").host_side);
        assert!(classify("crates/bench/src/bin/table1.rs").bench_bin);
        assert!(!classify("crates/bench/src/cli.rs").bench_bin);
        assert!(!classify("crates/san/src/lib.rs").golden_affecting);
        assert!(!classify("crates/san/src/lib.rs").host_side);
        assert!(classify("tests/determinism.rs").host_side);
    }

    #[test]
    fn contains_word_respects_boundaries() {
        assert!(contains_word("seed={}", "seed"));
        assert!(contains_word("seed", "seed"));
        assert!(contains_word("a,seed=3", "seed"));
        assert!(!contains_word("unfreeze", "freeze"));
        assert!(!contains_word("flip=", "flips"));
        assert!(!contains_word("seeded", "seed"));
    }

    #[test]
    fn struct_fields_survive_fused_shift_tokens_in_types() {
        // `Option<Box<T>>` ends in a `>>` the lexer fuses into one
        // shift token; the angle-depth tracker must count it as two
        // closes or every field after it silently vanishes from D005.
        let src = r#"
struct M {
    config: Config,
    sanitizer: Option<Box<Sanitizer>>,
    profiler: Option<ProfSink>,
    faults: Option<FaultState>,
}
"#;
        let fields: Vec<String> = struct_fields(&lex(src), "M")
            .expect("struct found")
            .into_iter()
            .map(|f| f.name)
            .collect();
        assert_eq!(fields, ["config", "sanitizer", "profiler", "faults"]);
    }

    #[test]
    fn structure_finds_test_mods_and_fns() {
        let src = r#"
fn outer() {
    fn inner() { work(); }
}
#[cfg(test)]
mod tests {
    #[test]
    fn case() { assert!(true); }
}
"#;
        let st = structure(&lex(src));
        assert_eq!(st.fns.len(), 3);
        assert!(st.in_test(8));
        assert!(!st.in_test(3));
        assert_eq!(st.enclosing_fn(3), Some("inner"));
    }
}
