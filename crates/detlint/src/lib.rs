#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! mosaic-detlint — the workspace determinism-and-invariant linter.
//!
//! The repo's verification story (golden gating, the byte-identical
//! window-parallel engine, zero-cost sanitizer/profiler/chaos) rests
//! on invariants that used to be enforced only by convention. This
//! crate makes them *static*: a dependency-free pass over the
//! workspace's Rust sources with a hand-rolled lexer
//! ([`lexer`]), a rule catalog ([`rules::RULES`], codes `D001`…),
//! span-accurate diagnostics, and two escape hatches that both carry
//! mandatory written justifications:
//!
//! * an in-source directive on (or directly above) the offending
//!   line — spelled `detlint: allow(D00x) -- reason` after a `//`
//!   comment marker;
//! * a checked-in [`config::Config`] (`detlint.toml`) with path-level
//!   allows and the digest-coverage specs.
//!
//! `detlint --workspace` exits nonzero on any non-allowlisted finding;
//! `--self-check` additionally fails on allowances that no longer
//! match anything, so the lists cannot rot. The dynamic checkers in
//! `crates/san` catch what a given run executes; this pass catches the
//! whole class before anything runs.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::{classify, FileClass, Finding};

use std::path::{Path, PathBuf};

/// A parsed in-source `detlint: allow(D00x) -- reason` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// The rule code it suppresses.
    pub rule: String,
    /// 1-based line of the directive comment (its last line, for
    /// block comments). The directive covers findings on this line
    /// (trailing form) and the next line (standalone form).
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Whether the directive suppressed at least one finding.
    pub used: bool,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that survived in-source directives (config allows are
    /// applied by the workspace driver).
    pub findings: Vec<Finding>,
    /// All well-formed directives, with usage marked.
    pub directives: Vec<Directive>,
}

/// Parse in-source directives out of the comment stream; malformed
/// ones (recognized prefix but unparseable) become D010 findings.
fn parse_directives(path: &str, comments: &[lexer::Comment]) -> (Vec<Directive>, Vec<Finding>) {
    let mut directives = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("detlint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .and_then(|(code, tail)| {
                let code = code.trim();
                let reason_ok = tail
                    .trim_start()
                    .strip_prefix("--")
                    .is_some_and(|r| !r.trim().is_empty());
                let code_ok =
                    code.len() == 4 && code.starts_with('D') && rules::rule_info(code).is_some();
                (code_ok && reason_ok).then(|| code.to_string())
            });
        match parsed {
            Some(rule) => directives.push(Directive {
                rule,
                line: c.end_line,
                col: c.col,
                used: false,
            }),
            None => findings.push(Finding {
                rule: "D010",
                path: path.to_string(),
                line: c.line,
                col: c.col,
                message: "malformed detlint directive: expected \
                          `detlint: allow(D0xx) -- reason` with a known rule code \
                          and a non-empty reason"
                    .to_string(),
            }),
        }
    }
    (directives, findings)
}

/// Scan one file's source under the given [`FileClass`], applying
/// in-source directives (but not the workspace config). `path` is the
/// label used in diagnostics.
pub fn scan_file(path: &str, source: &str, class: &FileClass) -> FileScan {
    let lexed = lexer::lex(source);
    let raw = rules::per_file_rules(path, &lexed, class);
    let (mut directives, malformed) = parse_directives(path, &lexed.comments);
    let mut findings = Vec::new();
    for f in raw {
        let suppressed = directives
            .iter_mut()
            .find(|d| d.rule == f.rule && (d.line == f.line || d.line + 1 == f.line));
        match suppressed {
            Some(d) => d.used = true,
            None => findings.push(f),
        }
    }
    findings.extend(malformed);
    FileScan {
        findings,
        directives,
    }
}

/// Everything a workspace scan produced, before exit-code policy.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by `(path, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files: usize,
    /// Count of findings suppressed by in-source directives and config
    /// allows (for the summary line).
    pub suppressed: usize,
}

/// Walk the workspace at `root` and run every rule. `self_check`
/// additionally reports allowances that no longer suppress anything
/// (rule D010) so the lists cannot rot.
pub fn scan_workspace(root: &Path, cfg: &Config, self_check: bool) -> Result<Report, String> {
    let mut files = Vec::new();
    for dir in ["crates", "xtests", "examples", "tests"] {
        collect_rs_files(&root.join(dir), root, &mut files)?;
    }
    files.sort();
    scan_files(root, &files, cfg, self_check)
}

/// Scan an explicit list of workspace-relative `.rs` paths.
pub fn scan_files(
    root: &Path,
    rel_paths: &[String],
    cfg: &Config,
    self_check: bool,
) -> Result<Report, String> {
    let mut report = Report::default();
    let mut config_used = vec![false; cfg.allows.len()];
    for rel in rel_paths {
        let class = classify(rel);
        let source = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        let scan = scan_file(rel, &source, &class);
        report.files += 1;
        report.suppressed += scan.directives.iter().filter(|d| d.used).count();
        for f in scan.findings {
            let allowed = cfg
                .allows
                .iter()
                .position(|a| a.rule == f.rule && a.path == *rel);
            match allowed {
                Some(i) => {
                    config_used[i] = true;
                    report.suppressed += 1;
                }
                None => report.findings.push(f),
            }
        }
        if self_check {
            for d in scan.directives.iter().filter(|d| !d.used) {
                report.findings.push(Finding {
                    rule: "D010",
                    path: rel.clone(),
                    line: d.line,
                    col: d.col,
                    message: format!(
                        "unused directive: nothing on this or the next line triggers \
                         {} any more — remove the allow",
                        d.rule
                    ),
                });
            }
        }
    }
    // D005 digest coverage — cross-file, driven by the config.
    for entry in &cfg.digests {
        let struct_src = std::fs::read_to_string(root.join(&entry.file))
            .map_err(|e| format!("{}: {e}", entry.file))?;
        let struct_lexed = lexer::lex(&struct_src);
        let ser_lexed = if entry.serializer_file == entry.file {
            None
        } else {
            let s = std::fs::read_to_string(root.join(&entry.serializer_file))
                .map_err(|e| format!("{}: {e}", entry.serializer_file))?;
            Some(lexer::lex(&s))
        };
        report.findings.extend(rules::digest_rule(
            entry,
            &struct_lexed,
            ser_lexed.as_ref().unwrap_or(&struct_lexed),
        ));
    }
    if self_check {
        for (i, a) in cfg.allows.iter().enumerate() {
            if !root.join(&a.path).is_file() {
                report.findings.push(Finding {
                    rule: "D010",
                    path: "detlint.toml".to_string(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "allowlist entry ({} in {}) points at a file that does not \
                         exist — remove or fix the entry",
                        a.rule, a.path
                    ),
                });
            } else if !config_used[i] && rel_paths.iter().any(|p| p == &a.path) {
                report.findings.push(Finding {
                    rule: "D010",
                    path: "detlint.toml".to_string(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "allowlist entry ({} in {}) suppressed nothing this scan — \
                         the finding it covered is gone; remove the entry",
                        a.rule, a.path
                    ),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Recursively collect workspace-relative `.rs` paths under `dir`,
/// skipping build output, vendored stand-ins, and detlint's own lint
/// fixtures (which violate rules on purpose).
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            let rel = rel_path(&path, root);
            if rel.starts_with("crates/detlint/tests/fixtures") {
                continue;
            }
            collect_rs_files(&path, root, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_path(&path, root));
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn rel_path(path: &Path, root: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden_class() -> FileClass {
        classify("crates/sim/src/fake.rs")
    }

    #[test]
    fn inline_directive_suppresses_same_and_next_line() {
        let trailing = "use std::collections::HashMap; // detlint: allow(D001) -- keyed only\n";
        let scan = scan_file("crates/sim/src/x.rs", trailing, &golden_class());
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
        assert!(scan.directives[0].used);

        let standalone = "// detlint: allow(D001) -- keyed only\nuse std::collections::HashMap;\n";
        let scan = scan_file("crates/sim/src/x.rs", standalone, &golden_class());
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);

        let far = "// detlint: allow(D001) -- keyed only\n\nuse std::collections::HashMap;\n";
        let scan = scan_file("crates/sim/src/x.rs", far, &golden_class());
        assert_eq!(
            scan.findings.len(),
            1,
            "directive must not act at a distance"
        );
        assert!(!scan.directives[0].used);
    }

    #[test]
    fn malformed_directives_are_their_own_finding() {
        for bad in [
            "// detlint: allow(D001)\n",            // no reason
            "// detlint: allow(D999) -- reason\n",  // unknown rule
            "// detlint: permit(D001) -- reason\n", // wrong verb
        ] {
            let scan = scan_file("crates/sim/src/x.rs", bad, &golden_class());
            assert_eq!(scan.findings.len(), 1, "{bad:?}");
            assert_eq!(scan.findings[0].rule, "D010", "{bad:?}");
        }
    }

    #[test]
    fn directive_for_a_different_rule_does_not_suppress() {
        let src = "use std::collections::HashMap; // detlint: allow(D002) -- wrong code\n";
        let scan = scan_file("crates/sim/src/x.rs", src, &golden_class());
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].rule, "D001");
    }
}
