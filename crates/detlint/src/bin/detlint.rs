//! `detlint` — run the workspace determinism-and-invariant linter.
//!
//! ```text
//! detlint --workspace [--self-check] [--root DIR] [--config FILE]
//! detlint PATH [PATH...]          # lint specific files (workspace-relative)
//! detlint --list-rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or config error.

use mosaic_detlint::{rules, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: detlint [--workspace] [--self-check] [--root DIR] [--config FILE] [PATH...]\n       \
         detlint --list-rules\n\n  \
         --workspace    lint every workspace source (crates/, xtests/, examples/, tests/)\n  \
         --self-check   also fail on allowances that no longer suppress anything\n  \
         --root DIR     workspace root (default: current directory)\n  \
         --config FILE  allowlist/digest config (default: <root>/detlint.toml)\n  \
         --list-rules   print the rule catalog and exit\n  \
         PATH           lint specific files, given workspace-relative"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut self_check = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--self-check" => self_check = true,
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => usage(),
            },
            "--config" => match args.next() {
                Some(f) => config_path = Some(PathBuf::from(f)),
                None => usage(),
            },
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{}  {:24} {}", r.code, r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => paths.push(other.to_string()),
        }
    }
    if !workspace && paths.is_empty() {
        usage();
    }

    let config_path = config_path.unwrap_or_else(|| root.join("detlint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("detlint: config error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = if workspace {
        mosaic_detlint::scan_workspace(&root, &cfg, self_check)
    } else {
        mosaic_detlint::scan_files(&root, &paths, &cfg, self_check)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    eprintln!(
        "detlint: {} file(s), {} finding(s), {} suppressed by allowances{}",
        report.files,
        report.findings.len(),
        report.suppressed,
        if self_check { " (self-check on)" } else { "" }
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
