//! `detlint.toml` — the checked-in allowlist and digest-coverage
//! configuration, parsed by a minimal hand-rolled TOML-subset reader
//! (pure std, same ethos as `jsonlite`).
//!
//! Supported grammar (deliberately small — the config is data, not a
//! programming language):
//!
//! ```toml
//! [[allow]]
//! rule = "D001"
//! path = "crates/mem/src/dram.rs"
//! reason = "keyed access only; never iterated"
//!
//! [[digest]]
//! struct = "JobSpec"
//! file = "crates/serve/src/job.rs"
//! serializer = "canonical_json"
//! serializer_file = "crates/serve/src/job.rs"
//! exempt = ["host_threads -- byte-identical at every value"]
//! map = ["flips=flip"]
//! ```
//!
//! `#` comments, blank lines, double-quoted strings, and (possibly
//! multi-line) arrays of strings. Anything else is a hard error:
//! a config the linter cannot fully understand must not silently
//! weaken the gate.

use std::path::Path;

/// One `[[allow]]` entry: suppress every finding of `rule` in `path`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule code, e.g. `D001`.
    pub rule: String,
    /// Workspace-relative file path (forward slashes).
    pub path: String,
    /// Written justification; must be non-empty.
    pub reason: String,
}

/// One `[[digest]]` entry: a struct whose every field must be covered
/// by the named canonical serializer or explicitly exempted.
#[derive(Debug, Clone)]
pub struct DigestEntry {
    /// Struct name, e.g. `JobSpec`.
    pub struct_name: String,
    /// Workspace-relative file declaring the struct.
    pub file: String,
    /// Function whose string literals constitute digest coverage.
    pub serializer: String,
    /// Workspace-relative file containing the serializer.
    pub serializer_file: String,
    /// Exempt fields, each spelled `name -- reason`; the reason is
    /// mandatory (an exemption is a claim someone must be able to
    /// audit).
    pub exempt: Vec<(String, String)>,
    /// Field-to-token aliases `field=token` for serializers whose
    /// spelling differs from the field name (e.g. `flips=flip`).
    pub map: Vec<(String, String)>,
}

/// Parsed `detlint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path-level allowlist.
    pub allows: Vec<AllowEntry>,
    /// Digest-coverage specs.
    pub digests: Vec<DigestEntry>,
}

/// A raw key/value table collected by the reader.
#[derive(Debug, Default)]
struct Table {
    name: String,
    line: u32,
    entries: Vec<(String, Value)>,
}

#[derive(Debug)]
enum Value {
    Str(String),
    Array(Vec<String>),
}

impl Table {
    fn str_field(&self, key: &str, path: &Path) -> Result<String, String> {
        for (k, v) in &self.entries {
            if k == key {
                return match v {
                    Value::Str(s) => Ok(s.clone()),
                    Value::Array(_) => Err(format!(
                        "{}:{}: key `{key}` must be a string",
                        path.display(),
                        self.line
                    )),
                };
            }
        }
        Err(format!(
            "{}:{}: [[{}]] entry is missing required key `{key}`",
            path.display(),
            self.line,
            self.name
        ))
    }

    fn array_field(&self, key: &str, path: &Path) -> Result<Vec<String>, String> {
        for (k, v) in &self.entries {
            if k == key {
                return match v {
                    Value::Array(a) => Ok(a.clone()),
                    Value::Str(_) => Err(format!(
                        "{}:{}: key `{key}` must be an array",
                        path.display(),
                        self.line
                    )),
                };
            }
        }
        Ok(Vec::new())
    }
}

impl Config {
    /// Parse the config at `path`. A missing file is an empty config
    /// (a workspace with no allowances is legal); a malformed file is
    /// an error.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Config::default()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Config::parse(&text, path)
    }

    /// Parse config `text` (path is for error messages only).
    pub fn parse(text: &str, path: &Path) -> Result<Config, String> {
        let tables = read_tables(text, path)?;
        let mut cfg = Config::default();
        for t in &tables {
            match t.name.as_str() {
                "allow" => {
                    let entry = AllowEntry {
                        rule: t.str_field("rule", path)?,
                        path: t.str_field("path", path)?,
                        reason: t.str_field("reason", path)?,
                    };
                    if entry.reason.trim().is_empty() {
                        return Err(format!(
                            "{}:{}: [[allow]] for {} needs a non-empty reason",
                            path.display(),
                            t.line,
                            entry.path
                        ));
                    }
                    if !entry.rule.starts_with('D') || entry.rule.len() != 4 {
                        return Err(format!(
                            "{}:{}: rule {:?} is not a D0xx code",
                            path.display(),
                            t.line,
                            entry.rule
                        ));
                    }
                    cfg.allows.push(entry);
                }
                "digest" => {
                    let exempt = split_reasoned(t.array_field("exempt", path)?, path, t.line)?;
                    let map = t
                        .array_field("map", path)?
                        .iter()
                        .map(|m| match m.split_once('=') {
                            Some((f, a)) => Ok((f.trim().to_string(), a.trim().to_string())),
                            None => Err(format!(
                                "{}:{}: map entry {m:?} must be `field=token`",
                                path.display(),
                                t.line
                            )),
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    cfg.digests.push(DigestEntry {
                        struct_name: t.str_field("struct", path)?,
                        file: t.str_field("file", path)?,
                        serializer: t.str_field("serializer", path)?,
                        serializer_file: t.str_field("serializer_file", path)?,
                        exempt,
                        map,
                    });
                }
                other => {
                    return Err(format!(
                        "{}:{}: unknown table [[{other}]] (expected allow or digest)",
                        path.display(),
                        t.line
                    ));
                }
            }
        }
        Ok(cfg)
    }
}

/// Split `name -- reason` exemption strings, requiring the reason.
fn split_reasoned(
    raw: Vec<String>,
    path: &Path,
    line: u32,
) -> Result<Vec<(String, String)>, String> {
    raw.iter()
        .map(|e| match e.split_once("--") {
            Some((name, reason)) if !reason.trim().is_empty() => {
                Ok((name.trim().to_string(), reason.trim().to_string()))
            }
            _ => Err(format!(
                "{}:{line}: exemption {e:?} must be `field -- reason` (the reason is mandatory)",
                path.display()
            )),
        })
        .collect()
}

/// Read the table stream. Top-level keys outside a table are errors.
fn read_tables(text: &str, path: &Path) -> Result<Vec<Table>, String> {
    let mut tables: Vec<Table> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            tables.push(Table {
                name: name.trim().to_string(),
                line: lineno,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, mut value)) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        else {
            return Err(format!(
                "{}:{lineno}: expected `key = value` or `[[table]]`, got {line:?}",
                path.display()
            ));
        };
        let Some(table) = tables.last_mut() else {
            return Err(format!(
                "{}:{lineno}: key `{key}` outside any [[table]]",
                path.display()
            ));
        };
        // Multi-line arrays: keep consuming until the closing bracket.
        if value.starts_with('[') && !balanced_array(&value) {
            for (_, cont) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
                if balanced_array(&value) {
                    break;
                }
            }
        }
        let parsed = parse_value(&value)
            .map_err(|e| format!("{}:{lineno}: bad value for `{key}`: {e}", path.display()))?;
        table.entries.push((key, parsed));
    }
    Ok(tables)
}

/// Strip a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// True when every `[` in a (partial) array literal has its `]`.
fn balanced_array(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth == 0
}

fn parse_value(value: &str) -> Result<Value, String> {
    let v = value.trim();
    if let Some(inner) = v.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if rest.starts_with(',') {
                rest = rest[1..].trim_start();
                continue;
            }
            let (s, consumed) = parse_string(rest)?;
            items.push(s);
            rest = rest[consumed..].trim_start();
        }
        return Ok(Value::Array(items));
    }
    let (s, consumed) = parse_string(v)?;
    if !v[consumed..].trim().is_empty() {
        return Err(format!("trailing garbage after string in {v:?}"));
    }
    Ok(Value::Str(s))
}

/// Parse one double-quoted string at the start of `s`; returns the
/// unescaped contents and the byte length consumed.
fn parse_string(s: &str) -> Result<(String, usize), String> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(format!("expected a double-quoted string at {s:?}")),
    }
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                '"' => '"',
                '\\' => '\\',
                other => other,
            });
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, i + 1)),
            _ => out.push(c),
        }
    }
    Err(format!("unterminated string in {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("detlint.toml")
    }

    #[test]
    fn parses_allow_and_digest_tables() {
        let text = r#"
# comment
[[allow]]
rule = "D001"
path = "crates/mem/src/dram.rs"  # trailing comment
reason = "keyed access only"

[[digest]]
struct = "JobSpec"
file = "crates/serve/src/job.rs"
serializer = "canonical_json"
serializer_file = "crates/serve/src/job.rs"
exempt = [
    "host_threads -- byte-identical at every value",
]
map = ["flips=flip"]
"#;
        let cfg = Config::parse(text, &p()).unwrap();
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].rule, "D001");
        assert_eq!(cfg.digests.len(), 1);
        assert_eq!(cfg.digests[0].exempt[0].0, "host_threads");
        assert_eq!(cfg.digests[0].map[0], ("flips".into(), "flip".into()));
    }

    #[test]
    fn reason_is_mandatory() {
        let text = "[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\nreason = \"  \"\n";
        assert!(Config::parse(text, &p()).is_err());
        let text = "[[digest]]\nstruct = \"S\"\nfile = \"f\"\nserializer = \"s\"\nserializer_file = \"f\"\nexempt = [\"field\"]\n";
        assert!(Config::parse(text, &p()).is_err());
    }

    #[test]
    fn unknown_tables_and_stray_keys_are_errors() {
        assert!(Config::parse("[[typo]]\nrule = \"D001\"\n", &p()).is_err());
        assert!(Config::parse("rule = \"D001\"\n", &p()).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text = "[[allow]]\nrule = \"D001\"\npath = \"a#b.rs\"\nreason = \"uses # in path\"\n";
        let cfg = Config::parse(text, &p()).unwrap();
        assert_eq!(cfg.allows[0].path, "a#b.rs");
    }
}
