//! A hand-rolled Rust lexer: just enough token structure for the
//! detlint rules, with exact line/column spans.
//!
//! The lexer understands everything that could make a naive
//! substring scan lie about source positions or token identity:
//! line/block comments (nested), doc comments, string / raw-string /
//! byte-string / char literals, lifetimes vs. char literals, numeric
//! literals (including float forms), and maximal-munch compound
//! operators (`::`, `+=`, `->`, …). It deliberately does **not**
//! build a syntax tree — the rules in [`crate::rules`] are written
//! against the token stream plus a few cheap structural passes
//! (brace-matched regions for `#[cfg(test)]` modules and `fn` bodies).

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `HashMap`, `unsafe`, …).
    Ident(String),
    /// A string literal (cooked, raw, or byte); `text` is the
    /// *contents* without quotes or escapes resolved.
    Str(String),
    /// A character or byte literal (contents unexamined).
    Char,
    /// A numeric literal, original spelling preserved (so rules can
    /// recognize float forms like `0.0`, `1e9`, `2f64`).
    Num(String),
    /// A lifetime such as `'a` (or the loop-label form `'outer`).
    Lifetime,
    /// A multi-character operator from a fixed set (`::`, `+=`, `-=`,
    /// `*=`, `/=`, `%=`, `->`, `=>`, `==`, `!=`, `<=`, `>=`, `&&`,
    /// `||`, `..`, `<<`, `>>`).
    Op(&'static str),
    /// Any other single punctuation character.
    Punct(char),
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// A comment (line, block, or doc), kept out of the token stream but
/// preserved for the comment-driven rules (invariant comments,
/// `SAFETY:` notes, reason comments, `detlint: allow` directives).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (equals `line` for line comments).
    pub end_line: u32,
    /// 1-based column of the opening marker.
    pub col: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// Lexer output: code tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Compound operators recognized by maximal munch, longest first.
const OPS: &[&str] = &[
    "::", "+=", "-=", "*=", "/=", "%=", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>",
];

struct Cursor<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `source` into tokens and comments. Never fails: malformed
/// input degrades to punctuation tokens rather than aborting, so a
/// half-edited file still gets best-effort diagnostics.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        src: source,
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let doc = matches!(cur.peek(2), Some('/') | Some('!'));
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            let trimmed = text.trim_start_matches('/').trim_start_matches('!');
            out.comments.push(Comment {
                text: trimmed.to_string(),
                line,
                end_line: line,
                col,
                doc,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let doc = matches!(cur.peek(2), Some('*') | Some('!')) && cur.peek(3) != Some('/');
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                text,
                line,
                end_line: cur.line,
                col,
                doc,
            });
            continue;
        }
        // Raw strings: r"..." / r#"..."# (with b prefix variants).
        if (c == 'r' || c == 'b') && is_raw_string_start(&cur) {
            let (tok, consumed_to) = lex_raw_string(&cur);
            while cur.i < consumed_to {
                cur.bump();
            }
            out.tokens.push(Token { tok, line, col });
            continue;
        }
        // Byte string b"..." / byte char b'x'.
        if c == 'b' && matches!(cur.peek(1), Some('"') | Some('\'')) {
            cur.bump(); // consume the b; fall through via the quote char
            let q = cur.peek(0).unwrap_or('"');
            let tok = lex_quoted(&mut cur, q);
            out.tokens.push(Token { tok, line, col });
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut s = String::new();
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    s.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Ident(s),
                line,
                col,
            });
            continue;
        }
        // Numbers (including float forms; suffix letters are folded in).
        if c.is_ascii_digit() {
            let mut s = String::new();
            let mut seen_dot = false;
            while let Some(ch) = cur.peek(0) {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    s.push(ch);
                    cur.bump();
                } else if ch == '.'
                    && !seen_dot
                    && cur.peek(1) != Some('.')
                    && !cur.peek(1).is_some_and(is_ident_start)
                {
                    // `1..n` is a range and `1.max(2)` a method call;
                    // `1.0` (and trailing `1.`) are floats. One dot max.
                    seen_dot = true;
                    s.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Num(s),
                line,
                col,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            let tok = lex_quoted(&mut cur, '"');
            out.tokens.push(Token { tok, line, col });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = cur.peek(1);
            let is_char = match next {
                Some('\\') => true,
                Some(ch) if is_ident_start(ch) => cur.peek(2) == Some('\''),
                Some(_) => true,
                None => false,
            };
            if is_char {
                let tok = lex_quoted(&mut cur, '\'');
                out.tokens.push(Token {
                    tok: if matches!(tok, Tok::Str(_)) {
                        Tok::Char
                    } else {
                        tok
                    },
                    line,
                    col,
                });
            } else {
                cur.bump(); // '
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line,
                    col,
                });
            }
            continue;
        }
        // Compound operators (maximal munch over the fixed set).
        let mut matched = None;
        for op in OPS {
            let mut ok = true;
            for (k, oc) in op.chars().enumerate() {
                if cur.peek(k) != Some(oc) {
                    ok = false;
                    break;
                }
            }
            if ok {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.len() {
                cur.bump();
            }
            out.tokens.push(Token {
                tok: Tok::Op(op),
                line,
                col,
            });
            continue;
        }
        // Anything else: single punctuation char.
        cur.bump();
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
            col,
        });
    }
    let _ = cur.src;
    out
}

/// Is the cursor at `r"`/`r#"` or `br"`/`br#"`?
fn is_raw_string_start(cur: &Cursor<'_>) -> bool {
    let mut j = 0;
    if cur.peek(0) == Some('b') {
        j = 1;
    }
    if cur.peek(j) != Some('r') {
        return false;
    }
    j += 1;
    loop {
        match cur.peek(j) {
            Some('#') => j += 1,
            Some('"') => return true,
            _ => return false,
        }
    }
}

/// Lex a raw string starting at the cursor; returns the token and the
/// char index just past the closing delimiter.
fn lex_raw_string(cur: &Cursor<'_>) -> (Tok, usize) {
    let mut j = cur.i;
    if cur.chars.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // r
    let mut hashes = 0;
    while cur.chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let start = j;
    loop {
        match cur.chars.get(j) {
            None => {
                let text: String = cur.chars[start..j].iter().collect();
                return (Tok::Str(text), j);
            }
            Some('"') => {
                let mut k = j + 1;
                let mut seen = 0;
                while seen < hashes && cur.chars.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    let text: String = cur.chars[start..j].iter().collect();
                    return (Tok::Str(text), k);
                }
                j += 1;
            }
            Some(_) => j += 1,
        }
    }
}

/// Lex a quoted literal (string or char) starting at the opening
/// quote; handles escapes. Returns `Tok::Str` with the raw contents.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char) -> Tok {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            cur.bump();
            if let Some(esc) = cur.peek(0) {
                text.push('\\');
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        if ch == quote {
            cur.bump();
            break;
        }
        text.push(ch);
        cur.bump();
    }
    if quote == '\'' {
        Tok::Char
    } else {
        Tok::Str(text)
    }
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }

    /// True if this token is the compound operator `op`.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(self, Tok::Op(o) if *o == op)
    }

    /// True for numeric literals spelled as floats (`1.0`, `2e8`,
    /// `3f32`, `4f64`) — integer literals return false.
    pub fn is_float_literal(&self) -> bool {
        match self {
            Tok::Num(s) => {
                s.contains('.')
                    || s.ends_with("f32")
                    || s.ends_with("f64")
                    || (s.contains(['e', 'E'])
                        && !s.starts_with("0x")
                        && !s.starts_with("0X")
                        && !s.starts_with("0b"))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime))
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let lexed = lex("a\n  bc\n");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn compound_ops_munch_maximally() {
        let lexed = lex("a += b::c;");
        assert!(lexed.tokens.iter().any(|t| t.tok.is_op("+=")));
        assert!(lexed.tokens.iter().any(|t| t.tok.is_op("::")));
    }

    #[test]
    fn float_literal_detection() {
        assert!(lex("0.5").tokens[0].tok.is_float_literal());
        assert!(lex("1f64").tokens[0].tok.is_float_literal());
        assert!(!lex("42").tokens[0].tok.is_float_literal());
        assert!(!lex("0xep").tokens[0].tok.is_float_literal());
    }

    #[test]
    fn method_call_on_int_literal_is_not_a_float() {
        let lexed = lex("1.max(2)");
        assert_eq!(lexed.tokens[0].tok, Tok::Num("1".into()));
        assert!(lexed.tokens.iter().any(|t| t.tok.is_ident("max")));
    }
}
