//! D007 fixture: a harness binary with ad-hoc flag handling that
//! misses most of the standard set.

fn main() {
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--check-golden" => {}
            other => panic!("unknown option {other:?}"),
        }
    }
}
