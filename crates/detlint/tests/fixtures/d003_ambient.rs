//! D003 fixture: ambient host state in a golden-affecting crate.

fn configured() -> bool {
    std::env::var("MOSAIC_DEBUG").is_ok()
}

fn who() -> std::thread::ThreadId {
    std::thread::current().id()
}

mod clean {
    // A user-defined `env` module is not the host environment.
    mod env {
        pub fn lookup(_k: &str) -> u32 {
            0
        }
    }
    pub fn ok() -> u32 {
        env::lookup("x")
    }
}
