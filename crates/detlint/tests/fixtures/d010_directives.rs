//! D010 fixture: a malformed directive and an unused one.

// detlint: allow(D001)
fn missing_reason() {}

// detlint: allow(D002) -- suppresses nothing on the next line
fn unused_allow() {}
