//! D001 fixture: unordered containers in a golden-affecting crate.
use std::collections::HashMap;
use std::collections::BTreeMap;

fn build() -> BTreeMap<u32, u32> {
    let mut ordered = BTreeMap::new();
    ordered.insert(1, 2);
    let _rogue: HashMap<u32, u32> = HashMap::new();
    ordered
}
