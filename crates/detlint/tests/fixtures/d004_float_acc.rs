//! D004 fixture: float accumulation in a golden-affecting crate.

fn bad(xs: &[f64]) -> f64 {
    let mut acc: f64 = 0.0;
    for x in xs {
        acc += x;
    }
    acc + xs.iter().sum::<f64>()
}

fn clean(xs: &[u64]) -> u64 {
    let mut total: u64 = 0;
    for x in xs {
        total += x;
    }
    total + xs.iter().sum::<u64>()
}
