//! D002 fixture: wall-clock types. A finding in a golden-affecting
//! crate, clean when the same source is classified host-side.
use std::time::Instant;

fn elapsed_ms() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_millis()
}
