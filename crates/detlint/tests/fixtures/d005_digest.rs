//! D005 fixture: a digest-tracked struct and its canonical serializer.

pub struct Spec {
    pub seed: u64,
    pub flips: u32,
    pub host_threads: usize,
}

impl Spec {
    pub fn canonical(&self) -> String {
        format!("seed={},flip={}", self.seed, self.flips)
    }
}
