//! D007 fixture (clean): constructs the shared Options CLI.

fn main() {
    let opts = Options::parse();
    run(opts);
}
