//! D009 fixture: allow attributes with and without reasons.

#[allow(dead_code)]
fn bad() {}

#[allow(dead_code)] // fixture scaffolding, never called
fn good() {}
