//! D006 fixture: sync sites with and without invariant comments.

struct Core {
    api: Api,
}
struct Api;
impl Api {
    fn fence(&mut self) {}
    fn amo_release(&mut self, _v: u32) {}
}

impl Core {
    fn bad(&mut self) {
        self.api.fence();
    }

    fn good(&mut self) {
        // Invariant: all prior stores drain before the counter
        // decrement becomes visible to the parent.
        self.api.amo_release(1);
    }

    fn fence(&mut self) {
        self.api.fence(); // delegation: invariant lives at call sites
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn exercised_not_decided() {
        let mut c = super::Core { api: super::Api };
        c.api.fence();
    }
}
