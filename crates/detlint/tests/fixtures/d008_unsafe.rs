//! D008 fixture: unsafe blocks, documented and not.

fn bad(p: *const u32) -> u32 {
    unsafe { *p }
}

fn good(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
