//! Fixture-driven integration tests: one positive (violating) and one
//! negative (clean) case per rule, with span-accurate assertions.
//!
//! The fixtures live in `tests/fixtures/` and are excluded from the
//! workspace scan (they violate rules on purpose); here each is read
//! from disk and scanned under a path *label* that selects the file
//! class being tested — classification is by label, not location.

use mosaic_detlint::config::DigestEntry;
use mosaic_detlint::lexer::lex;
use mosaic_detlint::rules::digest_rule;
use mosaic_detlint::{classify, scan_file, Config, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Scan a fixture as if it lived at `label` in the workspace.
fn scan(name: &str, label: &str) -> Vec<Finding> {
    scan_file(label, &fixture(name), &classify(label)).findings
}

fn spans(findings: &[Finding], rule: &str) -> Vec<(u32, u32)> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.col))
        .collect()
}

#[test]
fn d001_unordered_containers_in_golden_crates() {
    let f = scan("d001_unordered.rs", "crates/sim/src/fixture.rs");
    assert_eq!(spans(&f, "D001"), vec![(2, 23), (8, 17), (8, 37)], "{f:?}");
    // BTreeMap never triggers.
    assert!(f.iter().all(|x| !x.message.contains("BTreeMap in")));
    // The same source is fine in a non-golden crate.
    let clean = scan("d001_unordered.rs", "crates/serve/src/fixture.rs");
    assert!(spans(&clean, "D001").is_empty(), "{clean:?}");
}

#[test]
fn d002_wall_clock_outside_host_crates() {
    let f = scan("d002_wall_clock.rs", "crates/mesh/src/fixture.rs");
    assert_eq!(spans(&f, "D002"), vec![(3, 16), (6, 14)], "{f:?}");
    let clean = scan("d002_wall_clock.rs", "crates/bench/src/fixture.rs");
    assert!(spans(&clean, "D002").is_empty(), "{clean:?}");
}

#[test]
fn d003_ambient_host_state() {
    let f = scan("d003_ambient.rs", "crates/core/src/fixture.rs");
    // std::env::var read and thread::current(); the user-defined `env`
    // module in the same file must not trip the rule.
    assert_eq!(spans(&f, "D003"), vec![(4, 10), (8, 18)], "{f:?}");
}

#[test]
fn d004_float_accumulation() {
    let f = scan("d004_float_acc.rs", "crates/workloads/src/fixture.rs");
    // `acc += x` (the op token) and `.sum::<f64>()` (the `sum` ident);
    // the integer twin of each is clean.
    assert_eq!(spans(&f, "D004"), vec![(6, 13), (8, 21)], "{f:?}");
}

#[test]
fn d005_digest_coverage_and_stale_exemptions() {
    let lexed = lex(&fixture("d005_digest.rs"));
    let entry = |exempt: &[(&str, &str)], map: &[(&str, &str)]| DigestEntry {
        struct_name: "Spec".into(),
        file: "crates/serve/src/fixture.rs".into(),
        serializer: "canonical".into(),
        serializer_file: "crates/serve/src/fixture.rs".into(),
        exempt: exempt
            .iter()
            .map(|(n, r)| (n.to_string(), r.to_string()))
            .collect(),
        map: map
            .iter()
            .map(|(f, t)| (f.to_string(), t.to_string()))
            .collect(),
    };

    // Fully specified: flips serializes as `flip=`, host_threads exempt.
    let ok = digest_rule(
        &entry(&[("host_threads", "byte-identical")], &[("flips", "flip")]),
        &lexed,
        &lexed,
    );
    assert!(ok.is_empty(), "{ok:?}");

    // Without the alias and exemption both uncovered fields are D005,
    // anchored at the field declarations (`flip=` does not cover
    // `flips` — word-boundary matching).
    let bare = digest_rule(&entry(&[], &[]), &lexed, &lexed);
    assert_eq!(spans(&bare, "D005"), vec![(5, 9), (6, 9)], "{bare:?}");

    // Exempting a field the serializer covers is a stale allowance.
    let stale = digest_rule(
        &entry(
            &[("seed", "wrong"), ("host_threads", "ok")],
            &[("flips", "flip")],
        ),
        &lexed,
        &lexed,
    );
    assert_eq!(spans(&stale, "D010"), vec![(4, 9)], "{stale:?}");

    // Exempting a nonexistent field is also D010.
    let ghost = digest_rule(
        &entry(
            &[("host_threads", "ok"), ("nope", "gone")],
            &[("flips", "flip")],
        ),
        &lexed,
        &lexed,
    );
    assert_eq!(spans(&ghost, "D010"), vec![(1, 1)], "{ghost:?}");
}

#[test]
fn d006_sync_sites_need_invariant_comments() {
    let f = scan("d006_sync_sites.rs", "crates/sim/src/fixture.rs");
    // Only the undocumented call in `bad` fires: the documented
    // `amo_release`, the delegating `fence` wrapper, and the
    // #[cfg(test)] call are all exempt.
    assert_eq!(spans(&f, "D006"), vec![(14, 18)], "{f:?}");
    // Integration-test files are not sync_documented at all.
    let clean = scan("d006_sync_sites.rs", "crates/sim/tests/fixture.rs");
    assert!(spans(&clean, "D006").is_empty(), "{clean:?}");
}

#[test]
fn d007_flag_parity_for_bench_bins() {
    let f = scan("d007_bare_bin.rs", "crates/bench/src/bin/fixture.rs");
    assert_eq!(spans(&f, "D007"), vec![(1, 1)], "{f:?}");
    let msg = &f.iter().find(|x| x.rule == "D007").unwrap().message;
    for flag in ["--sanitize", "--profile", "--faults", "--host-threads"] {
        assert!(msg.contains(flag), "missing {flag} in {msg}");
    }
    assert!(
        !msg.contains("--check-golden, "),
        "handled flag listed: {msg}"
    );

    // Constructing the shared Options parser satisfies the rule.
    let clean = scan("d007_shared_cli.rs", "crates/bench/src/bin/fixture.rs");
    assert!(spans(&clean, "D007").is_empty(), "{clean:?}");
    // Non-bin bench sources are out of scope.
    let lib = scan("d007_bare_bin.rs", "crates/bench/src/fixture.rs");
    assert!(spans(&lib, "D007").is_empty(), "{lib:?}");
}

#[test]
fn d008_unsafe_needs_safety_comment() {
    let f = scan("d008_unsafe.rs", "crates/mem/src/fixture.rs");
    assert_eq!(spans(&f, "D008"), vec![(4, 5)], "{f:?}");
}

#[test]
fn d009_allow_needs_reason() {
    let f = scan("d009_allow.rs", "crates/core/src/fixture.rs");
    assert_eq!(spans(&f, "D009"), vec![(3, 3)], "{f:?}");
}

#[test]
fn d010_malformed_and_unused_directives() {
    // Malformed directives surface in any scan; unused ones only under
    // --self-check, which lives in the workspace driver.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let rel = "tests/fixtures/d010_directives.rs".to_string();
    let report = mosaic_detlint::scan_files(root, &[rel], &Config::default(), true).expect("scan");
    assert_eq!(
        spans(&report.findings, "D010"),
        vec![(3, 1), (6, 1)],
        "{report:?}"
    );

    let lax = mosaic_detlint::scan_files(
        root,
        &["tests/fixtures/d010_directives.rs".to_string()],
        &Config::default(),
        false,
    )
    .expect("scan");
    // Without self-check only the malformed one is reported.
    assert_eq!(spans(&lax.findings, "D010"), vec![(3, 1)], "{lax:?}");
}

#[test]
fn cli_exit_codes_gate_on_findings() {
    let bin = env!("CARGO_BIN_EXE_detlint");
    let root = env!("CARGO_MANIFEST_DIR");
    let run = |path: &str| {
        std::process::Command::new(bin)
            .args(["--root", root, path])
            .output()
            .expect("run detlint")
    };
    let dirty = run("tests/fixtures/d008_unsafe.rs");
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(
        stdout.contains("tests/fixtures/d008_unsafe.rs:4:5: D008:"),
        "{stdout}"
    );
    let clean = run("tests/fixtures/d007_shared_cli.rs");
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
}
