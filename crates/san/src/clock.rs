//! Vector clocks for happens-before tracking.

/// A vector clock over the machine's cores: `clock[c]` is the highest
/// epoch of core `c` whose effects are known to have happened before
/// the point this clock describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The all-zero clock for a `cores`-core machine.
    pub fn new(cores: usize) -> Self {
        VectorClock(vec![0; cores])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component for `core`.
    pub fn get(&self, core: usize) -> u64 {
        self.0[core]
    }

    /// Set `core`'s component.
    pub fn set(&mut self, core: usize, epoch: u64) {
        self.0[core] = epoch;
    }

    /// Advance `core`'s component by one (a release point).
    pub fn tick(&mut self, core: usize) {
        self.0[core] += 1;
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `true` when an access by `core` at `epoch` happened before the
    /// point this clock describes (i.e. `epoch <= self[core]`).
    pub fn covers(&self, core: usize, epoch: u64) -> bool {
        epoch <= self.0[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new(3);
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new(3);
        b.set(0, 2);
        b.set(1, 7);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (5, 7, 1));
    }

    #[test]
    fn join_is_idempotent_and_monotone() {
        let mut a = VectorClock::new(2);
        a.set(0, 3);
        let snapshot = a.clone();
        a.join(&snapshot);
        assert_eq!(a, snapshot, "self-join must not change the clock");
        let mut b = VectorClock::new(2);
        b.set(1, 9);
        a.join(&b);
        assert!(a.get(0) >= snapshot.get(0) && a.get(1) >= b.get(1));
    }

    #[test]
    fn covers_tracks_epoch_order() {
        let mut c = VectorClock::new(2);
        c.set(1, 4);
        assert!(c.covers(1, 4));
        assert!(c.covers(1, 3));
        assert!(!c.covers(1, 5));
        assert!(c.covers(0, 0));
        assert!(!c.covers(0, 1));
    }

    #[test]
    fn tick_advances_only_one_component() {
        let mut c = VectorClock::new(3);
        c.tick(1);
        c.tick(1);
        assert_eq!((c.get(0), c.get(1), c.get(2)), (0, 2, 0));
    }

    #[test]
    fn publish_then_acquire_transfers_order() {
        // Model of the release/acquire protocol: core 0 fences
        // (snapshot + tick), publishes the snapshot on a sync word,
        // core 1 acquire-joins it; core 1's clock must now cover every
        // pre-fence epoch of core 0 but not the post-fence one.
        let mut c0 = VectorClock::new(2);
        c0.set(0, 1); // initial epoch
        let released = c0.clone();
        c0.tick(0); // post-fence accesses get epoch 2
        let mut c1 = VectorClock::new(2);
        c1.set(1, 1);
        c1.join(&released);
        assert!(c1.covers(0, 1), "pre-fence access must be ordered");
        assert!(!c1.covers(0, 2), "post-fence access must not be");
    }
}
