#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # mosaic-san
//!
//! A TSan/ASan-style memory-model sanitizer for the simulated machine:
//! a host-side checking layer over every timed load, store, and AMO
//! that validates the delicate invariants the SPM optimizations rely
//! on, without charging a single simulated cycle (golden numbers are
//! byte-identical with the sanitizer on or off).
//!
//! ## Checks
//!
//! - **Happens-before race detection** (vector clocks, FastTrack
//!   style): a `fence` snapshots the core's clock as its *release*
//!   clock and advances its epoch; stores and AMOs publish the release
//!   clock on synchronization words; loads and AMOs of such words
//!   acquire-join it (loads act as acquires because the modeled cores
//!   issue blocking in-order loads). Unordered write/write, read/write,
//!   or write/read pairs on ordinary DRAM data words are reported with
//!   both cores, cycles, and the address.
//! - **Synchronization classification**: DRAM words become
//!   synchronization words the first time they are targeted by an AMO
//!   (ready counters, the barrier) — the transition itself is
//!   race-checked — and the runtime declares always-sync regions
//!   (queue blocks, the queue directory, the hunger board) where
//!   intentional benign races such as unlocked emptiness peeks live.
//!   SPM words are never data-race-checked (each SPM has a single
//!   owner for private data; shared SPM words — mailboxes, queue
//!   blocks — are protocol state) but they do transfer clocks, so
//!   release edges through SPM mailboxes order subsequent DRAM reads.
//!   Workloads annotate intentional benign races (e.g. pull-direction
//!   BFS peeking at the level array while claimers update it) with the
//!   relaxed-atomic accessors ([`Sanitizer::load_relaxed`],
//!   [`Sanitizer::store_relaxed`]): relaxed↔relaxed pairs never race,
//!   relaxed↔plain pairs still do, and relaxed accesses carry no
//!   ordering — exactly C++ `memory_order_relaxed`.
//! - **SPM layout discipline**: remote accesses into another core's
//!   private `spm_reserve` region; shadow-stack tracking of frame
//!   pushes/pops that catches SPM stack growth crossing the
//!   DRAM-overflow threshold, frames pushed out of placement order,
//!   DRAM stack exhaustion, and pops of an empty stack.
//! - **Read-only captured environments**: the runtime freezes each
//!   environment block after materializing it; any later store into a
//!   frozen word is reported. Freezes expire when the owning frame
//!   pops.
//! - **Lock discipline** on the queue locks: release without a
//!   matching acquire (double release), release by a non-owner,
//!   release stores issued with the store queue non-empty (a missing
//!   release fence), and locks still held at exit.
//!
//! The checker deliberately treats a plain store as publishing the
//! core's *release* (post-fence) clock rather than its full clock:
//! that is exactly the ordering the hardware guarantees (stores drain
//! in order after a fence), so a reader polling an unfenced mailbox
//! store never gains spurious edges from it.

mod clock;
mod notes;
mod report;
mod spec;

pub use clock::VectorClock;
pub use notes::{Note, NoteSink};
pub use report::{DiagKind, Diagnostic, SanReport, MAX_DETAILED};
pub use spec::LayoutSpec;

use mosaic_mem::{Addr, AddrMap, AmoOp, Region};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// One recorded access to a data word.
#[derive(Debug, Clone, Copy)]
struct Access {
    core: usize,
    epoch: u64,
    cycle: u64,
    /// Issued through the relaxed-atomic API: unordered pairs where
    /// both sides are relaxed are not races (C++ `memory_order_relaxed`
    /// semantics); relaxed vs. plain still is.
    relaxed: bool,
}

/// Per-word metadata for ordinary (non-sync) DRAM words.
#[derive(Debug, Default)]
struct WordState {
    write: Option<Access>,
    /// Most recent read per core (at most one entry per core).
    reads: Vec<Access>,
}

/// Host-side mirror of one core's stack engine.
#[derive(Debug, Default)]
struct ShadowStack {
    frames: Vec<(u64, u32, bool)>,
    spm_words: u32,
    dram_words: u32,
}

/// The sanitizer. Owned by the `Machine` when enabled; see the crate
/// docs for the checks it performs.
#[derive(Debug)]
pub struct Sanitizer {
    map: AddrMap,
    cores: usize,
    spec: Option<LayoutSpec>,
    /// Per-core happens-before clock.
    clocks: Vec<VectorClock>,
    /// Per-core release clock: snapshot of `clocks[c]` at its last
    /// fence (what that core's drained stores are ordered after).
    release: Vec<VectorClock>,
    /// Stores issued since the core's last fence (for the unfenced
    /// lock-release check).
    stores_since_fence: Vec<u64>,
    /// Ordinary DRAM data words.
    words: HashMap<u64, WordState>,
    /// Published clocks of sync and SPM words, by raw address.
    sync_clocks: HashMap<u64, VectorClock>,
    /// DRAM words sticky-classified as synchronization by an AMO.
    sync_dram: HashSet<u64>,
    /// Frozen (read-only) environment words.
    frozen: HashSet<u64>,
    /// Current holder of each declared lock word.
    lock_owner: BTreeMap<u64, Option<usize>>,
    shadow: Vec<ShadowStack>,
    notes: NoteSink,
    /// Cycle of the most recent hook (used for note-derived findings).
    now: u64,
    diagnostics: Vec<Diagnostic>,
    dedup: HashSet<(DiagKind, u64)>,
    counts: BTreeMap<DiagKind, u64>,
    total: u64,
    ops: u64,
}

impl Sanitizer {
    /// A fresh sanitizer for a `cores`-core machine addressed by `map`.
    ///
    /// Cores start at epoch 1 so that an access by core `c` is *not*
    /// considered ordered before other cores until they actually join
    /// `c`'s clock.
    pub fn new(map: AddrMap, cores: usize) -> Self {
        let mut clocks = Vec::with_capacity(cores);
        for c in 0..cores {
            let mut vc = VectorClock::new(cores);
            vc.set(c, 1);
            clocks.push(vc);
        }
        Sanitizer {
            map,
            cores,
            spec: None,
            clocks,
            release: vec![VectorClock::new(cores); cores],
            stores_since_fence: vec![0; cores],
            words: HashMap::new(),
            sync_clocks: HashMap::new(),
            sync_dram: HashSet::new(),
            frozen: HashSet::new(),
            lock_owner: BTreeMap::new(),
            shadow: (0..cores).map(|_| ShadowStack::default()).collect(),
            notes: Arc::new(Mutex::new(Vec::new())),
            now: 0,
            diagnostics: Vec::new(),
            dedup: HashSet::new(),
            counts: BTreeMap::new(),
            total: 0,
            ops: 0,
        }
    }

    /// Install the runtime's layout description (enables the SPM, lock,
    /// and stack checks).
    pub fn set_spec(&mut self, spec: LayoutSpec) {
        for &lk in &spec.lock_words {
            self.lock_owner.insert(lk, None);
        }
        self.spec = Some(spec);
    }

    /// The shared note queue the runtime should push annotations into.
    pub fn note_sink(&self) -> NoteSink {
        self.notes.clone()
    }

    // ------------------------------------------------------------------
    // Hooks (called by the Machine on every timed access)
    // ------------------------------------------------------------------

    /// Observe a timed load.
    pub fn load(&mut self, core: usize, addr: Addr, cycle: u64) {
        self.enter(cycle);
        self.ops += 1;
        let raw = addr.raw();
        match self.map.decode(addr) {
            Region::Spm {
                core: owner,
                offset,
            } => {
                self.check_remote_spm(core, owner as usize, offset, raw, cycle);
                self.join(core, raw);
            }
            Region::Dram { .. } => {
                if self.is_sync(raw) {
                    self.join(core, raw);
                } else {
                    self.check_data_read(core, raw, cycle, false);
                }
            }
        }
    }

    /// Observe a timed relaxed-atomic load: no acquire edge, and not a
    /// race against other relaxed accesses (the annotation for
    /// intentional benign races, e.g. Ligra-style pull BFS peeking at
    /// the level array while claimers update it).
    pub fn load_relaxed(&mut self, core: usize, addr: Addr, cycle: u64) {
        self.enter(cycle);
        self.ops += 1;
        let raw = addr.raw();
        match self.map.decode(addr) {
            Region::Spm {
                core: owner,
                offset,
            } => {
                self.check_remote_spm(core, owner as usize, offset, raw, cycle);
            }
            Region::Dram { .. } => {
                if !self.is_sync(raw) {
                    self.check_data_read(core, raw, cycle, true);
                }
            }
        }
    }

    /// Observe a timed store.
    pub fn store(&mut self, core: usize, addr: Addr, _value: u32, cycle: u64) {
        self.enter(cycle);
        self.ops += 1;
        let raw = addr.raw();
        if self.frozen.contains(&raw) {
            self.diag(
                DiagKind::ReadOnlyWrite,
                raw,
                core,
                cycle,
                None,
                None,
                "store into a frozen captured environment".into(),
            );
        }
        self.check_lock_store(core, raw, _value, cycle);
        match self.map.decode(addr) {
            Region::Spm {
                core: owner,
                offset,
            } => {
                self.check_remote_spm(core, owner as usize, offset, raw, cycle);
                self.publish(core, raw);
            }
            Region::Dram { .. } => {
                if self.is_sync(raw) {
                    self.publish(core, raw);
                } else {
                    self.check_data_write(core, raw, cycle);
                }
            }
        }
        self.stores_since_fence[core] += 1;
    }

    /// Observe a timed relaxed-atomic store: no release edge, and not a
    /// race against other relaxed accesses. Frozen-environment and lock
    /// checks still apply — relaxing the ordering does not make those
    /// writes legal.
    pub fn store_relaxed(&mut self, core: usize, addr: Addr, value: u32, cycle: u64) {
        self.enter(cycle);
        self.ops += 1;
        let raw = addr.raw();
        if self.frozen.contains(&raw) {
            self.diag(
                DiagKind::ReadOnlyWrite,
                raw,
                core,
                cycle,
                None,
                None,
                "relaxed store into a frozen captured environment".into(),
            );
        }
        self.check_lock_store(core, raw, value, cycle);
        match self.map.decode(addr) {
            Region::Spm {
                core: owner,
                offset,
            } => {
                self.check_remote_spm(core, owner as usize, offset, raw, cycle);
            }
            Region::Dram { .. } => {
                if !self.is_sync(raw) {
                    self.check_data_write_kinded(core, raw, cycle, "", true);
                }
            }
        }
        // The store still occupies the store queue, so it counts
        // against the unfenced-lock-release check.
        self.stores_since_fence[core] += 1;
    }

    /// Observe a timed AMO (`old` is the value it read).
    pub fn amo(&mut self, core: usize, addr: Addr, op: AmoOp, operand: u32, old: u32, cycle: u64) {
        self.enter(cycle);
        self.ops += 1;
        let raw = addr.raw();
        if self.frozen.contains(&raw) {
            self.diag(
                DiagKind::ReadOnlyWrite,
                raw,
                core,
                cycle,
                None,
                None,
                "AMO on a frozen captured environment".into(),
            );
        }
        // Lock acquire: a successful amoswap of nonzero over zero.
        if op == AmoOp::Swap
            && operand != 0
            && old == 0
            && self.spec.as_ref().is_some_and(|s| s.is_lock_word(raw))
        {
            self.lock_owner.insert(raw, Some(core));
        }
        match self.map.decode(addr) {
            Region::Spm {
                core: owner,
                offset,
            } => {
                self.check_remote_spm(core, owner as usize, offset, raw, cycle);
                self.join(core, raw);
                self.publish(core, raw);
            }
            Region::Dram { .. } => {
                if !self.is_sync(raw) {
                    // Sticky classification: the first AMO turns a data
                    // word into a synchronization word. The transition is
                    // checked against earlier *writes* only — earlier plain
                    // loads of a soon-to-be-sync word are the intended
                    // acquire-side spin pattern (readers acquire on every
                    // load in this memory model), not a race.
                    self.check_sync_transition(core, raw, cycle);
                    self.words.remove(&raw);
                    self.sync_dram.insert(raw);
                }
                self.join(core, raw);
                self.publish(core, raw);
            }
        }
    }

    /// Observe a fence (store-queue drain): snapshot the release clock
    /// and start a new epoch.
    pub fn fence(&mut self, core: usize, cycle: u64) {
        self.enter(cycle);
        self.release[core] = self.clocks[core].clone();
        self.clocks[core].tick(core);
        self.stores_since_fence[core] = 0;
    }

    /// End-of-run checks (locks still held).
    pub fn finish(&mut self) {
        self.drain_notes();
        let held: Vec<(u64, usize)> = self
            .lock_owner
            .iter()
            .filter_map(|(&a, &o)| o.map(|c| (a, c)))
            .collect();
        for (addr, core) in held {
            let now = self.now;
            self.diag(
                DiagKind::LockHeldAtExit,
                addr,
                core,
                now,
                None,
                None,
                "lock never released before shutdown".into(),
            );
        }
    }

    /// The aggregated report.
    pub fn report(&self) -> SanReport {
        SanReport {
            diagnostics: self.diagnostics.clone(),
            total: self.total,
            counts: self.counts.clone(),
            ops: self.ops,
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn enter(&mut self, cycle: u64) {
        self.now = self.now.max(cycle);
        self.drain_notes();
    }

    fn is_sync(&self, raw: u64) -> bool {
        self.sync_dram.contains(&raw) || self.spec.as_ref().is_some_and(|s| s.in_sync_range(raw))
    }

    /// Acquire-join the published clock of a sync/SPM word.
    fn join(&mut self, core: usize, raw: u64) {
        if let Some(l) = self.sync_clocks.get(&raw) {
            self.clocks[core].join(l);
        }
    }

    /// Publish the core's release clock on a sync/SPM word.
    fn publish(&mut self, core: usize, raw: u64) {
        let l = self
            .sync_clocks
            .entry(raw)
            .or_insert_with(|| VectorClock::new(self.cores));
        l.join(&self.release[core]);
    }

    fn check_remote_spm(&mut self, core: usize, owner: usize, offset: u32, raw: u64, cycle: u64) {
        if owner == core {
            return;
        }
        if self.spec.as_ref().is_some_and(|s| s.in_user_region(offset)) {
            self.diag(
                DiagKind::RemoteUserSpm,
                raw,
                core,
                cycle,
                Some(owner),
                None,
                format!("remote access into core {owner}'s spm_reserve region"),
            );
        }
    }

    fn check_data_read(&mut self, core: usize, raw: u64, cycle: u64, relaxed: bool) {
        let epoch = self.clocks[core].get(core);
        let mut race: Option<Access> = None;
        let st = self.words.entry(raw).or_default();
        if let Some(w) = st.write {
            if w.core != core
                && !(relaxed && w.relaxed)
                && !self.clocks[core].covers(w.core, w.epoch)
            {
                race = Some(w);
            }
        }
        let me = Access {
            core,
            epoch,
            cycle,
            relaxed,
        };
        match st.reads.iter_mut().find(|r| r.core == core) {
            Some(r) => *r = me,
            None => st.reads.push(me),
        }
        if let Some(w) = race {
            self.diag(
                DiagKind::RaceWriteRead,
                raw,
                core,
                cycle,
                Some(w.core),
                Some(w.cycle),
                "read unordered with earlier write".into(),
            );
        }
    }

    fn check_data_write(&mut self, core: usize, raw: u64, cycle: u64) {
        self.check_data_write_kinded(core, raw, cycle, "", false);
    }

    /// Write-style race check (also used for the AMO sticky
    /// transition); records the write and clears reads.
    fn check_data_write_kinded(
        &mut self,
        core: usize,
        raw: u64,
        cycle: u64,
        why: &str,
        relaxed: bool,
    ) {
        let epoch = self.clocks[core].get(core);
        let mut races: Vec<(DiagKind, Access)> = Vec::new();
        let st = self.words.entry(raw).or_default();
        if let Some(w) = st.write {
            if w.core != core
                && !(relaxed && w.relaxed)
                && !self.clocks[core].covers(w.core, w.epoch)
            {
                races.push((DiagKind::RaceWriteWrite, w));
            }
        }
        for &r in &st.reads {
            if r.core != core
                && !(relaxed && r.relaxed)
                && !self.clocks[core].covers(r.core, r.epoch)
            {
                races.push((DiagKind::RaceReadWrite, r));
            }
        }
        st.write = Some(Access {
            core,
            epoch,
            cycle,
            relaxed,
        });
        st.reads.clear();
        for (kind, other) in races {
            self.diag(
                kind,
                raw,
                core,
                cycle,
                Some(other.core),
                Some(other.cycle),
                if why.is_empty() {
                    "write unordered with earlier access".into()
                } else {
                    format!("write unordered with earlier access; {why}")
                },
            );
        }
    }

    /// Race check applied when the first AMO converts a data word into a
    /// sync word: the initializing plain store must be ordered before the
    /// AMO (a release edge must have published it). Prior plain *loads*
    /// are deliberately not checked — spinning on a word before its first
    /// AMO is the acquire-side handshake pattern.
    fn check_sync_transition(&mut self, core: usize, raw: u64, cycle: u64) {
        let Some(st) = self.words.get(&raw) else {
            return;
        };
        let Some(w) = st.write else { return };
        if w.core != core && !self.clocks[core].covers(w.core, w.epoch) {
            self.diag(
                DiagKind::RaceWriteWrite,
                raw,
                core,
                cycle,
                Some(w.core),
                Some(w.cycle),
                "first AMO on this word unordered with its initializing store".into(),
            );
        }
    }

    /// Lock-discipline checks on plain stores to declared lock words.
    fn check_lock_store(&mut self, core: usize, raw: u64, value: u32, cycle: u64) {
        if !self.spec.as_ref().is_some_and(|s| s.is_lock_word(raw)) {
            return;
        }
        if value != 0 {
            // The runtime only ever releases locks with plain stores;
            // acquires go through amoswap.
            self.diag(
                DiagKind::LockReleaseWithoutAcquire,
                raw,
                core,
                cycle,
                None,
                None,
                format!("plain store of {value} to a lock word"),
            );
            return;
        }
        let owner = self.lock_owner.get(&raw).copied().flatten();
        match owner {
            None => self.diag(
                DiagKind::LockReleaseWithoutAcquire,
                raw,
                core,
                cycle,
                None,
                None,
                "release of an unheld lock (double release?)".into(),
            ),
            Some(o) if o != core => self.diag(
                DiagKind::LockReleaseByNonOwner,
                raw,
                core,
                cycle,
                Some(o),
                None,
                format!("lock is held by core {o}"),
            ),
            Some(_) => {
                let outstanding = self.stores_since_fence[core];
                if outstanding > 0 {
                    self.diag(
                        DiagKind::UnfencedLockRelease,
                        raw,
                        core,
                        cycle,
                        None,
                        None,
                        format!("{outstanding} store(s) issued since the last fence"),
                    );
                }
            }
        }
        self.lock_owner.insert(raw, None);
    }

    fn drain_notes(&mut self) {
        // `try_lock` is unnecessary: the engine serializes core
        // execution, so nothing holds this lock while a hook runs.
        let drained: Vec<Note> = std::mem::take(&mut *self.notes.lock());
        for note in drained {
            self.apply_note(note);
        }
    }

    fn apply_note(&mut self, note: Note) {
        match note {
            Note::StackPush {
                core,
                base,
                words,
                in_dram,
            } => self.stack_push(core, base, words, in_dram),
            Note::StackPop {
                core,
                base,
                words,
                in_dram,
            } => self.stack_pop(core, base, words, in_dram),
            Note::FreezeEnv {
                core: _,
                base,
                words,
            } => {
                for i in 0..words as u64 {
                    self.frozen.insert(base + i * 4);
                }
            }
        }
    }

    fn stack_push(&mut self, core: usize, base: u64, words: u32, in_dram: bool) {
        let now = self.now;
        let shadow = &mut self.shadow[core];
        shadow.frames.push((base, words, in_dram));
        if in_dram {
            shadow.dram_words += words;
            let cap = self.spec.as_ref().map(|s| s.dram_stack_words);
            let depth = shadow.dram_words;
            if let Some(cap) = cap {
                if depth > cap {
                    self.diag(
                        DiagKind::DramStackExhausted,
                        base,
                        core,
                        now,
                        None,
                        None,
                        format!("DRAM stack depth {depth} words exceeds buffer of {cap}"),
                    );
                }
            }
        } else {
            let overflowed = shadow.dram_words > 0;
            shadow.spm_words += words;
            let depth = shadow.spm_words;
            if overflowed {
                self.diag(
                    DiagKind::SpmFrameWhileOverflowed,
                    base,
                    core,
                    now,
                    None,
                    None,
                    "SPM frame pushed while DRAM overflow frames are live".into(),
                );
            }
            let cap = self.spec.as_ref().map(|s| s.spm_stack_words);
            if let Some(cap) = cap {
                if depth > cap {
                    self.diag(
                        DiagKind::SpmStackOverflow,
                        base,
                        core,
                        now,
                        None,
                        None,
                        format!(
                            "SPM stack depth {depth} words crossed the overflow \
                             threshold ({cap} words) without redirecting to DRAM"
                        ),
                    );
                }
            }
        }
    }

    fn stack_pop(&mut self, core: usize, base: u64, words: u32, in_dram: bool) {
        let now = self.now;
        let shadow = &mut self.shadow[core];
        if shadow.frames.pop().is_none() {
            self.diag(
                DiagKind::StackUnderflow,
                base,
                core,
                now,
                None,
                None,
                "pop of an empty stack".into(),
            );
            return;
        }
        if in_dram {
            shadow.dram_words = shadow.dram_words.saturating_sub(words);
        } else {
            shadow.spm_words = shadow.spm_words.saturating_sub(words);
        }
        // The frame's words are dead: clear all per-word metadata so
        // reuse by a later (unordered but well-nested) frame does not
        // report stale races, and sticky sync classification does not
        // leak onto unrelated data.
        for i in 0..words as u64 {
            let a = base + i * 4;
            self.words.remove(&a);
            self.sync_clocks.remove(&a);
            self.sync_dram.remove(&a);
            self.frozen.remove(&a);
        }
    }

    #[allow(clippy::too_many_arguments)] // one flat record per diagnostic
    fn diag(
        &mut self,
        kind: DiagKind,
        addr: u64,
        core: usize,
        cycle: u64,
        other_core: Option<usize>,
        other_cycle: Option<u64>,
        detail: String,
    ) {
        self.total += 1;
        *self.counts.entry(kind).or_insert(0) += 1;
        if self.dedup.insert((kind, addr)) && self.diagnostics.len() < MAX_DETAILED {
            self.diagnostics.push(Diagnostic {
                kind,
                addr,
                core,
                cycle,
                other_core,
                other_cycle,
                detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san(cores: usize) -> Sanitizer {
        Sanitizer::new(AddrMap::new(cores as u32, 4096), cores)
    }

    fn dram(off: u64) -> Addr {
        Addr(AddrMap::DRAM_BASE + off)
    }

    #[test]
    fn unordered_writes_race() {
        let mut s = san(2);
        s.store(0, dram(0), 1, 10);
        s.store(1, dram(0), 2, 20);
        let r = s.report();
        assert_eq!(r.total, 1);
        assert_eq!(r.diagnostics[0].kind, DiagKind::RaceWriteWrite);
        assert_eq!(r.diagnostics[0].core, 1);
        assert_eq!(r.diagnostics[0].other_core, Some(0));
        assert_eq!(r.diagnostics[0].cycle, 20);
        assert_eq!(r.diagnostics[0].other_cycle, Some(10));
    }

    #[test]
    fn unordered_read_after_write_races() {
        let mut s = san(2);
        s.store(0, dram(4), 1, 10);
        s.load(1, dram(4), 20);
        assert_eq!(s.report().diagnostics[0].kind, DiagKind::RaceWriteRead);
    }

    #[test]
    fn write_after_unordered_read_races() {
        let mut s = san(2);
        s.load(0, dram(8), 10);
        s.store(1, dram(8), 1, 20);
        assert_eq!(s.report().diagnostics[0].kind, DiagKind::RaceReadWrite);
    }

    #[test]
    fn release_acquire_handshake_is_clean() {
        // Core 0: store data; fence; amo flag. Core 1: amo flag
        // (acquire-join), then read data. This is the runtime's
        // ready-counter protocol and must not be reported.
        let mut s = san(2);
        let data = dram(0);
        let flag = dram(64);
        s.store(0, data, 99, 10);
        s.fence(0, 11);
        s.amo(0, flag, AmoOp::Swap, 1, 0, 12);
        s.amo(1, flag, AmoOp::Swap, 0, 1, 20);
        s.load(1, data, 21);
        assert!(s.report().is_clean(), "{}", s.report());
    }

    #[test]
    fn spin_load_on_amoed_word_acquires() {
        // The wait() pattern: the flag became a sync word via the AMO;
        // a plain spin-load must still acquire-join the release clock.
        let mut s = san(2);
        let data = dram(0);
        let flag = dram(64);
        s.amo(0, flag, AmoOp::Add, 1, 0, 5); // classify as sync
        s.store(0, data, 7, 10);
        s.fence(0, 11);
        s.amo(0, flag, AmoOp::Sub, 1, 1, 12); // release-decrement
        s.load(1, flag, 20); // spin read
        s.load(1, data, 21);
        assert!(s.report().is_clean(), "{}", s.report());
    }

    #[test]
    fn unfenced_publication_still_races() {
        // Missing fence before the flag AMO: the data store is not
        // covered by the published clock, so the remote read races.
        let mut s = san(2);
        let data = dram(0);
        let flag = dram(64);
        s.store(0, data, 99, 10);
        s.amo(0, flag, AmoOp::Swap, 1, 0, 12); // no fence!
        s.amo(1, flag, AmoOp::Swap, 0, 1, 20);
        s.load(1, data, 21);
        let r = s.report();
        assert_eq!(r.total, 1);
        assert_eq!(r.diagnostics[0].kind, DiagKind::RaceWriteRead);
    }

    #[test]
    fn declared_sync_ranges_suppress_data_checks() {
        let mut s = san(2);
        s.set_spec(LayoutSpec {
            sync_ranges: vec![(dram(0).raw(), dram(64).raw())],
            ..LayoutSpec::default()
        });
        // Unordered plain accesses inside the declared range: the
        // unlocked queue-length peek pattern. No findings.
        s.store(0, dram(4), 1, 10);
        s.load(1, dram(4), 20);
        s.store(1, dram(4), 2, 30);
        assert!(s.report().is_clean());
    }

    #[test]
    fn frozen_env_write_is_reported_once_per_word() {
        let mut s = san(1);
        let base = dram(128).raw();
        s.note_sink().lock().push(Note::FreezeEnv {
            core: 0,
            base,
            words: 2,
        });
        s.store(0, Addr(base), 1, 10);
        s.store(0, Addr(base), 2, 11); // same word: deduplicated detail
        s.store(0, Addr(base + 4), 3, 12);
        let r = s.report();
        assert_eq!(r.counts[&DiagKind::ReadOnlyWrite], 3);
        assert_eq!(r.diagnostics.len(), 2, "one detailed entry per word");
    }

    #[test]
    fn freeze_expires_when_frame_pops() {
        let mut s = san(1);
        s.set_spec(LayoutSpec {
            spm_stack_words: 64,
            dram_stack_words: 64,
            ..LayoutSpec::default()
        });
        let base = dram(128).raw();
        let sink = s.note_sink();
        sink.lock().push(Note::StackPush {
            core: 0,
            base,
            words: 2,
            in_dram: true,
        });
        sink.lock().push(Note::FreezeEnv {
            core: 0,
            base,
            words: 2,
        });
        sink.lock().push(Note::StackPop {
            core: 0,
            base,
            words: 2,
            in_dram: true,
        });
        s.store(0, Addr(base), 1, 10);
        assert!(s.report().is_clean(), "pop must unfreeze the words");
    }

    #[test]
    fn lock_discipline_catches_double_release_and_non_owner() {
        let mut s = san(2);
        let lk = dram(256).raw();
        s.set_spec(LayoutSpec {
            lock_words: vec![lk],
            sync_ranges: vec![(lk, lk + 4)],
            ..LayoutSpec::default()
        });
        s.amo(0, Addr(lk), AmoOp::Swap, 1, 0, 10); // core 0 acquires
        s.fence(1, 19);
        s.store(1, Addr(lk), 0, 20); // non-owner release
        s.fence(0, 29);
        s.store(0, Addr(lk), 0, 30); // double release (lock now free)
        let r = s.report();
        assert_eq!(r.counts[&DiagKind::LockReleaseByNonOwner], 1);
        assert_eq!(r.counts[&DiagKind::LockReleaseWithoutAcquire], 1);
    }

    #[test]
    fn unfenced_lock_release_is_reported() {
        let mut s = san(1);
        let lk = dram(256).raw();
        s.set_spec(LayoutSpec {
            lock_words: vec![lk],
            sync_ranges: vec![(lk, lk + 4)],
            ..LayoutSpec::default()
        });
        s.amo(0, Addr(lk), AmoOp::Swap, 1, 0, 10);
        s.store(0, dram(0), 7, 11); // critical-section store
        s.store(0, Addr(lk), 0, 12); // release WITHOUT fence
        let r = s.report();
        assert_eq!(r.counts[&DiagKind::UnfencedLockRelease], 1);
    }

    #[test]
    fn lock_held_at_exit_is_reported() {
        let mut s = san(1);
        let lk = dram(256).raw();
        s.set_spec(LayoutSpec {
            lock_words: vec![lk],
            sync_ranges: vec![(lk, lk + 4)],
            ..LayoutSpec::default()
        });
        s.amo(0, Addr(lk), AmoOp::Swap, 1, 0, 10);
        s.finish();
        assert_eq!(s.report().counts[&DiagKind::LockHeldAtExit], 1);
    }

    #[test]
    fn shadow_stack_catches_overflow_threshold_crossing() {
        // The injected stack-overflow negative test: a 20-word SPM
        // frame on a 16-word SPM stack must produce exactly one
        // SpmStackOverflow finding.
        let mut s = san(1);
        s.set_spec(LayoutSpec {
            spm_stack_words: 16,
            dram_stack_words: 1024,
            ..LayoutSpec::default()
        });
        s.note_sink().lock().push(Note::StackPush {
            core: 0,
            base: AddrMap::SPM_BASE,
            words: 20,
            in_dram: false,
        });
        s.finish();
        let r = s.report();
        assert_eq!(r.total, 1, "{r}");
        assert_eq!(r.diagnostics[0].kind, DiagKind::SpmStackOverflow);
    }

    #[test]
    fn shadow_stack_catches_underflow_and_dram_exhaustion() {
        let mut s = san(1);
        s.set_spec(LayoutSpec {
            spm_stack_words: 16,
            dram_stack_words: 8,
            ..LayoutSpec::default()
        });
        let sink = s.note_sink();
        sink.lock().push(Note::StackPush {
            core: 0,
            base: AddrMap::DRAM_BASE,
            words: 9,
            in_dram: true,
        });
        sink.lock().push(Note::StackPop {
            core: 0,
            base: AddrMap::DRAM_BASE,
            words: 9,
            in_dram: true,
        });
        sink.lock().push(Note::StackPop {
            core: 0,
            base: AddrMap::DRAM_BASE,
            words: 9,
            in_dram: true,
        });
        s.finish();
        let r = s.report();
        assert_eq!(r.counts[&DiagKind::DramStackExhausted], 1);
        assert_eq!(r.counts[&DiagKind::StackUnderflow], 1);
    }

    #[test]
    fn remote_user_spm_access_is_reported() {
        let mut s = san(2);
        s.set_spec(LayoutSpec {
            user_off: 3072,
            spm_size: 4096,
            ..LayoutSpec::default()
        });
        let map = AddrMap::new(2, 4096);
        s.load(0, map.spm_addr(1, 3072), 10); // remote, in user region
        s.load(0, map.spm_addr(1, 0), 11); // remote, stack region: fine
        s.load(1, map.spm_addr(1, 3072), 12); // local user region: fine
        let r = s.report();
        assert_eq!(r.total, 1);
        assert_eq!(r.diagnostics[0].kind, DiagKind::RemoteUserSpm);
    }

    #[test]
    fn relaxed_pair_is_not_a_race() {
        // The pull-BFS pattern: one core relaxed-stores the level word
        // while another relaxed-loads it, unordered. Annotated benign.
        let mut s = san(2);
        s.store_relaxed(0, dram(0), 3, 10);
        s.load_relaxed(1, dram(0), 11);
        s.store_relaxed(1, dram(4), 3, 12);
        s.store_relaxed(0, dram(4), 4, 13);
        assert!(s.report().is_clean(), "{}", s.report());
    }

    #[test]
    fn relaxed_vs_plain_still_races() {
        // Relaxing only one side does not make the pair ordered: a
        // plain access unordered with a relaxed one is still a race.
        let mut s = san(2);
        s.store_relaxed(0, dram(0), 3, 10);
        s.load(1, dram(0), 11); // plain read vs relaxed write
        s.load_relaxed(0, dram(4), 10);
        s.store(1, dram(4), 9, 11); // plain write vs relaxed read
        let r = s.report();
        assert_eq!(r.counts[&DiagKind::RaceWriteRead], 1);
        assert_eq!(r.counts[&DiagKind::RaceReadWrite], 1);
    }

    #[test]
    fn relaxed_store_carries_no_release_edge() {
        // A reader that sees a relaxed flag store gains no ordering on
        // the data word behind it — the plain data read still races.
        let mut s = san(2);
        let data = dram(0);
        let flag = dram(64);
        s.store(0, data, 99, 10);
        s.fence(0, 11);
        s.store_relaxed(0, flag, 1, 12);
        s.load_relaxed(1, flag, 20);
        s.load(1, data, 21);
        let r = s.report();
        assert_eq!(r.counts[&DiagKind::RaceWriteRead], 1);
    }

    #[test]
    fn relaxed_store_into_frozen_env_is_still_reported() {
        let mut s = san(1);
        let base = dram(128).raw();
        s.note_sink().lock().push(Note::FreezeEnv {
            core: 0,
            base,
            words: 1,
        });
        s.store_relaxed(0, Addr(base), 1, 10);
        assert_eq!(s.report().counts[&DiagKind::ReadOnlyWrite], 1);
    }

    #[test]
    fn same_core_reuse_never_races() {
        let mut s = san(2);
        for cyc in 0..10 {
            s.store(0, dram(0), cyc as u32, cyc);
            s.load(0, dram(0), cyc);
        }
        assert!(s.report().is_clean());
    }

    #[test]
    fn spm_mailbox_store_transfers_release_clock() {
        // The static-scheduler handshake: core 0 stores DRAM env,
        // fences, stores an SPM mailbox word; core 1 polls the mailbox
        // then reads the DRAM env. Must be clean.
        let map = AddrMap::new(2, 4096);
        let mut s = san(2);
        let env = dram(0);
        let cmd = map.spm_addr(1, 2048);
        s.store(0, env, 5, 10);
        s.fence(0, 11);
        s.store(0, cmd, 1, 12);
        s.load(1, cmd, 20);
        s.load(1, env, 21);
        assert!(s.report().is_clean(), "{}", s.report());
    }
}
