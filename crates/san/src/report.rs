//! Diagnostics and the aggregated per-run report.

use std::collections::BTreeMap;
use std::fmt;

/// What kind of invariant violation a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagKind {
    /// Two writes to the same data word with no happens-before edge.
    RaceWriteWrite,
    /// A write to a data word unordered with an earlier read.
    RaceReadWrite,
    /// A read of a data word unordered with an earlier write.
    RaceWriteRead,
    /// A store to a word inside a frozen (read-only) captured
    /// environment.
    ReadOnlyWrite,
    /// A remote access into another core's private `spm_reserve`
    /// region.
    RemoteUserSpm,
    /// A lock-release store with no matching acquire (or double
    /// release).
    LockReleaseWithoutAcquire,
    /// A lock released by a core that does not hold it.
    LockReleaseByNonOwner,
    /// A lock-release store issued with store-queue entries still
    /// outstanding (missing release fence).
    UnfencedLockRelease,
    /// A lock still held when the simulation finished.
    LockHeldAtExit,
    /// SPM stack growth crossed the DRAM-overflow threshold without
    /// being redirected (would overwrite the queue/misc block).
    SpmStackOverflow,
    /// An SPM frame pushed while DRAM overflow frames were live (the
    /// stack pointer is in DRAM; the SPM frame breaks LIFO discipline).
    SpmFrameWhileOverflowed,
    /// The per-core DRAM stack / overflow buffer overflowed.
    DramStackExhausted,
    /// A stack pop with no live frames.
    StackUnderflow,
}

impl DiagKind {
    /// Stable short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DiagKind::RaceWriteWrite => "race:write-write",
            DiagKind::RaceReadWrite => "race:read-write",
            DiagKind::RaceWriteRead => "race:write-read",
            DiagKind::ReadOnlyWrite => "env:write-to-read-only",
            DiagKind::RemoteUserSpm => "spm:remote-user-region",
            DiagKind::LockReleaseWithoutAcquire => "lock:release-without-acquire",
            DiagKind::LockReleaseByNonOwner => "lock:release-by-non-owner",
            DiagKind::UnfencedLockRelease => "lock:unfenced-release",
            DiagKind::LockHeldAtExit => "lock:held-at-exit",
            DiagKind::SpmStackOverflow => "stack:spm-overflow",
            DiagKind::SpmFrameWhileOverflowed => "stack:spm-frame-while-overflowed",
            DiagKind::DramStackExhausted => "stack:dram-exhausted",
            DiagKind::StackUnderflow => "stack:underflow",
        }
    }
}

/// One reported finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated invariant.
    pub kind: DiagKind,
    /// The word address involved.
    pub addr: u64,
    /// The core whose access triggered the report.
    pub core: usize,
    /// Cycle of the triggering access.
    pub cycle: u64,
    /// The other party of a racing pair, if any.
    pub other_core: Option<usize>,
    /// Cycle of the other party's access, if any.
    pub other_cycle: Option<u64>,
    /// Free-form context (which check, sizes, values).
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<32} {:#010x}  core {:>3} @ {:>10}",
            self.kind.label(),
            self.addr,
            self.core,
            self.cycle
        )?;
        match (self.other_core, self.other_cycle) {
            (Some(c), Some(at)) => write!(f, "  vs core {c:>3} @ {at:>10}")?,
            (Some(c), None) => write!(f, "  vs core {c:>3}")?,
            _ => {}
        }
        if !self.detail.is_empty() {
            write!(f, "  ({})", self.detail)?;
        }
        Ok(())
    }
}

/// How many distinct diagnostics are kept verbatim; further findings
/// of an already-reported (kind, addr) pair only bump the counts.
pub const MAX_DETAILED: usize = 64;

/// The aggregated result of one sanitized run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanReport {
    /// The retained diagnostics, in event order (deduplicated by
    /// (kind, address); at most [`MAX_DETAILED`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Total findings including deduplicated repeats.
    pub total: u64,
    /// Findings per kind (including repeats).
    pub counts: BTreeMap<DiagKind, u64>,
    /// Memory operations observed (loads + stores + AMOs).
    pub ops: u64,
}

impl SanReport {
    /// `true` when the run was clean.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Total findings (including deduplicated repeats).
    pub fn total_findings(&self) -> u64 {
        self.total
    }
}

impl fmt::Display for SanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "sanitizer: clean ({} memory ops checked)", self.ops);
        }
        writeln!(
            f,
            "sanitizer: {} finding(s) over {} memory ops",
            self.total, self.ops
        )?;
        writeln!(f, "  {:<32} {:>8}", "kind", "count")?;
        for (kind, n) in &self.counts {
            writeln!(f, "  {:<32} {n:>8}", kind.label())?;
        }
        writeln!(f, "  first {} distinct finding(s):", self.diagnostics.len())?;
        for d in &self.diagnostics {
            writeln!(f, "    {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_displays_op_count() {
        let r = SanReport {
            ops: 42,
            ..SanReport::default()
        };
        assert!(r.is_clean());
        assert!(r.to_string().contains("clean (42 memory ops"));
    }

    #[test]
    fn dirty_report_lists_kinds_and_findings() {
        let mut counts = BTreeMap::new();
        counts.insert(DiagKind::RaceWriteWrite, 3);
        let r = SanReport {
            diagnostics: vec![Diagnostic {
                kind: DiagKind::RaceWriteWrite,
                addr: 0x8000_0000,
                core: 1,
                cycle: 10,
                other_core: Some(0),
                other_cycle: Some(5),
                detail: "t".into(),
            }],
            total: 3,
            counts,
            ops: 9,
        };
        let s = r.to_string();
        assert!(s.contains("3 finding(s)"));
        assert!(s.contains("race:write-write"));
        assert!(s.contains("vs core   0"));
    }
}
