//! Out-of-band annotations from the runtime.
//!
//! Some invariants (stack frame lifetimes, environment freezing) are
//! invisible at the memory-operation level; the runtime narrates them
//! through a shared note queue that the sanitizer drains — in event
//! order, since the engine serializes core execution — at its next
//! hook. Notes are host-side metadata and charge no simulated cycles.

use parking_lot::Mutex;
use std::sync::Arc;

/// One annotation from the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Note {
    /// A stack frame (or in-frame allocation) of `words` words was
    /// pushed at `base` on `core`'s stack.
    StackPush {
        /// The pushing core.
        core: usize,
        /// Lowest word address of the frame.
        base: u64,
        /// Frame size in words.
        words: u32,
        /// `true` when the frame went to the DRAM overflow buffer.
        in_dram: bool,
    },
    /// The most recent frame (at `base`, `words` words) was popped.
    StackPop {
        /// The popping core.
        core: usize,
        /// Lowest word address of the freed frame.
        base: u64,
        /// Frame size in words.
        words: u32,
        /// `true` when the frame lived in the DRAM overflow buffer.
        in_dram: bool,
    },
    /// The `words`-word captured environment at `base` is complete and
    /// read-only from now until its frame pops.
    FreezeEnv {
        /// The creating core.
        core: usize,
        /// Base word address of the environment block.
        base: u64,
        /// Environment size in words.
        words: u32,
    },
}

/// The shared note queue between runtime and sanitizer.
pub type NoteSink = Arc<Mutex<Vec<Note>>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_preserves_order() {
        let sink: NoteSink = Arc::new(Mutex::new(Vec::new()));
        sink.lock().push(Note::FreezeEnv {
            core: 0,
            base: 16,
            words: 2,
        });
        sink.lock().push(Note::StackPop {
            core: 0,
            base: 16,
            words: 2,
            in_dram: false,
        });
        let drained = std::mem::take(&mut *sink.lock());
        assert_eq!(drained.len(), 2);
        assert!(matches!(drained[0], Note::FreezeEnv { .. }));
    }
}
