//! The runtime-declared layout specification.
//!
//! The sanitizer is attached at the simulator layer and sees raw
//! addresses only; the runtime (which computed the SPM layout and
//! allocated the DRAM structures) describes that layout here so the
//! checker can tell queue blocks from stacks from user reservations,
//! and intentional synchronization words from ordinary data.

/// Everything the sanitizer needs to know about the runtime's memory
/// layout. Built by `mosaic-runtime` from its resolved `Layout`;
/// engine-level tests may attach a sanitizer without a spec, in which
/// case only the race and lock checks that need no layout run.
#[derive(Debug, Clone, Default)]
pub struct LayoutSpec {
    /// SPM byte offset of the user `spm_reserve` region (region is
    /// `[user_off, spm_size)`); remote accesses there are flagged.
    pub user_off: u32,
    /// SPM size in bytes.
    pub spm_size: u32,
    /// SPM stack capacity in words (0 when the stack is DRAM-placed).
    pub spm_stack_words: u32,
    /// Per-core DRAM stack / overflow buffer capacity in words.
    pub dram_stack_words: u32,
    /// Raw addresses of the queue-block lock words (one per core),
    /// subject to the amoswap-acquire / fence+store-release discipline.
    pub lock_words: Vec<u64>,
    /// Raw address ranges `[base, end)` that hold intentional
    /// synchronization or lock-protected runtime state (DRAM queue
    /// blocks, the queue directory, the hunger board, the barrier).
    /// Data-race checks are suppressed there; clock transfer applies.
    pub sync_ranges: Vec<(u64, u64)>,
}

impl LayoutSpec {
    /// `true` when `raw` falls inside a declared sync range.
    pub fn in_sync_range(&self, raw: u64) -> bool {
        self.sync_ranges
            .iter()
            .any(|&(lo, hi)| raw >= lo && raw < hi)
    }

    /// `true` when `raw` is a declared lock word.
    pub fn is_lock_word(&self, raw: u64) -> bool {
        self.lock_words.contains(&raw)
    }

    /// `true` when SPM byte offset `off` lies in the user reservation.
    pub fn in_user_region(&self, off: u32) -> bool {
        self.spm_size > self.user_off && off >= self.user_off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_lock_membership() {
        let spec = LayoutSpec {
            user_off: 3072,
            spm_size: 4096,
            lock_words: vec![0x8000_0100],
            sync_ranges: vec![(0x8000_0100, 0x8000_0200)],
            ..LayoutSpec::default()
        };
        assert!(spec.in_sync_range(0x8000_0100));
        assert!(spec.in_sync_range(0x8000_01fc));
        assert!(!spec.in_sync_range(0x8000_0200));
        assert!(spec.is_lock_word(0x8000_0100));
        assert!(!spec.is_lock_word(0x8000_0104));
        assert!(spec.in_user_region(3072));
        assert!(!spec.in_user_region(3068));
    }

    #[test]
    fn empty_user_region_matches_nothing() {
        let spec = LayoutSpec {
            user_off: 4096,
            spm_size: 4096,
            ..LayoutSpec::default()
        };
        assert!(!spec.in_user_region(4095));
    }
}
