//! Property tests for the network model.

use mosaic_mesh::{Mesh, MeshConfig};
use proptest::prelude::*;

proptest! {
    /// Arrival time is monotone in injection time.
    #[test]
    fn traversal_time_is_monotone(cols in 2u16..10, rows in 2u16..6,
                                  a in any::<usize>(), b in any::<usize>(),
                                  t1 in 0u64..1000, dt in 0u64..1000) {
        let cfg = MeshConfig::new(cols, rows, 0);
        let n = cfg.core_count();
        let (src, dst) = (cfg.core_node(a % n), cfg.core_node(b % n));
        let m1 = Mesh::new(cfg.clone()).traverse(src, dst, t1, 1);
        let m2 = Mesh::new(cfg).traverse(src, dst, t1 + dt, 1);
        prop_assert!(m2 >= m1);
        prop_assert!(m2 - m1 == dt || src == dst);
    }

    /// Ruche express links never make a route longer.
    #[test]
    fn ruche_never_hurts(cols in 4u16..16, rows in 1u16..4,
                         ruche in 2u16..5, a in any::<usize>(), b in any::<usize>()) {
        let plain = MeshConfig::new(cols, rows, 0);
        let ruched = MeshConfig::new(cols, rows, ruche);
        let n = plain.core_count();
        let (ai, bi) = (a % n, b % n);
        let hp = plain.route(plain.core_node(ai), plain.core_node(bi)).len();
        let hr = ruched.route(ruched.core_node(ai), ruched.core_node(bi)).len();
        prop_assert!(hr <= hp, "ruche route {hr} longer than plain {hp}");
    }

    /// Flit accounting: total flits equals sum over traversals of
    /// (hops x flits).
    #[test]
    fn flit_accounting(pairs in prop::collection::vec((any::<usize>(), any::<usize>(), 1u32..4), 1..20)) {
        let cfg = MeshConfig::new(6, 4, 0);
        let n = cfg.core_count();
        let mut mesh = Mesh::new(cfg.clone());
        let mut expect = 0u64;
        let mut t = 0;
        for (a, b, f) in pairs {
            let (src, dst) = (cfg.core_node(a % n), cfg.core_node(b % n));
            let hops = cfg.route(src, dst).len() as u64;
            expect += hops * f as u64;
            t = mesh.traverse(src, dst, t, f);
        }
        prop_assert_eq!(mesh.link_stats().total_flits(), expect);
    }

    /// Every core node decodes back to a core, and LLC nodes to banks,
    /// with no overlap.
    #[test]
    fn node_kinds_partition(cols in 1u16..12, rows in 1u16..8) {
        let cfg = MeshConfig::new(cols, rows, 0);
        let mut cores = 0;
        let mut banks = 0;
        for y in 0..rows + 2 {
            for x in 0..cols {
                let node = cfg.node_at(mosaic_mesh::Coord { x, y });
                match cfg.node_kind(node) {
                    mosaic_mesh::NodeKind::Core(_) => cores += 1,
                    mosaic_mesh::NodeKind::LlcBank(_) => banks += 1,
                }
            }
        }
        prop_assert_eq!(cores, cfg.core_count());
        prop_assert_eq!(banks, cfg.llc_count());
    }
}
