//! Network statistics: per-link utilization and core-to-core traffic
//! summaries, used to regenerate the paper's Figure 5 latency heatmap.

use crate::topology::{MeshConfig, NodeKind};

/// Snapshot of cumulative flits carried per unidirectional link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStats {
    flits: Vec<u64>,
}

impl LinkStats {
    pub(crate) fn new(flits: Vec<u64>) -> Self {
        LinkStats { flits }
    }

    /// Flits carried by link `idx` since the last reset.
    pub fn flits_on(&self, idx: usize) -> u64 {
        self.flits[idx]
    }

    /// Total flits carried across all links.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// The most-loaded link and its flit count, if any traffic flowed.
    pub fn hottest_link(&self) -> Option<(usize, u64)> {
        self.flits
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, f)| f)
            .filter(|&(_, f)| f > 0)
    }

    /// Per-core flits carried by links *arriving at* each core's router
    /// node — the profiler's NoC hot-spot heatmap. Counts both traffic
    /// delivered to the node and traffic routed through it; either way
    /// those flits occupy the router's input ports, which is the
    /// congestion that makes a hot node hot (paper Figure 5).
    pub fn core_inbound(&self, cfg: &MeshConfig) -> Vec<u64> {
        self.core_endpoint_flits(cfg, false)
    }

    /// Per-core flits carried by links *leaving* each core's router
    /// node (injected plus routed-through).
    pub fn core_outbound(&self, cfg: &MeshConfig) -> Vec<u64> {
        self.core_endpoint_flits(cfg, true)
    }

    fn core_endpoint_flits(&self, cfg: &MeshConfig, outbound: bool) -> Vec<u64> {
        let mut out = vec![0u64; cfg.core_count()];
        for (idx, &(from, to)) in cfg.link_table().iter().enumerate() {
            let node = if outbound { from } else { to };
            if let NodeKind::Core(c) = cfg.node_kind(node) {
                out[c as usize] += self.flits[idx];
            }
        }
        out
    }
}

/// A dense core-by-core matrix of observed average latencies (or any
/// other per-ordered-pair scalar), used for heatmap outputs.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    cores: usize,
    sum: Vec<f64>,
    count: Vec<u64>,
}

impl TrafficMatrix {
    /// An empty matrix over `cores` cores.
    pub fn new(cores: usize) -> Self {
        TrafficMatrix {
            cores,
            sum: vec![0.0; cores * cores],
            count: vec![0; cores * cores],
        }
    }

    /// Record one sample (e.g. one load's round-trip latency) from
    /// `src` to `dst`.
    pub fn record(&mut self, src: usize, dst: usize, value: f64) {
        let i = src * self.cores + dst;
        // detlint: allow(D004) -- samples arrive in canonical engine order, one accumulation stream per (src,dst) cell
        self.sum[i] += value;
        self.count[i] += 1;
    }

    /// Mean recorded value from `src` to `dst`, or `None` if no samples.
    pub fn mean(&self, src: usize, dst: usize) -> Option<f64> {
        let i = src * self.cores + dst;
        (self.count[i] > 0).then(|| self.sum[i] / self.count[i] as f64)
    }

    /// Per-source mean toward a single destination, normalized so the
    /// maximum is 1.0 — the exact quantity plotted in the paper's
    /// Figure 5 (each core's remote-SPM load latency toward core 0,
    /// normalized to the slowest core).
    pub fn normalized_column(&self, dst: usize) -> Vec<f64> {
        let means: Vec<f64> = (0..self.cores)
            .map(|src| self.mean(src, dst).unwrap_or(0.0))
            .collect();
        let max = means.iter().cloned().fold(0.0_f64, f64::max);
        if max == 0.0 {
            return means;
        }
        means.iter().map(|m| m / max).collect()
    }

    /// Render `values` (one per core) as a `core_rows x cols` text grid
    /// matching the paper's heatmap orientation.
    pub fn render_grid(values: &[f64], cfg: &MeshConfig) -> String {
        let mut out = String::new();
        for y in 0..cfg.core_rows() as usize {
            for x in 0..cfg.cols() as usize {
                let v = values[y * cfg.cols() as usize + x];
                out.push_str(&format!("{v:4.1} "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_means() {
        let m = TrafficMatrix::new(4);
        assert_eq!(m.mean(0, 1), None);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = TrafficMatrix::new(4);
        m.record(1, 0, 10.0);
        m.record(1, 0, 20.0);
        assert_eq!(m.mean(1, 0), Some(15.0));
    }

    #[test]
    fn normalized_column_peaks_at_one() {
        let mut m = TrafficMatrix::new(3);
        m.record(0, 0, 1.0);
        m.record(1, 0, 2.0);
        m.record(2, 0, 4.0);
        let col = m.normalized_column(0);
        assert_eq!(col, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn endpoint_flits_follow_the_link_table() {
        let cfg = MeshConfig::new(2, 2, 0);
        // Put one flit on every link ending at core 0's node and two on
        // every link leaving core 3's node; everything else idle.
        let n0 = cfg.core_node(0);
        let n3 = cfg.core_node(3);
        let flits: Vec<u64> = cfg
            .link_table()
            .iter()
            .map(|&(from, to)| {
                if to == n0 {
                    1
                } else if from == n3 {
                    2
                } else {
                    0
                }
            })
            .collect();
        let stats = LinkStats::new(flits);
        let inbound = stats.core_inbound(&cfg);
        let outbound = stats.core_outbound(&cfg);
        assert!(inbound[0] >= 3, "core 0 has >= 3 incident links");
        assert_eq!(inbound[3], 0);
        assert!(outbound[3] >= 6);
        assert_eq!(outbound[0], 0);
    }

    #[test]
    fn hottest_link_none_when_idle() {
        let s = LinkStats::new(vec![0, 0, 0]);
        assert_eq!(s.hottest_link(), None);
        let s = LinkStats::new(vec![0, 7, 3]);
        assert_eq!(s.hottest_link(), Some((1, 7)));
        assert_eq!(s.total_flits(), 10);
    }

    #[test]
    fn render_grid_shape() {
        let cfg = MeshConfig::new(4, 2, 0);
        let vals = vec![0.5; 8];
        let grid = TrafficMatrix::render_grid(&vals, &cfg);
        assert_eq!(grid.lines().count(), 2);
        assert_eq!(grid.lines().next().unwrap().split_whitespace().count(), 4);
    }
}
