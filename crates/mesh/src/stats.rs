//! Network statistics: per-link utilization and core-to-core traffic
//! summaries, used to regenerate the paper's Figure 5 latency heatmap.

use crate::topology::MeshConfig;

/// Snapshot of cumulative flits carried per unidirectional link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStats {
    flits: Vec<u64>,
}

impl LinkStats {
    pub(crate) fn new(flits: Vec<u64>) -> Self {
        LinkStats { flits }
    }

    /// Flits carried by link `idx` since the last reset.
    pub fn flits_on(&self, idx: usize) -> u64 {
        self.flits[idx]
    }

    /// Total flits carried across all links.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// The most-loaded link and its flit count, if any traffic flowed.
    pub fn hottest_link(&self) -> Option<(usize, u64)> {
        self.flits
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, f)| f)
            .filter(|&(_, f)| f > 0)
    }
}

/// A dense core-by-core matrix of observed average latencies (or any
/// other per-ordered-pair scalar), used for heatmap outputs.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    cores: usize,
    sum: Vec<f64>,
    count: Vec<u64>,
}

impl TrafficMatrix {
    /// An empty matrix over `cores` cores.
    pub fn new(cores: usize) -> Self {
        TrafficMatrix {
            cores,
            sum: vec![0.0; cores * cores],
            count: vec![0; cores * cores],
        }
    }

    /// Record one sample (e.g. one load's round-trip latency) from
    /// `src` to `dst`.
    pub fn record(&mut self, src: usize, dst: usize, value: f64) {
        let i = src * self.cores + dst;
        self.sum[i] += value;
        self.count[i] += 1;
    }

    /// Mean recorded value from `src` to `dst`, or `None` if no samples.
    pub fn mean(&self, src: usize, dst: usize) -> Option<f64> {
        let i = src * self.cores + dst;
        (self.count[i] > 0).then(|| self.sum[i] / self.count[i] as f64)
    }

    /// Per-source mean toward a single destination, normalized so the
    /// maximum is 1.0 — the exact quantity plotted in the paper's
    /// Figure 5 (each core's remote-SPM load latency toward core 0,
    /// normalized to the slowest core).
    pub fn normalized_column(&self, dst: usize) -> Vec<f64> {
        let means: Vec<f64> = (0..self.cores)
            .map(|src| self.mean(src, dst).unwrap_or(0.0))
            .collect();
        let max = means.iter().cloned().fold(0.0_f64, f64::max);
        if max == 0.0 {
            return means;
        }
        means.iter().map(|m| m / max).collect()
    }

    /// Render `values` (one per core) as a `core_rows x cols` text grid
    /// matching the paper's heatmap orientation.
    pub fn render_grid(values: &[f64], cfg: &MeshConfig) -> String {
        let mut out = String::new();
        for y in 0..cfg.core_rows() as usize {
            for x in 0..cfg.cols() as usize {
                let v = values[y * cfg.cols() as usize + x];
                out.push_str(&format!("{v:4.1} "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_means() {
        let m = TrafficMatrix::new(4);
        assert_eq!(m.mean(0, 1), None);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = TrafficMatrix::new(4);
        m.record(1, 0, 10.0);
        m.record(1, 0, 20.0);
        assert_eq!(m.mean(1, 0), Some(15.0));
    }

    #[test]
    fn normalized_column_peaks_at_one() {
        let mut m = TrafficMatrix::new(3);
        m.record(0, 0, 1.0);
        m.record(1, 0, 2.0);
        m.record(2, 0, 4.0);
        let col = m.normalized_column(0);
        assert_eq!(col, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn hottest_link_none_when_idle() {
        let s = LinkStats::new(vec![0, 0, 0]);
        assert_eq!(s.hottest_link(), None);
        let s = LinkStats::new(vec![0, 7, 3]);
        assert_eq!(s.hottest_link(), Some((1, 7)));
        assert_eq!(s.total_flits(), 10);
    }

    #[test]
    fn render_grid_shape() {
        let cfg = MeshConfig::new(4, 2, 0);
        let vals = vec![0.5; 8];
        let grid = TrafficMatrix::render_grid(&vals, &cfg);
        assert_eq!(grid.lines().count(), 2);
        assert_eq!(grid.lines().next().unwrap().split_whitespace().count(), 4);
    }
}
