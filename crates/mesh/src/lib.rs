#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # mosaic-mesh
//!
//! A 2-D mesh on-chip network (OCN) model for the Mosaic manycore
//! simulator, patterned after the HammerBlade "mesh-with-ruching"
//! network (Jung et al., NOCS '20; Ou et al., NOCS '20).
//!
//! The model is *analytic-contention* rather than flit-accurate: every
//! unidirectional link keeps a "next free cycle" reservation, a packet
//! traversing a route reserves each link in order, and the packet's
//! arrival time is the cycle at which its last link transfer completes.
//! Because the discrete-event engine in `mosaic-sim` issues requests in
//! global cycle order, reservations are approximately first-come
//! first-served, which is what a round-robin-arbitrated mesh router
//! provides. This captures the first-order congestion behaviour the
//! paper relies on (Y-bandwidth scarcity toward a hot node, Figure 5)
//! at a tiny fraction of the cost of flit-level simulation.
//!
//! ## Example
//!
//! ```
//! use mosaic_mesh::{Mesh, MeshConfig, NodeId};
//!
//! let mut mesh = Mesh::new(MeshConfig::hammerblade_128());
//! let src = mesh.config().core_node(0);
//! let dst = mesh.config().core_node(127);
//! // A one-flit request injected at cycle 100:
//! let arrival = mesh.traverse(src, dst, 100, 1);
//! assert!(arrival > 100);
//! ```

pub mod routing;
pub mod stats;
pub mod topology;

pub use routing::Route;
pub use stats::{LinkStats, TrafficMatrix};
pub use topology::{Coord, MeshConfig, NodeId, NodeKind};

/// One cycle of simulated time. The whole simulator counts in cycles of
/// the (notionally 1.5 GHz) core clock.
pub type Cycle = u64;

/// A unidirectional link identified by its index in the mesh's link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Raw index of this link in [`Mesh::link_count`] order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The mesh network: topology plus per-link reservation state.
///
/// All timing state is owned here; the structure is deliberately not
/// `Sync` — the discrete-event engine serializes access.
#[derive(Debug)]
pub struct Mesh {
    config: MeshConfig,
    /// Next cycle at which each unidirectional link can accept a flit.
    next_free: Vec<Cycle>,
    /// Cumulative flits carried per link, for utilization statistics.
    flits_carried: Vec<u64>,
    /// Router pipeline latency charged per hop, in cycles.
    hop_latency: Cycle,
    /// Injected stall windows, `(link index, start, end)` half-open:
    /// a flit arriving at a stalled link waits until the window ends.
    /// Empty in normal operation — fault injection only.
    stalls: Vec<(u32, Cycle, Cycle)>,
}

impl Mesh {
    /// Create a mesh with all links idle at cycle 0.
    pub fn new(config: MeshConfig) -> Self {
        let links = config.link_table().len();
        Mesh {
            config,
            next_free: vec![0; links],
            flits_carried: vec![0; links],
            hop_latency: 1,
            stalls: Vec::new(),
        }
    }

    /// Inject a fault window: link `link` accepts no flits during
    /// `[start, end)` — a flit arriving inside the window waits for
    /// `end`. Used by the chaos subsystem; windows persist across
    /// [`Mesh::reset`] because they model scheduled faults, not
    /// accumulated traffic.
    pub fn inject_link_stall(&mut self, link: usize, start: Cycle, end: Cycle) {
        debug_assert!(link < self.next_free.len(), "stall on unknown link");
        self.stalls.push((link as u32, start, end));
    }

    /// Earliest cycle at or after `t` at which link `idx` is not
    /// inside an injected stall window.
    #[inline]
    fn past_stalls(&self, idx: usize, mut t: Cycle) -> Cycle {
        // Windows may abut or overlap, so keep scanning until none
        // contains `t`. The list is tiny (a handful of scheduled
        // faults) and empty in normal operation.
        loop {
            let mut moved = false;
            for &(link, start, end) in &self.stalls {
                if link as usize == idx && start <= t && t < end {
                    t = end;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// The topology this mesh was built from.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Router pipeline latency charged per hop, in cycles. This is the
    /// smallest cross-component latency in the machine, which makes it
    /// the conservative lookahead quantum of the window-parallel engine
    /// in `mosaic-sim`.
    pub fn hop_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// Number of unidirectional links in the network.
    pub fn link_count(&self) -> usize {
        self.next_free.len()
    }

    /// Route a packet of `flits` flits from `src` to `dst`, injecting at
    /// `cycle`. Returns the cycle at which the packet's tail arrives at
    /// `dst`. Reserves bandwidth on every link of the route.
    ///
    /// A zero-hop route (src == dst) costs nothing; endpoint service time
    /// is charged by the memory endpoint models, not the network.
    pub fn traverse(&mut self, src: NodeId, dst: NodeId, cycle: Cycle, flits: u32) -> Cycle {
        debug_assert!(flits >= 1, "packets carry at least one flit");
        let stalled = !self.stalls.is_empty();
        self.advance(src, dst, cycle, flits, stalled)
    }

    /// Route a request packet `src → dst` and its response `dst → src`
    /// in one call. `service` maps the request's tail-arrival cycle at
    /// `dst` to the cycle the endpoint injects the response. Returns
    /// the response's tail-arrival cycle back at `src`.
    ///
    /// Cycle-for-cycle equivalent to two [`Mesh::traverse`] calls with
    /// the endpoint model in between, but both directions' per-link
    /// flit advancement runs as one batch with the stall-window check
    /// (empty outside fault injection) hoisted out of the hot loop —
    /// one of the cheap wins that feeds the engine's per-window event
    /// batching.
    pub fn traverse_roundtrip(
        &mut self,
        src: NodeId,
        dst: NodeId,
        cycle: Cycle,
        flits: u32,
        service: impl FnOnce(Cycle) -> Cycle,
    ) -> Cycle {
        debug_assert!(flits >= 1, "packets carry at least one flit");
        let stalled = !self.stalls.is_empty();
        let there = self.advance(src, dst, cycle, flits, stalled);
        let back = service(there);
        self.advance(dst, src, back, flits, stalled)
    }

    /// Reserve every link of one route and return the packet's
    /// tail-arrival cycle. `stalled` hoists the fault-window check out
    /// of the per-link loop (the caller reads it once per packet or
    /// per roundtrip).
    #[inline]
    fn advance(
        &mut self,
        src: NodeId,
        dst: NodeId,
        cycle: Cycle,
        flits: u32,
        stalled: bool,
    ) -> Cycle {
        let route = self.config.route(src, dst);
        let mut head = cycle;
        for link in route.links() {
            let idx = link.index();
            // The head flit waits for the link to free up, then takes
            // `hop_latency` to cross; the remaining flits pipeline behind
            // it, holding the link for `flits` cycles total.
            let mut start = head.max(self.next_free[idx]);
            if stalled {
                start = self.past_stalls(idx, start);
            }
            head = start + self.hop_latency;
            self.next_free[idx] = start + flits as Cycle;
            self.flits_carried[idx] += flits as u64;
        }
        // Tail arrives `flits - 1` cycles after the head on the last hop.
        head + (flits as Cycle - 1)
    }

    /// Latency a packet *would* see, without reserving bandwidth.
    /// Useful for probes and for tests.
    pub fn probe(&self, src: NodeId, dst: NodeId, cycle: Cycle, flits: u32) -> Cycle {
        let route = self.config.route(src, dst);
        let mut head = cycle;
        for link in route.links() {
            let idx = link.index();
            let mut start = head.max(self.next_free[idx]);
            if !self.stalls.is_empty() {
                start = self.past_stalls(idx, start);
            }
            head = start + self.hop_latency;
        }
        head + (flits as Cycle - 1)
    }

    /// Number of hops between two nodes under the configured routing.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.config.route(src, dst).links().len()
    }

    /// Snapshot of cumulative per-link statistics.
    pub fn link_stats(&self) -> LinkStats {
        LinkStats::new(self.flits_carried.clone())
    }

    /// Forget all reservations and counters (e.g. between benchmark
    /// phases) while keeping the topology.
    pub fn reset(&mut self) {
        self.next_free.fill(0);
        self.flits_carried.fill(0);
    }

    /// Serialize per-link reservation state and flit counters to
    /// canonical little-endian bytes: link count, then every link's
    /// `next_free`, then every link's `flits_carried`. Topology and
    /// `hop_latency` are construction-time constants and injected stall
    /// windows are scheduled faults reinstalled from the fault plan at
    /// machine construction, so neither is captured.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.next_free.len() * 16);
        out.extend_from_slice(&(self.next_free.len() as u64).to_le_bytes());
        for &c in &self.next_free {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &f in &self.flits_carried {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Restore state captured by [`Mesh::snapshot`] onto a mesh of the
    /// same topology. Stall windows on `self` are preserved.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = bytes;
        let mut take = |what: &str| -> Result<u64, String> {
            if r.len() < 8 {
                return Err(format!("mesh snapshot truncated ({what})"));
            }
            let (head, rest) = r.split_at(8);
            r = rest;
            let mut b = [0u8; 8];
            b.copy_from_slice(head);
            Ok(u64::from_le_bytes(b))
        };
        let links = take("link count")? as usize;
        if links != self.next_free.len() {
            return Err(format!(
                "mesh snapshot has {links} links, this mesh has {}",
                self.next_free.len()
            ));
        }
        for i in 0..links {
            self.next_free[i] = take("next_free")?;
        }
        for i in 0..links {
            self.flits_carried[i] = take("flits_carried")?;
        }
        if r.is_empty() {
            Ok(())
        } else {
            Err(format!("mesh: {} unconsumed snapshot bytes", r.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Mesh {
        // No ruche links so hop counts are plain Manhattan distance.
        Mesh::new(MeshConfig::new(4, 4, 0))
    }

    #[test]
    fn zero_hop_is_free() {
        let mut m = small();
        let n = m.config().core_node(5);
        assert_eq!(m.traverse(n, n, 42, 1), 42);
    }

    #[test]
    fn uncontended_latency_equals_hops() {
        let mut m = small();
        let src = m.config().core_node(0); // (0, 0) in core rows
        let dst = m.config().core_node(3); // (3, 0)
        let hops = m.hop_count(src, dst);
        assert_eq!(hops, 3);
        assert_eq!(m.traverse(src, dst, 100, 1), 100 + hops as Cycle);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut m = small();
        let a = m.config().core_node(0);
        let b = m.config().core_node(1);
        let dst = m.config().core_node(3);
        // Two big packets at the same cycle sharing links (1,y)->(3,y):
        let t1 = m.traverse(a, dst, 0, 8);
        let t2 = m.traverse(b, dst, 0, 8);
        // The second packet must queue behind the first on shared links.
        assert!(t2 > t1, "expected queuing: {t1} vs {t2}");
    }

    #[test]
    fn probe_does_not_reserve() {
        let mut m = small();
        let src = m.config().core_node(0);
        let dst = m.config().core_node(3);
        let p1 = m.probe(src, dst, 0, 4);
        let p2 = m.probe(src, dst, 0, 4);
        assert_eq!(p1, p2);
        let t = m.traverse(src, dst, 0, 4);
        assert_eq!(t, p1);
        // After a real traversal the probe sees congestion.
        assert!(m.probe(src, dst, 0, 4) > p1);
    }

    #[test]
    fn farther_nodes_have_longer_latency() {
        let m = Mesh::new(MeshConfig::hammerblade_128());
        let cfg = m.config().clone();
        let src = cfg.core_node(0);
        let near = cfg.core_node(1);
        let far = cfg.core_node(127);
        assert!(m.probe(src, far, 0, 1) > m.probe(src, near, 0, 1));
    }

    #[test]
    fn injected_stall_delays_traffic_inside_the_window_only() {
        let mut m = small();
        let src = m.config().core_node(0);
        let dst = m.config().core_node(3);
        let base = m.probe(src, dst, 0, 1);
        // Stall every link for [0, 50): the head flit can't start
        // crossing until cycle 50.
        for l in 0..m.link_count() {
            m.inject_link_stall(l, 0, 50);
        }
        assert_eq!(m.probe(src, dst, 0, 1), 50 + base);
        // Traffic injected after the window is unaffected.
        assert_eq!(m.probe(src, dst, 100, 1), 100 + base);
        // And the windows survive a reset (they are scheduled faults,
        // not accumulated state).
        m.reset();
        assert_eq!(m.probe(src, dst, 0, 1), 50 + base);
    }

    #[test]
    fn abutting_stall_windows_chain() {
        let mut m = small();
        let src = m.config().core_node(0);
        let dst = m.config().core_node(1);
        m.inject_link_stall(0, 0, 10);
        m.inject_link_stall(0, 10, 20);
        // Only link 0 may be on the route; probing directly via
        // traverse to exercise past_stalls chaining.
        let route_first_link = 0;
        assert_eq!(m.past_stalls(route_first_link, 0), 20);
        assert_eq!(m.past_stalls(route_first_link, 20), 20);
        let _ = (src, dst);
    }

    #[test]
    fn roundtrip_matches_two_traversals_cycle_for_cycle() {
        let endpoint = |arrive: Cycle| arrive + 7;
        // Several back-to-back round trips so link reservations from
        // earlier packets shape later ones; both meshes must agree on
        // every completion cycle *and* every link counter.
        let mut split = small();
        let mut batched = small();
        split.inject_link_stall(0, 5, 15);
        batched.inject_link_stall(0, 5, 15);
        let src = split.config().core_node(0);
        let dst = split.config().core_node(14);
        for i in 0..10u64 {
            let cycle = i * 3;
            let there = split.traverse(src, dst, cycle, 2);
            let done_split = split.traverse(dst, src, endpoint(there), 2);
            let done_batched = batched.traverse_roundtrip(src, dst, cycle, 2, endpoint);
            assert_eq!(done_split, done_batched, "trip {i}");
        }
        assert_eq!(
            split.link_stats().total_flits(),
            batched.link_stats().total_flits()
        );
        assert_eq!(split.probe(src, dst, 0, 1), batched.probe(src, dst, 0, 1));
    }

    #[test]
    fn snapshot_restore_round_trips_reservations() {
        let mut m = small();
        let src = m.config().core_node(0);
        let dst = m.config().core_node(14);
        m.traverse(src, dst, 0, 8);
        m.traverse(dst, src, 5, 2);
        let snap = m.snapshot();
        let mut fresh = small();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.snapshot(), snap);
        assert_eq!(
            fresh.link_stats().total_flits(),
            m.link_stats().total_flits()
        );
        // Congestion carries over: the next packet queues identically.
        assert_eq!(fresh.traverse(src, dst, 1, 4), m.traverse(src, dst, 1, 4));
    }

    #[test]
    fn restore_rejects_mismatched_topology_and_keeps_stalls() {
        let mut m = small();
        let snap = m.snapshot();
        let mut bigger = Mesh::new(MeshConfig::new(8, 8, 0));
        assert!(bigger.restore(&snap).is_err());
        assert!(m.restore(&snap[..snap.len() - 3]).is_err());
        // Stall windows survive restore (scheduled faults, not state).
        let mut stalled = small();
        let src = stalled.config().core_node(0);
        let dst = stalled.config().core_node(3);
        let base = stalled.probe(src, dst, 0, 1);
        for l in 0..stalled.link_count() {
            stalled.inject_link_stall(l, 0, 50);
        }
        stalled.restore(&snap).unwrap();
        assert_eq!(stalled.probe(src, dst, 0, 1), 50 + base);
    }

    #[test]
    fn hop_latency_is_exposed_for_lookahead_sizing() {
        assert_eq!(small().hop_latency(), 1);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut m = small();
        let src = m.config().core_node(0);
        let dst = m.config().core_node(3);
        let base = m.probe(src, dst, 0, 1);
        m.traverse(src, dst, 0, 16);
        assert!(m.probe(src, dst, 0, 1) > base);
        m.reset();
        assert_eq!(m.probe(src, dst, 0, 1), base);
        assert_eq!(m.link_stats().total_flits(), 0);
    }
}
