//! Mesh topology: node naming, coordinates, link table, and route
//! precomputation.
//!
//! The modeled chip follows HammerBlade's floorplan (paper Figure 2): a
//! `cols x core_rows` array of cores with a row of last-level-cache
//! banks above the top core row and another below the bottom core row.
//! A 16x8-core configuration therefore has 16 + 16 = 32 LLC banks, as in
//! the paper.
//!
//! Routing is dimension-ordered X-then-Y (the paper: "HammerBlade adopts
//! X-Y routing"). Optionally, *ruche* express links of a configurable
//! factor are added in the X dimension; the router then greedily takes
//! express hops while the remaining X distance allows, which is the
//! wire-maximal behaviour described by Jung et al. (NOCS '20).

use crate::{LinkId, Route};
use std::collections::BTreeMap;
use std::fmt;

/// A node's position on the physical grid, including LLC rows.
///
/// `x` grows to the east, `y` to the south. `y == 0` is the north LLC
/// row; core rows occupy `1..=core_rows`; the south LLC row is
/// `core_rows + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column (east-west position).
    pub x: u16,
    /// Grid row (north-south position), *including* LLC rows.
    pub y: u16,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Dense identifier of a mesh node (core or LLC bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw dense index, row-major over the full grid including LLC rows.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What lives at a mesh node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A compute tile; payload is the core id in `0..core_count`.
    Core(u32),
    /// A last-level cache bank; payload is the bank id in `0..llc_count`.
    LlcBank(u32),
}

/// Immutable description of the mesh: dimensions, link table, and
/// precomputed X-Y routes between all node pairs.
#[derive(Clone)]
pub struct MeshConfig {
    cols: u16,
    core_rows: u16,
    ruche_x: u16,
    /// `(from, to)` endpoints for every unidirectional link.
    links: Vec<(NodeId, NodeId)>,
    /// Precomputed route (list of link ids) for every `(src, dst)` pair.
    routes: Vec<Vec<LinkId>>,
}

impl fmt::Debug for MeshConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeshConfig")
            .field("cols", &self.cols)
            .field("core_rows", &self.core_rows)
            .field("ruche_x", &self.ruche_x)
            .field("links", &self.links.len())
            .finish()
    }
}

impl MeshConfig {
    /// Build a mesh of `cols x core_rows` cores plus two LLC rows, with
    /// ruche factor `ruche_x` in the X dimension (`0` or `1` disables
    /// express links).
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `core_rows` is zero.
    pub fn new(cols: u16, core_rows: u16, ruche_x: u16) -> Self {
        assert!(cols > 0 && core_rows > 0, "mesh dimensions must be nonzero");
        let grid_rows = core_rows + 2;
        let n = cols as usize * grid_rows as usize;

        let mut links = Vec::new();
        let mut link_of: BTreeMap<(u32, u32), LinkId> = BTreeMap::new();
        let mut add_link = |from: u32, to: u32, links: &mut Vec<(NodeId, NodeId)>| {
            let id = LinkId(links.len() as u32);
            links.push((NodeId(from), NodeId(to)));
            link_of.insert((from, to), id);
        };

        let node = |x: u16, y: u16| -> u32 { y as u32 * cols as u32 + x as u32 };

        // Local links: 4-neighbour, both directions.
        for y in 0..grid_rows {
            for x in 0..cols {
                if x + 1 < cols {
                    add_link(node(x, y), node(x + 1, y), &mut links);
                    add_link(node(x + 1, y), node(x, y), &mut links);
                }
                if y + 1 < grid_rows {
                    add_link(node(x, y), node(x, y + 1), &mut links);
                    add_link(node(x, y + 1), node(x, y), &mut links);
                }
            }
        }
        // Ruche (express) links in X.
        if ruche_x > 1 {
            for y in 0..grid_rows {
                for x in 0..cols {
                    if x + ruche_x < cols {
                        add_link(node(x, y), node(x + ruche_x, y), &mut links);
                        add_link(node(x + ruche_x, y), node(x, y), &mut links);
                    }
                }
            }
        }

        // Precompute X-then-Y routes for all pairs.
        let mut routes = vec![Vec::new(); n * n];
        for sy in 0..grid_rows {
            for sx in 0..cols {
                for dy in 0..grid_rows {
                    for dx in 0..cols {
                        let src = node(sx, sy);
                        let dst = node(dx, dy);
                        if src == dst {
                            continue;
                        }
                        let mut path = Vec::new();
                        let mut x = sx;
                        // X dimension first, taking express hops greedily.
                        while x != dx {
                            let dist = dx.abs_diff(x);
                            let step = if ruche_x > 1 && dist >= ruche_x {
                                ruche_x
                            } else {
                                1
                            };
                            let nx = if dx > x { x + step } else { x - step };
                            path.push(link_of[&(node(x, sy), node(nx, sy))]);
                            x = nx;
                        }
                        // Then Y.
                        let mut y = sy;
                        while y != dy {
                            let ny = if dy > y { y + 1 } else { y - 1 };
                            path.push(link_of[&(node(x, y), node(x, ny))]);
                            y = ny;
                        }
                        routes[src as usize * n + dst as usize] = path;
                    }
                }
            }
        }

        MeshConfig {
            cols,
            core_rows,
            ruche_x,
            links,
            routes,
        }
    }

    /// The 128-core HammerBlade configuration the paper evaluates:
    /// 16 columns x 8 core rows, 32 LLC banks, ruche factor 3.
    pub fn hammerblade_128() -> Self {
        MeshConfig::new(16, 8, 3)
    }

    /// Columns of the grid.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Rows of *cores* (the grid has two extra LLC rows).
    pub fn core_rows(&self) -> u16 {
        self.core_rows
    }

    /// Configured ruche factor (values `<= 1` mean no express links).
    pub fn ruche_x(&self) -> u16 {
        self.ruche_x
    }

    /// Number of compute cores.
    pub fn core_count(&self) -> usize {
        self.cols as usize * self.core_rows as usize
    }

    /// Number of LLC banks (one north row plus one south row).
    pub fn llc_count(&self) -> usize {
        2 * self.cols as usize
    }

    /// Total grid nodes including LLC rows.
    pub fn node_count(&self) -> usize {
        self.cols as usize * (self.core_rows as usize + 2)
    }

    /// Grid node hosting core `core` (row-major over core rows).
    ///
    /// # Panics
    ///
    /// Panics if `core >= core_count()`.
    pub fn core_node(&self, core: usize) -> NodeId {
        assert!(core < self.core_count(), "core id out of range");
        let x = (core % self.cols as usize) as u16;
        let y = (core / self.cols as usize) as u16 + 1; // skip north LLC row
        self.node_at(Coord { x, y })
    }

    /// Grid node hosting LLC bank `bank`. Banks `0..cols` are the north
    /// row (west to east); banks `cols..2*cols` are the south row.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= llc_count()`.
    pub fn llc_node(&self, bank: usize) -> NodeId {
        assert!(bank < self.llc_count(), "llc bank id out of range");
        let cols = self.cols as usize;
        let (x, y) = if bank < cols {
            (bank as u16, 0)
        } else {
            ((bank - cols) as u16, self.core_rows + 1)
        };
        self.node_at(Coord { x, y })
    }

    /// Node at a grid coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.cols && c.y < self.core_rows + 2,
            "coord out of grid"
        );
        NodeId(c.y as u32 * self.cols as u32 + c.x as u32)
    }

    /// Coordinate of a node.
    pub fn coord(&self, n: NodeId) -> Coord {
        Coord {
            x: (n.0 % self.cols as u32) as u16,
            y: (n.0 / self.cols as u32) as u16,
        }
    }

    /// What occupies node `n`.
    pub fn node_kind(&self, n: NodeId) -> NodeKind {
        let c = self.coord(n);
        if c.y == 0 {
            NodeKind::LlcBank(c.x as u32)
        } else if c.y == self.core_rows + 1 {
            NodeKind::LlcBank(self.cols as u32 + c.x as u32)
        } else {
            NodeKind::Core((c.y as u32 - 1) * self.cols as u32 + c.x as u32)
        }
    }

    /// The precomputed X-then-Y route from `src` to `dst` (empty when
    /// `src == dst`).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route<'_> {
        let n = self.node_count();
        Route::new(&self.routes[src.index() * n + dst.index()])
    }

    /// The `(from, to)` endpoints of every unidirectional link.
    pub fn link_table(&self) -> &[(NodeId, NodeId)] {
        &self.links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hammerblade_dimensions() {
        let cfg = MeshConfig::hammerblade_128();
        assert_eq!(cfg.core_count(), 128);
        assert_eq!(cfg.llc_count(), 32);
        assert_eq!(cfg.node_count(), 160);
    }

    #[test]
    fn core_node_roundtrip() {
        let cfg = MeshConfig::new(5, 3, 0);
        for core in 0..cfg.core_count() {
            let node = cfg.core_node(core);
            assert_eq!(cfg.node_kind(node), NodeKind::Core(core as u32));
        }
    }

    #[test]
    fn llc_node_roundtrip() {
        let cfg = MeshConfig::new(5, 3, 0);
        for bank in 0..cfg.llc_count() {
            let node = cfg.llc_node(bank);
            assert_eq!(cfg.node_kind(node), NodeKind::LlcBank(bank as u32));
        }
    }

    #[test]
    fn llc_rows_bracket_core_rows() {
        let cfg = MeshConfig::new(4, 2, 0);
        assert_eq!(cfg.coord(cfg.llc_node(0)).y, 0);
        assert_eq!(cfg.coord(cfg.core_node(0)).y, 1);
        assert_eq!(cfg.coord(cfg.llc_node(4)).y, 3);
    }

    #[test]
    fn route_is_x_then_y() {
        let cfg = MeshConfig::new(4, 4, 0);
        let src = cfg.node_at(Coord { x: 0, y: 1 });
        let dst = cfg.node_at(Coord { x: 3, y: 4 });
        let route = cfg.route(src, dst);
        let links = cfg.link_table();
        let mut seen_y_move = false;
        let mut at = src;
        for l in route.links() {
            let (from, to) = links[l.index()];
            assert_eq!(from, at, "route must be contiguous");
            let (cf, ct) = (cfg.coord(from), cfg.coord(to));
            if cf.y != ct.y {
                seen_y_move = true;
            } else {
                assert!(!seen_y_move, "X move after Y move violates X-Y order");
            }
            at = to;
        }
        assert_eq!(at, dst);
    }

    #[test]
    fn route_is_minimal_without_ruche() {
        let cfg = MeshConfig::new(6, 4, 0);
        let src = cfg.node_at(Coord { x: 1, y: 1 });
        let dst = cfg.node_at(Coord { x: 5, y: 4 });
        assert_eq!(cfg.route(src, dst).links().len(), (5 - 1) + (4 - 1));
    }

    #[test]
    fn ruche_shortens_long_x_routes() {
        let no_ruche = MeshConfig::new(16, 2, 0);
        let ruche = MeshConfig::new(16, 2, 3);
        let src_n = no_ruche.node_at(Coord { x: 0, y: 1 });
        let dst_n = no_ruche.node_at(Coord { x: 15, y: 1 });
        let src_r = ruche.node_at(Coord { x: 0, y: 1 });
        let dst_r = ruche.node_at(Coord { x: 15, y: 1 });
        let plain = no_ruche.route(src_n, dst_n).links().len();
        let express = ruche.route(src_r, dst_r).links().len();
        assert_eq!(plain, 15);
        assert_eq!(express, 5); // 15 = 3 * 5 express hops, no local hops
        assert!(express < plain);
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn core_node_bounds_checked() {
        let cfg = MeshConfig::new(2, 2, 0);
        cfg.core_node(4);
    }
}
