//! Route representation.
//!
//! Routes are precomputed by [`MeshConfig`](crate::MeshConfig); this
//! module only defines the lightweight view type handed to callers.

use crate::LinkId;

/// A borrowed view of a precomputed route: the ordered unidirectional
/// links a packet crosses from source to destination.
#[derive(Debug, Clone, Copy)]
pub struct Route<'a> {
    links: &'a [LinkId],
}

impl<'a> Route<'a> {
    pub(crate) fn new(links: &'a [LinkId]) -> Self {
        Route { links }
    }

    /// The links of the route, in traversal order. Empty for a
    /// zero-hop (`src == dst`) route.
    pub fn links(&self) -> &'a [LinkId] {
        self.links
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when source equals destination.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::topology::{Coord, MeshConfig};

    #[test]
    fn empty_route_for_self() {
        let cfg = MeshConfig::new(3, 3, 0);
        let n = cfg.node_at(Coord { x: 1, y: 1 });
        let r = cfg.route(n, n);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn reverse_route_has_same_length_without_ruche() {
        let cfg = MeshConfig::new(5, 4, 0);
        let a = cfg.node_at(Coord { x: 0, y: 1 });
        let b = cfg.node_at(Coord { x: 4, y: 3 });
        assert_eq!(cfg.route(a, b).len(), cfg.route(b, a).len());
    }
}
