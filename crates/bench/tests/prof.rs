//! Profiler invariants, mirroring the fault-injection zero-cost
//! contract in `tests/chaos.rs` (see DESIGN.md §13):
//!
//! 1. **Zero cost when off — and when on**: enabling
//!    `MachineConfig::profile` changes no simulated state. Payloads,
//!    cycle counts, and instruction counts are byte-identical with the
//!    profiler attached.
//! 2. **Span-complete attribution**: on every core the nine bucket
//!    totals sum *exactly* to that core's elapsed cycles — no
//!    unattributed time, no double counting — across random machine
//!    shapes and both scheduling shapes (recursive fib, flat scan).
//! 3. **Off means off**: without the flag, `RunReport::profile` is
//!    `None` and no counters are collected.

use mosaic_bench::chaos;
use mosaic_sim::{Bucket, MachineConfig};
use mosaic_workloads::{table1_benchmarks, Scale};
use proptest::prelude::*;

fn machine_with(cols: u16, rows: u16, profile: bool) -> MachineConfig {
    let mut m = MachineConfig::small(cols, rows);
    m.profile = profile;
    m
}

#[test]
fn profiled_runs_are_byte_identical_to_unprofiled_runs() {
    for wl in chaos::WORKLOADS {
        let off = chaos::run(wl, machine_with(4, 2, false), Scale::Tiny);
        let on = chaos::run(wl, machine_with(4, 2, true), Scale::Tiny);
        assert_eq!(off.digest.payload, on.digest.payload, "{wl} payload");
        assert_eq!(off.digest.cycles, on.digest.cycles, "{wl} cycles");
        assert_eq!(off.instructions, on.instructions, "{wl} instructions");
    }
}

#[test]
fn table1_workloads_profile_with_span_complete_attribution() {
    for b in table1_benchmarks(Scale::Tiny) {
        let on = b.run(
            machine_with(4, 2, true),
            mosaic_runtime::RuntimeConfig::work_stealing(),
        );
        on.assert_verified();
        let p = on.report.profile.as_ref().expect("profiler was enabled");
        assert!(
            p.accounting_error().is_none(),
            "{}: bucket sums diverge from elapsed cycles: {:?}",
            b.name(),
            p.accounting_error()
        );
        assert_eq!(p.cores(), 8, "{} core count", b.name());
        // A 4x2 work-stealing run always searches for work somewhere.
        assert!(
            p.bucket_total(Bucket::StealSearch) + p.bucket_total(Bucket::Idle) > 0,
            "{}: no steal-search or idle cycles on an 8-core run",
            b.name()
        );
    }
}

#[test]
fn report_has_no_profile_without_the_flag() {
    let b = &table1_benchmarks(Scale::Tiny)[0];
    let out = b.run(
        machine_with(2, 2, false),
        mosaic_runtime::RuntimeConfig::work_stealing(),
    );
    assert!(out.report.profile.is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across random small machine shapes, attribution stays
    /// span-complete and the profiler stays invisible to the
    /// simulation: cycles and payloads match the unprofiled run bit
    /// for bit.
    #[test]
    fn bucket_sums_equal_elapsed_on_random_machines(
        cols in 1u16..5,
        rows in 1u16..3,
    ) {
        for wl in chaos::WORKLOADS {
            let off = chaos::run(wl, machine_with(cols, rows, false), Scale::Tiny);
            let on = chaos::run(wl, machine_with(cols, rows, true), Scale::Tiny);
            prop_assert!(on.error.is_none(), "{wl} crashed under profiling");
            prop_assert_eq!(on.digest.payload, off.digest.payload,
                "{} payload changed on {}x{}", wl, cols, rows);
            prop_assert_eq!(on.digest.cycles, off.digest.cycles,
                "{} cycles changed on {}x{}", wl, cols, rows);
        }
        // The chaos digest drops the report, so the span-completeness
        // half of the property runs through a Table-1 instance.
        let b = &table1_benchmarks(Scale::Tiny)[1];
        let out = b.run(
            machine_with(cols, rows, true),
            mosaic_runtime::RuntimeConfig::work_stealing(),
        );
        prop_assert!(out.verified, "{} failed verification", b.name());
        let p = out.report.profile.as_ref().expect("profiler was enabled");
        prop_assert!(p.accounting_error().is_none(),
            "{}x{}: {:?}", cols, rows, p.accounting_error());
        let cores = (cols as usize) * (rows as usize);
        prop_assert_eq!(p.buckets.len(), cores);
    }
}
