//! Tests of the harness plumbing itself: the sweep driver, table
//! rendering, and figure helpers produce consistent artifacts.

use mosaic_bench::{sweep, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{fib::Fib, Benchmark};

#[test]
fn sweep_runs_all_configs_and_skips_missing_baselines() {
    let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(Fib { n: 8 })];
    let rows = sweep::run_sweep(&benches, &MachineConfig::small(2, 2), |_, _, _| {});
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert!(!row.has_static_baseline, "Fib has no static baseline");
    assert_eq!(row.results.len(), RuntimeConfig::table1_sweep().len());
    // Static slots empty, WS slots filled and verified.
    assert_eq!(row.results.iter().filter(|r| r.is_none()).count(), 2);
    for r in row.results.iter().flatten() {
        assert!(r.verified, "{} failed", r.config);
        assert!(r.cycles > 0 && r.instructions > 0);
    }
    assert!(row.static_baseline_cycles().is_none());
    assert!(row.cycles_of("ws/spm-stack/spm-q").is_some());
}

#[test]
fn sweep_rows_expose_baseline_for_loop_workloads() {
    use mosaic_workloads::matmul::MatMul;
    let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(MatMul { n: 16, seed: 1 })];
    let rows = sweep::run_sweep(&benches, &MachineConfig::small(2, 2), |_, _, _| {});
    assert!(rows[0].static_baseline_cycles().unwrap() > 0);
}

#[test]
fn table_renders_all_rows() {
    let mut t = Table::new(&["a", "b", "c"]);
    for i in 0..5 {
        t.row(vec![format!("r{i}"), format!("{}", i * 10), "x".into()]);
    }
    let s = t.render();
    assert_eq!(s.lines().count(), 7); // header + rule + 5 rows
    assert!(s.contains("r4"));
}
