//! Tests of the harness plumbing itself: the sweep driver, table
//! rendering, and figure helpers produce consistent artifacts.

use mosaic_bench::{sweep, GoldenFile, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{fib::Fib, matmul::MatMul, Benchmark};

#[test]
fn sweep_runs_all_configs_and_skips_missing_baselines() {
    let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(Fib { n: 8 })];
    let rows = sweep::run_sweep(&benches, &MachineConfig::small(2, 2), |_, _, _| {});
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert!(!row.has_static_baseline, "Fib has no static baseline");
    assert_eq!(row.results.len(), RuntimeConfig::table1_sweep().len());
    // Static slots empty, WS slots filled and verified.
    assert_eq!(row.results.iter().filter(|r| r.is_none()).count(), 2);
    for r in row.results.iter().flatten() {
        assert!(r.verified, "{} failed", r.config);
        assert!(r.cycles > 0 && r.instructions > 0);
    }
    assert!(row.static_baseline_cycles().is_none());
    assert!(row.cycles_of("ws/spm-stack/spm-q").is_some());
}

#[test]
fn sweep_rows_expose_baseline_for_loop_workloads() {
    let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(MatMul { n: 16, seed: 1 })];
    let rows = sweep::run_sweep(&benches, &MachineConfig::small(2, 2), |_, _, _| {});
    assert!(rows[0].static_baseline_cycles().unwrap() > 0);
}

#[test]
fn parallel_sweep_matches_serial_exactly() {
    // The core guarantee of the job pool: `--jobs N` produces results
    // indistinguishable from a serial run, cell for cell.
    let benches: Vec<Box<dyn Benchmark>> =
        vec![Box::new(MatMul { n: 16, seed: 1 }), Box::new(Fib { n: 8 })];
    let machine = MachineConfig::small(2, 2);
    let (serial, t1) = sweep::run_sweep_jobs(&benches, &machine, 1, |_, _, _| {});
    let (parallel, t4) = sweep::run_sweep_jobs(&benches, &machine, 4, |_, _, _| {});
    assert_eq!(t1.jobs, 1);
    assert_eq!(t4.jobs, 4);
    assert_eq!(t1.cells, t4.cells);
    assert_eq!(serial, parallel, "jobs=4 diverged from jobs=1");
}

#[test]
fn run_cells_collects_in_order_for_any_job_count() {
    for jobs in [1usize, 2, 3, 8, 32] {
        let mut seen = Vec::new();
        sweep::run_cells(
            17,
            jobs,
            |i| i * i,
            |i, v| {
                assert_eq!(v, i * i);
                seen.push(i);
            },
        );
        let expect: Vec<usize> = (0..17).collect();
        assert_eq!(seen, expect, "out-of-order collection at jobs={jobs}");
    }
}

#[test]
fn golden_round_trips_through_json() {
    // Serialize a real sweep to golden JSON, parse it back, and verify
    // the parsed file compares clean against the original.
    let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(MatMul { n: 16, seed: 1 })];
    let rows = sweep::run_sweep(&benches, &MachineConfig::small(2, 2), |_, _, _| {});
    let mut golden = GoldenFile::new("harness_test", "tiny", 2, 2);
    golden.push_sweep(&rows);
    assert!(!golden.cells.is_empty());
    let json = golden.to_json();
    let parsed = GoldenFile::parse(&json).expect("golden JSON must parse");
    assert_eq!(parsed.cells.len(), golden.cells.len());
    assert!(
        golden.diff(&parsed).is_empty(),
        "round-tripped golden differs"
    );
}

#[test]
fn table_renders_all_rows() {
    let mut t = Table::new(&["a", "b", "c"]);
    for i in 0..5 {
        t.row(vec![format!("r{i}"), format!("{}", i * 10), "x".into()]);
    }
    let s = t.render();
    assert_eq!(s.lines().count(), 7); // header + rule + 5 rows
    assert!(s.contains("r4"));
}
