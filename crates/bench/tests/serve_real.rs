//! End-to-end serve test with the real [`BinExecutor`]: a genuine
//! experiment harness (`trace_run --scale tiny`, the cheapest cell)
//! runs as a child process of the daemon, and the second submission of
//! the identical spec is answered from the content-addressed cache
//! with a byte-identical payload.

use mosaic_bench::BinExecutor;
use mosaic_serve::{Client, JobSpec, JobState, SchedConfig, Server, ServerConfig, SubmitReply};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn real_tiny_job_twice_second_is_cache_hit() {
    // The child harness writes `results/` relative to its cwd (which it
    // inherits from this process); run from a scratch dir so test runs
    // do not litter the crate directory. Safe: this is the only test
    // in this binary.
    let scratch = std::env::temp_dir().join(format!("mosaic-serve-real-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("mkdir scratch");
    std::env::set_current_dir(&scratch).expect("chdir scratch");

    // CARGO_BIN_EXE_* points at the freshly built harness binary; its
    // directory is where all sibling experiment bins live.
    let exe = std::path::PathBuf::from(env!("CARGO_BIN_EXE_trace_run"));
    let exe_dir = exe.parent().expect("bin dir").to_path_buf();
    let executor = BinExecutor {
        exe_dir,
        child_jobs: 1,
        host_threads: 1,
        calibration: None,
    };
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sched: SchedConfig {
            queue_cap: 4,
            workers: 1,
            job_timeout: Duration::from_secs(300),
            ..SchedConfig::default()
        },
        cache_dir: None,
        journal_dir: None,
        peers: Vec::new(),
    };
    let server = Server::start(cfg, Arc::new(executor)).expect("start server");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");

    let spec = JobSpec::new("trace_run", "tiny");
    let SubmitReply::Accepted { id, cached, .. } = client.submit(&spec).expect("submit") else {
        panic!("expected acceptance");
    };
    assert!(!cached);
    let first = client.wait_result(&id).expect("result");
    assert_eq!(
        first.state,
        JobState::Done,
        "trace_run failed: {:?}",
        first.error
    );
    let payload1 = first.payload.expect("payload");
    assert!(
        payload1.contains("\"cells\""),
        "payload should be golden-format JSON, got: {}",
        &payload1[..payload1.len().min(200)]
    );

    let SubmitReply::Accepted {
        id: id2, cached, ..
    } = client.submit(&spec).expect("resubmit")
    else {
        panic!("expected acceptance");
    };
    assert_eq!(id2, id);
    assert!(cached, "second identical submission must hit the cache");
    let second = client.wait_result(&id).expect("cached result");
    assert_eq!(
        second.payload.as_deref(),
        Some(payload1.as_str()),
        "cached payload must be byte-identical"
    );

    let snap = client.metrics().expect("metrics");
    let obj = snap.as_object("metrics").expect("object");
    let hits = obj
        .get("cache_hits", "metrics")
        .expect("cache_hits")
        .as_u64()
        .expect("u64");
    assert!(hits >= 1, "expected at least one cache hit, got {hits}");

    client.shutdown().expect("shutdown");
    server.join();
}
