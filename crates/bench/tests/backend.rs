//! The dual-fidelity seam's two contracts, pinned from the harness
//! side:
//!
//! 1. `CycleBackend` is a transparent pass-through — the committed
//!    golden numbers reproduce *byte-for-byte* through the seam at
//!    every host-thread count, so threading a `Backend` through the
//!    harnesses changed nothing about the cycle-accurate truth.
//! 2. `AnalyticBackend` is a pure function of (machine, calibration):
//!    deterministic across calls, and monotone non-increasing in core
//!    count for static-loop demands (`span_hop == 0` — the property
//!    `mosaic-model`'s module docs promise the backend pins down).

use mosaic_bench::{sweep, GoldenFile};
use mosaic_model::{CalFamily, CalibrationTable, WorkloadDemand, PPM};
use mosaic_sim::backend::{
    AnalyticBackend, Backend, BackendJob, CycleBackend, CycleOutcome, FamilyKey,
};
use mosaic_sim::MachineConfig;
use mosaic_workloads::Scale;
use proptest::prelude::*;

/// The committed golden for the table1 tiny sweep at the default 8x4
/// shape — the exact bytes `--check-golden` diffs against.
fn committed_table1_tiny() -> String {
    let path = format!(
        "{}/../../results/golden/table1_tiny_8x4.json",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).expect("committed golden table1_tiny_8x4.json")
}

#[test]
fn cycle_backend_reproduces_committed_goldens_at_every_host_thread_count() {
    let committed_text = committed_table1_tiny();
    let committed = GoldenFile::parse(&committed_text).expect("committed golden parses");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for host_threads in [1usize, 2, 4] {
        let mut machine = MachineConfig::small(8, 4);
        machine.host_threads = host_threads;
        // Sweep-pool budget: jobs x host-threads-per-sim <= host cores.
        let jobs = (host / host_threads).max(1);
        let rows = sweep::table1_sweep_backend(Scale::Tiny, &machine, &CycleBackend, jobs);
        let mut fresh = GoldenFile::new("table1", "tiny", 8, 4);
        fresh.push_sweep(&rows);
        // Cell-level diff first: on failure it names the drifted cell
        // instead of dumping two JSON blobs.
        let drift = committed.diff(&fresh);
        assert!(
            drift.is_empty(),
            "host_threads={host_threads}: cells drifted from committed golden: {drift:?}"
        );
        assert_eq!(
            fresh.to_json(),
            committed_text,
            "host_threads={host_threads}: serialized golden is not byte-identical"
        );
    }
}

// ---------------------------------------------------------------- //

/// A job the analytic backend must answer *without* executing.
struct NeverExecute;

impl BackendJob for NeverExecute {
    fn family(&self) -> FamilyKey {
        FamilyKey {
            workload: "Synthetic".into(),
            config: "ws/spm-stack/spm-q".into(),
            scale: "tiny".into(),
        }
    }
    fn execute(&self, _machine: &MachineConfig) -> CycleOutcome {
        panic!("the analytic backend must never reach the cycle engine");
    }
}

/// Wrap a synthetic demand in a perfectly calibrated single-family
/// table covering [`NeverExecute`]'s family.
fn table_for(demand: WorkloadDemand) -> CalibrationTable {
    let mut t = CalibrationTable::new(100_000);
    t.families.push(CalFamily {
        workload: "Synthetic".into(),
        config: "ws/spm-stack/spm-q".into(),
        scale: "tiny".into(),
        demand,
        points: Vec::new(),
        correction_ppm: PPM,
        max_err_ppm: 0,
    });
    t
}

/// Static-loop demands: no remote-span growth (`span_hop == 0`), no
/// dynamic-runtime overhead — the regime where more cores can only
/// help. Follows the model's own monotonicity precedent
/// (`estimate.rs` zeroes `steal_search`/`queue_lock` for the same
/// reason).
fn static_loop_demand(
    compute: u64,
    stalls: (u64, u64, u64),
    llc_accesses: u64,
    link_flits: u64,
    span: u64,
) -> WorkloadDemand {
    let (spm_stall, llc_stall, dram_stall) = stalls;
    WorkloadDemand {
        base_cols: 2,
        base_rows: 2,
        base_elapsed: compute / 4 + span,
        instructions: compute / 2,
        compute,
        spm_stall,
        llc_stall,
        dram_stall,
        steal_search: 0,
        queue_lock: 0,
        llc_accesses,
        link_flits,
        span,
        span_hop: 0,
        ..WorkloadDemand::default()
    }
}

proptest! {
    // Each case runs the model across four mesh shapes; keep the
    // shapes small because deriving machine parameters allocates the
    // whole NoC.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn analytic_backend_is_deterministic_and_monotone_in_core_count(
        compute in 1_000u64..200_000,
        stalls in (0u64..50_000, 0u64..50_000, 0u64..50_000),
        llc_accesses in 0u64..20_000,
        link_flits in 0u64..20_000,
        span in 0u64..5_000,
    ) {
        let demand = static_loop_demand(compute, stalls, llc_accesses, link_flits, span);
        let backend = AnalyticBackend::new(table_for(demand));
        let mut previous: Option<u64> = None;
        for (cols, rows) in [(2u16, 2u16), (4, 2), (4, 4), (8, 4)] {
            let machine = MachineConfig::small(cols, rows);
            let a = backend.run_cell(&machine, &NeverExecute).unwrap();
            let b = backend.run_cell(&machine, &NeverExecute).unwrap();
            prop_assert_eq!(a.cycles, b.cycles, "nondeterministic at {}x{}", cols, rows);
            prop_assert_eq!(a.instructions, b.instructions);
            prop_assert_eq!(a.estimate.clone(), b.estimate.clone());
            prop_assert!(a.verified, "analytic answers always verify");
            if let Some(prev) = previous {
                prop_assert!(
                    a.cycles <= prev,
                    "static-loop estimate grew with cores at {}x{}: {} > {}",
                    cols, rows, a.cycles, prev
                );
            }
            previous = Some(a.cycles);
        }
    }
}
