//! Fault-injection properties over the chaos workloads.
//!
//! The contract under test (see DESIGN.md §12):
//!
//! 1. **Zero cost when off**: `faults: None` and the empty
//!    `FaultPlan::default()` produce byte-identical runs.
//! 2. **Timing-only plans are result-transparent**: for *any* seeded
//!    timing plan, payloads match the fault-free run bit for bit and
//!    the simulation still terminates (a hang would trip the sim
//!    watchdog and fail the run).
//! 3. **Data faults are never silently absorbed**: a bit flip landing
//!    in an output word is reported as a divergence.

use mosaic_bench::chaos;
use mosaic_chaos::{DivergenceChecker, FaultBurst, FaultPlan, SpikeBurst};
use mosaic_sim::MachineConfig;
use mosaic_workloads::Scale;
use proptest::prelude::*;

fn machine_with(plan: Option<FaultPlan>) -> MachineConfig {
    let mut m = MachineConfig::small(4, 2);
    m.faults = plan;
    m
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    for wl in chaos::WORKLOADS {
        let off = chaos::run(wl, machine_with(None), Scale::Tiny);
        let empty = chaos::run(wl, machine_with(Some(FaultPlan::default())), Scale::Tiny);
        assert_eq!(off.digest.payload, empty.digest.payload, "{wl} payload");
        assert_eq!(off.digest.cycles, empty.digest.cycles, "{wl} cycles");
        assert_eq!(off.instructions, empty.instructions, "{wl} instructions");
    }
}

#[test]
fn output_word_flips_are_detected_as_divergence() {
    // fib stores its result at DRAM word 0; scan's outputs start at
    // word `len`. An at-end flip in either region must be caught.
    let (_, scan_len) = chaos::params(Scale::Tiny);
    let cases = [
        ("fib", "seed=1,horizon=1000,flip=dram:0:7@end"),
        (
            "scan",
            &format!("seed=1,horizon=1000,flip=dram:{}:3@end", scan_len + 5),
        ),
    ];
    for (wl, spec) in cases {
        let plan = FaultPlan::parse(spec).expect("valid plan");
        let report = DivergenceChecker::check(&plan, |p| {
            chaos::run(wl, machine_with(p.cloned()), Scale::Tiny).digest
        });
        assert!(report.diverged(), "{wl}: flip {spec} was silently absorbed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded timing-only plan leaves both workloads' payloads
    /// bit-identical to the fault-free run, still verified against the
    /// host reference, and terminating (`run` would return a crashed
    /// ChaosRun on a watchdog trip or deadlock).
    #[test]
    fn timing_only_plans_preserve_results(
        seed in 1u64..1_000_000,
        horizon in 500u64..4_000,
        links in 0u32..6, link_len in 50u64..400,
        banks in 0u32..4, bank_extra in 1u64..40,
        freeze in 0u32..4, freeze_len in 50u64..500,
    ) {
        let plan = FaultPlan {
            seed,
            horizon,
            links: FaultBurst { count: links, len: link_len },
            banks: SpikeBurst { count: banks, len: 200, extra: bank_extra },
            dram: SpikeBurst { count: 1, len: 300, extra: 15 },
            freeze: FaultBurst { count: freeze, len: freeze_len },
            flips: Vec::new(),
        };
        prop_assert!(plan.is_timing_only());
        for wl in chaos::WORKLOADS {
            let clean = chaos::run(wl, machine_with(None), Scale::Tiny);
            let faulted = chaos::run(wl, machine_with(Some(plan.clone())), Scale::Tiny);
            prop_assert!(faulted.error.is_none(),
                "{wl} did not terminate cleanly under {}: {:?}", plan.to_spec(), faulted.error);
            prop_assert!(faulted.digest.verified, "{wl} failed verification");
            prop_assert_eq!(faulted.digest.payload, clean.digest.payload,
                "{} payload changed under timing-only plan {}", wl, plan.to_spec());
        }
    }

    /// Plan materialization is deterministic: the same spec string
    /// yields the same cycle counts run over run.
    #[test]
    fn faulted_runs_are_reproducible(seed in 1u64..100_000) {
        let mut plan = FaultPlan::timing(seed);
        plan.horizon = 2_000;
        let a = chaos::run("scan", machine_with(Some(plan.clone())), Scale::Tiny);
        let b = chaos::run("scan", machine_with(Some(plan)), Scale::Tiny);
        prop_assert_eq!(a.digest.cycles, b.digest.cycles);
        prop_assert_eq!(a.digest.payload, b.digest.payload);
    }
}
