//! Cross-thread-count determinism: the window-parallel engine
//! (`MachineConfig::host_threads`) must produce *byte-identical*
//! artifacts — golden JSON and profile JSON, the exact bytes CI diffs
//! and the serve cache stores — at every host-thread count. This is
//! the invariant that lets `JobSpec::digest` ignore `host_threads`
//! and lets the `par-determinism` CI job diff emitted files directly.

use mosaic_bench::golden::GoldenFile;
use mosaic_bench::prof;
use mosaic_chaos::FaultPlan;
use mosaic_runtime::RuntimeConfig;
use mosaic_serve::JobSpec;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{fib, uts, Benchmark, Scale};
use proptest::prelude::*;

/// Run one bench with the profiler attached and serialize the run the
/// way the harnesses do: a golden file plus a profile JSON blob.
fn artifacts(
    bench: &dyn Benchmark,
    cols: u16,
    rows: u16,
    host_threads: usize,
    faults: Option<&FaultPlan>,
) -> (String, String) {
    let mut machine = MachineConfig::small(cols, rows);
    machine.profile = true;
    machine.faults = faults.cloned();
    machine.host_threads = host_threads;
    let out = bench.run(machine, RuntimeConfig::work_stealing());
    let r = &out.report;
    let mut golden = GoldenFile::new("par_identity", "tiny", cols, rows);
    golden.push(bench.name(), "ws", r.cycles, r.instructions(), out.verified);
    let profile = r.profile.as_ref().expect("profiler was attached");
    let prof_json = prof::profile_to_json("par_identity/ws", profile);
    (golden.to_json(), prof_json)
}

proptest! {
    // Each case is several full simulations; a handful of cases keeps
    // the suite CI-friendly while still sampling workload x shape x
    // thread-count combinations the fixed tests would miss.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn goldens_and_profiles_are_byte_identical_across_host_threads(
        which in 0..2usize,
        wide in any::<bool>(),
        host_threads in 2..=8usize,
    ) {
        let bench: Box<dyn Benchmark> = if which == 0 {
            fib::instances(Scale::Tiny).remove(0)
        } else {
            uts::instances(Scale::Tiny).remove(0)
        };
        let (cols, rows) = if wide { (4, 4) } else { (4, 2) };
        let (golden_seq, prof_seq) = artifacts(bench.as_ref(), cols, rows, 1, None);
        let (golden_par, prof_par) = artifacts(bench.as_ref(), cols, rows, host_threads, None);
        prop_assert_eq!(golden_seq, golden_par);
        prop_assert_eq!(prof_seq, prof_par);
    }
}

/// Digest-exemption parity: every `JobSpec` field must either change
/// the digest when perturbed or be on the same exemption list detlint
/// checks statically (`detlint.toml` `[[digest]]` JobSpec). Adding a
/// field without deciding which side it lands on fails here three
/// ways: the exhaustive destructure below stops compiling, the
/// wire-form key count stops matching the mutator table, and the
/// per-field digest assertions catch a field the canonical serializer
/// silently drops.
#[test]
fn jobspec_fields_stay_digest_covered_or_exempt() {
    // Must mirror the exempt list in detlint.toml — fields that ride
    // the wire but are byte-identity-irrelevant to results.
    const EXEMPT: &[&str] = &["host_threads", "checkpoint_every"];

    let base = JobSpec::new("table1", "tiny");
    // Exhaustive destructure: a new JobSpec field is a compile error
    // here, forcing an entry in the mutator table below.
    let JobSpec {
        experiment: _,
        workload: _,
        config: _,
        scale: _,
        cols: _,
        rows: _,
        seed: _,
        sanitize: _,
        faults: _,
        fidelity: _,
        host_threads: _,
        checkpoint_every: _,
    } = base.clone();

    type Mutator = fn(&mut JobSpec);
    let mutators: &[(&str, Mutator)] = &[
        ("experiment", |s| s.experiment = "fig09_speedup".into()),
        ("workload", |s| s.workload = "Fib-12".into()),
        ("config", |s| s.config = "ws/spm-stack/spm-q".into()),
        ("scale", |s| s.scale = "small".into()),
        ("cols", |s| s.cols = 9),
        ("rows", |s| s.rows = 5),
        ("seed", |s| s.seed = 42),
        ("sanitize", |s| s.sanitize = true),
        ("faults", |s| {
            s.faults = "seed=1,horizon=1000,links=1x10".into()
        }),
        ("fidelity", |s| s.fidelity = "analytic".into()),
        ("host_threads", |s| s.host_threads = 8),
        ("checkpoint_every", |s| s.checkpoint_every = 25_000),
    ];

    // The wire form must carry every field under its own name, and
    // nothing the table doesn't cover.
    let json = base.to_json();
    let obj = json.as_object("spec").expect("spec serializes an object");
    let keys: Vec<&str> = obj.keys().collect();
    for (field, _) in mutators {
        assert!(
            keys.contains(field),
            "{field} missing from to_json: {keys:?}"
        );
    }
    assert_eq!(
        keys.len(),
        mutators.len(),
        "to_json carries a field the mutator table does not cover: {keys:?}"
    );

    for (field, mutate) in mutators {
        let mut spec = base.clone();
        mutate(&mut spec);
        assert_ne!(&spec, &base, "mutator for {field} is a no-op");
        if EXEMPT.contains(field) {
            assert_eq!(
                base.digest(),
                spec.digest(),
                "{field} is exempt (results are byte-identical across it) but \
                 changes the digest — it would fragment the result cache"
            );
        } else {
            assert_ne!(
                base.digest(),
                spec.digest(),
                "{field} does not reach the digest: two different computations \
                 would share a cache entry — serialize it in canonical_json or \
                 exempt it (here and in detlint.toml) with a justification"
            );
        }
    }
}

#[test]
fn freeze_faults_stay_deterministic_across_host_threads() {
    // Chaos freezes are scheduled engine-side at wake-schedule time,
    // so they land on the same simulated cycle whether or not the core
    // thread was computing ahead of the barrier. A timing-only plan
    // (freezes + link/bank/DRAM delays, no bit flips) must therefore
    // shift cycles identically at every host-thread count.
    let plan = FaultPlan::parse("seed=3,horizon=4000,links=8x200,banks=4x150+20,freeze=3x400")
        .expect("valid plan");
    let bench = &uts::instances(Scale::Tiny)[0];
    let baseline = artifacts(bench.as_ref(), 4, 2, 1, Some(&plan));
    for host_threads in [2, 4] {
        let parallel = artifacts(bench.as_ref(), 4, 2, host_threads, Some(&plan));
        assert_eq!(
            baseline, parallel,
            "faulted run diverged at host_threads={host_threads}"
        );
    }
}
