//! Cross-thread-count determinism: the window-parallel engine
//! (`MachineConfig::host_threads`) must produce *byte-identical*
//! artifacts — golden JSON and profile JSON, the exact bytes CI diffs
//! and the serve cache stores — at every host-thread count. This is
//! the invariant that lets `JobSpec::digest` ignore `host_threads`
//! and lets the `par-determinism` CI job diff emitted files directly.

use mosaic_bench::golden::GoldenFile;
use mosaic_bench::prof;
use mosaic_chaos::FaultPlan;
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{fib, uts, Benchmark, Scale};
use proptest::prelude::*;

/// Run one bench with the profiler attached and serialize the run the
/// way the harnesses do: a golden file plus a profile JSON blob.
fn artifacts(
    bench: &dyn Benchmark,
    cols: u16,
    rows: u16,
    host_threads: usize,
    faults: Option<&FaultPlan>,
) -> (String, String) {
    let mut machine = MachineConfig::small(cols, rows);
    machine.profile = true;
    machine.faults = faults.cloned();
    machine.host_threads = host_threads;
    let out = bench.run(machine, RuntimeConfig::work_stealing());
    let r = &out.report;
    let mut golden = GoldenFile::new("par_identity", "tiny", cols, rows);
    golden.push(bench.name(), "ws", r.cycles, r.instructions(), out.verified);
    let profile = r.profile.as_ref().expect("profiler was attached");
    let prof_json = prof::profile_to_json("par_identity/ws", profile);
    (golden.to_json(), prof_json)
}

proptest! {
    // Each case is several full simulations; a handful of cases keeps
    // the suite CI-friendly while still sampling workload x shape x
    // thread-count combinations the fixed tests would miss.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn goldens_and_profiles_are_byte_identical_across_host_threads(
        which in 0..2usize,
        wide in any::<bool>(),
        host_threads in 2..=8usize,
    ) {
        let bench: Box<dyn Benchmark> = if which == 0 {
            fib::instances(Scale::Tiny).remove(0)
        } else {
            uts::instances(Scale::Tiny).remove(0)
        };
        let (cols, rows) = if wide { (4, 4) } else { (4, 2) };
        let (golden_seq, prof_seq) = artifacts(bench.as_ref(), cols, rows, 1, None);
        let (golden_par, prof_par) = artifacts(bench.as_ref(), cols, rows, host_threads, None);
        prop_assert_eq!(golden_seq, golden_par);
        prop_assert_eq!(prof_seq, prof_par);
    }
}

#[test]
fn freeze_faults_stay_deterministic_across_host_threads() {
    // Chaos freezes are scheduled engine-side at wake-schedule time,
    // so they land on the same simulated cycle whether or not the core
    // thread was computing ahead of the barrier. A timing-only plan
    // (freezes + link/bank/DRAM delays, no bit flips) must therefore
    // shift cycles identically at every host-thread count.
    let plan = FaultPlan::parse("seed=3,horizon=4000,links=8x200,banks=4x150+20,freeze=3x400")
        .expect("valid plan");
    let bench = &uts::instances(Scale::Tiny)[0];
    let baseline = artifacts(bench.as_ref(), 4, 2, 1, Some(&plan));
    for host_threads in [2, 4] {
        let parallel = artifacts(bench.as_ref(), 4, 2, host_threads, Some(&plan));
        assert_eq!(
            baseline, parallel,
            "faulted run diverged at host_threads={host_threads}"
        );
    }
}
