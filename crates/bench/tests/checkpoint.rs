//! End-to-end checkpoint durability: the engine must emit
//! *byte-identical* checkpoint images at every host-thread count
//! (checkpoints are taken at canonical event boundaries, which the
//! window-parallel engine preserves), and `--resume-from` must accept
//! a genuine image — including across thread counts — while
//! hard-failing on a torn image or one written by a different run.

use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{fib, uts, Benchmark, Scale};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mosaic-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Run one tiny benchmark with checkpointing into `dir`; returns the
/// golden-relevant numbers so callers can also assert result identity.
fn run_checkpointed(
    bench: &dyn Benchmark,
    host_threads: usize,
    every: u64,
    dir: &Path,
    resume_from: Option<PathBuf>,
) -> (u64, u64) {
    let mut machine = MachineConfig::small(4, 2);
    machine.host_threads = host_threads;
    machine.checkpoint_every = every;
    machine.checkpoint_dir = Some(dir.to_path_buf());
    machine.resume_from = resume_from;
    let out = bench.run(machine, RuntimeConfig::work_stealing());
    assert!(out.verified, "workload must still verify");
    (out.report.cycles, out.report.instructions())
}

/// Every checkpoint image in `dir`, keyed by file name.
fn images(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("checkpoint dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".mckpt"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read checkpoint image"),
            )
        })
        .collect()
}

/// Images plus the run's (cycles, instructions), as captured at one
/// host-thread count for comparison against the others.
type Baseline = (BTreeMap<String, Vec<u8>>, (u64, u64));

#[test]
fn checkpoints_are_byte_identical_across_host_threads() {
    let bench = fib::instances(Scale::Tiny).remove(0);
    let mut baseline: Option<Baseline> = None;
    for host_threads in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("xthread-{host_threads}"));
        let numbers = run_checkpointed(bench.as_ref(), host_threads, 1000, &dir, None);
        let imgs = images(&dir);
        assert!(
            !imgs.is_empty(),
            "a multi-thousand-cycle run at cadence 1000 must checkpoint at least once"
        );
        match &baseline {
            None => baseline = Some((imgs, numbers)),
            Some((base_imgs, base_numbers)) => {
                assert_eq!(numbers, *base_numbers, "results diverged");
                let names: Vec<&String> = imgs.keys().collect();
                let base_names: Vec<&String> = base_imgs.keys().collect();
                assert_eq!(
                    names, base_names,
                    "host_threads={host_threads} checkpointed at different boundaries"
                );
                for (name, bytes) in &imgs {
                    assert_eq!(
                        bytes, &base_imgs[name],
                        "{name} differs at host_threads={host_threads}"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_verifies_a_real_checkpoint_even_across_thread_counts() {
    let bench = fib::instances(Scale::Tiny).remove(0);
    let dir = tmp_dir("resume-src");
    run_checkpointed(bench.as_ref(), 1, 1000, &dir, None);
    let imgs = images(&dir);
    let (name, _) = imgs.iter().next_back().expect("at least one checkpoint");
    let image = dir.join(name);

    // Re-execution from cycle 0 must land byte-exactly on the image's
    // recorded boundary — sequentially and window-parallel, since the
    // image itself is thread-count-invariant.
    for host_threads in [1usize, 4] {
        let out_dir = tmp_dir(&format!("resume-out-{host_threads}"));
        run_checkpointed(
            bench.as_ref(),
            host_threads,
            0,
            &out_dir,
            Some(image.clone()),
        );
        let _ = std::fs::remove_dir_all(&out_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_hard_fails_on_divergence_and_torn_images() {
    let fib_bench = fib::instances(Scale::Tiny).remove(0);
    let dir = tmp_dir("resume-bad");
    run_checkpointed(fib_bench.as_ref(), 1, 1000, &dir, None);
    let imgs = images(&dir);
    let (name, bytes) = imgs.iter().next_back().expect("at least one checkpoint");
    let image = dir.join(name);

    // A different workload on the same machine shape replays a
    // different event stream: its state can never match the image, and
    // claiming the run "resumed" it would be a lie. The engine turns
    // that into a hard failure, which `Mosaic::run` surfaces as a
    // panic carrying the divergence diagnostic.
    let uts_bench = uts::instances(Scale::Tiny).remove(0);
    let image_for_uts = image.clone();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut machine = MachineConfig::small(4, 2);
        machine.resume_from = Some(image_for_uts);
        uts_bench.run(machine, RuntimeConfig::work_stealing());
    }))
    .expect_err("resuming a foreign run must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(
        msg.contains("resume verification failed"),
        "unexpected failure: {msg}"
    );

    // A torn image (killed mid-write without the tmp+rename dance)
    // must be rejected up front as an i/o-level failure.
    let torn = dir.join("torn.mckpt");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).expect("write torn image");
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut machine = MachineConfig::small(4, 2);
        machine.resume_from = Some(torn);
        fib_bench.run(machine, RuntimeConfig::work_stealing());
    }))
    .expect_err("a torn checkpoint must be rejected");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(
        msg.contains("checkpoint i/o failed"),
        "unexpected failure: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
