//! The `mosaic-serve` executor for real experiments, plus the
//! experiment catalog shared with `reproduce_all`.
//!
//! The daemon does not re-implement any experiment: the executor runs
//! the sibling harness binary (`table1`, `fig09_speedup`, ...) as a
//! child process with `--write-golden --golden-dir <scratch>` and
//! returns the golden JSON the harness writes — structured output via
//! the one serializer the repo already trusts, no stdout scraping.
//! Child stderr lines are streamed back as job progress events, the
//! cancel flag kills the child (which is how per-job timeouts reclaim
//! host threads), and a nonzero exit (verification failure, sanitizer
//! finding, golden drift) fails the job with the stderr tail attached.

use mosaic_serve::{Executor, JobSpec};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Every experiment harness `reproduce_all` runs, in its canonical
/// order (one golden file each under `results/golden/`).
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig05_heatmap",
    "fig06_rd_duplication",
    "fig07_fib_microbench",
    "fig09_speedup",
    "fig10_dynamic",
    "fig11_scaling",
    "ablation_grain",
    "ablation_victim",
    "ablation_ruche",
    "ablation_dealing",
    "trace_run",
    "chaos_sweep",
    "profile",
];

/// Experiments whose harnesses run on the analytic backend
/// (`--fidelity analytic`) — the sweep-shaped ones the calibration
/// grid covers. Everything else is cycle-accurate only.
pub const ANALYTIC_EXPERIMENTS: &[&str] = &["table1", "fig09_speedup"];

/// Experiments that sweep every Table-1 workload — the ones accepting
/// a `--workload` filter, and therefore the ones the fleet gateway can
/// fan out into per-workload subjobs. Coincides with
/// [`ANALYTIC_EXPERIMENTS`] today but means something different.
pub const SWEEP_EXPERIMENTS: &[&str] = &["table1", "fig09_speedup"];

/// Executor that runs experiment harness binaries as child processes.
pub struct BinExecutor {
    /// Directory holding the harness binaries (normally the daemon's
    /// own directory — all `mosaic-bench` bins install side by side).
    pub exe_dir: PathBuf,
    /// `--jobs` handed to each child, budgeted so
    /// `workers × child_jobs × host_threads_per_run ≤ host cores`.
    pub child_jobs: usize,
    /// Default `--host-threads` per simulation (the window-parallel
    /// engine); a spec's own `host_threads` can raise it per job. Part
    /// of the same budget: `host_threads_per_run` grows with it.
    pub host_threads: usize,
    /// Calibration table forwarded to analytic children
    /// (`--calibration`). `None` leaves the child resolving the
    /// committed default relative to its own working directory —
    /// fine in a repo checkout, wrong for a daemon started elsewhere
    /// with an explicit `--calibration`.
    pub calibration: Option<PathBuf>,
}

impl BinExecutor {
    /// An executor running the binaries next to the current one.
    pub fn beside_current_exe(
        child_jobs: usize,
        host_threads: usize,
    ) -> std::io::Result<BinExecutor> {
        let exe = std::env::current_exe()?;
        let exe_dir = exe
            .parent()
            .ok_or_else(|| std::io::Error::other("current exe has no parent dir"))?
            .to_path_buf();
        Ok(BinExecutor {
            exe_dir,
            child_jobs: child_jobs.max(1),
            host_threads: host_threads.max(1),
            calibration: None,
        })
    }

    fn validate(spec: &JobSpec) -> Result<(), String> {
        if !EXPERIMENTS.contains(&spec.experiment.as_str()) {
            return Err(format!(
                "unknown experiment {:?} (known: {})",
                spec.experiment,
                EXPERIMENTS.join(", ")
            ));
        }
        if !matches!(spec.scale.as_str(), "tiny" | "small" | "full") {
            return Err(format!("unknown scale {:?} (tiny|small|full)", spec.scale));
        }
        if (spec.cols == 0) != (spec.rows == 0) {
            return Err("cols and rows must be set together (or both 0)".to_string());
        }
        if !spec.workload.is_empty() && !SWEEP_EXPERIMENTS.contains(&spec.experiment.as_str()) {
            return Err(format!(
                "experiment {:?} does not support a workload filter (only the sweep \
                 experiments do: {})",
                spec.experiment,
                SWEEP_EXPERIMENTS.join(", ")
            ));
        }
        if !spec.config.is_empty() || spec.seed != 0 {
            return Err(
                "config filters and non-zero seeds are not supported by the \
                 experiment harnesses yet"
                    .to_string(),
            );
        }
        if !spec.faults.is_empty() {
            // Reject malformed plans at admission instead of letting
            // the child panic on its `--faults` flag.
            mosaic_chaos::FaultPlan::parse(&spec.faults)
                .map_err(|e| format!("bad faults spec {:?}: {e}", spec.faults))?;
        }
        match spec.fidelity.as_str() {
            "" | "cycle" => {}
            "analytic" => {
                if !ANALYTIC_EXPERIMENTS.contains(&spec.experiment.as_str()) {
                    return Err(format!(
                        "experiment {:?} is cycle-accurate only (analytic fidelity \
                         covers: {})",
                        spec.experiment,
                        ANALYTIC_EXPERIMENTS.join(", ")
                    ));
                }
            }
            "auto" => {
                // The scheduler resolves `auto` before the digest is
                // taken; one reaching the executor is a wiring bug.
                return Err("fidelity \"auto\" must be resolved by the scheduler".to_string());
            }
            other => return Err(format!("unknown fidelity {other:?} (cycle|analytic|auto)")),
        }
        Ok(())
    }
}

impl Executor for BinExecutor {
    fn run(
        &self,
        spec: &JobSpec,
        progress: &dyn Fn(u64, u64, &str),
        cancelled: &AtomicBool,
    ) -> Result<String, String> {
        Self::validate(spec)?;
        let scratch = std::env::temp_dir().join(format!(
            "mosaic-serve-{}-{}",
            std::process::id(),
            spec.digest()
        ));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).map_err(|e| format!("mkdir scratch: {e}"))?;

        let mut cmd = Command::new(self.exe_dir.join(&spec.experiment));
        cmd.arg("--scale").arg(&spec.scale);
        if spec.cols != 0 {
            cmd.args(["--cols", &spec.cols.to_string()]);
            cmd.args(["--rows", &spec.rows.to_string()]);
        }
        if spec.sanitize {
            cmd.arg("--sanitize");
        }
        if !spec.workload.is_empty() {
            // Fleet fan-out: this subjob runs one workload's row of the
            // sweep. Omitted when empty so legacy argv is unchanged.
            cmd.args(["--workload", &spec.workload]);
        }
        if !spec.faults.is_empty() {
            cmd.args(["--faults", &spec.faults]);
        }
        if spec.fidelity == "analytic" {
            // Omitted at the cycle default so legacy argv is unchanged.
            cmd.args(["--fidelity", &spec.fidelity]);
            if let Some(table) = &self.calibration {
                // Hand the child the same table the daemon's escalation
                // decisions read; without this it would fall back to
                // the committed default relative to its own cwd.
                cmd.arg("--calibration").arg(table);
            }
        }
        cmd.args(["--jobs", &self.child_jobs.to_string()]);
        let host_threads = spec.host_threads.max(self.host_threads);
        if host_threads > 1 {
            // Window-parallel engine inside each simulation. Omitted at
            // the default so legacy argv (and child behaviour) is
            // unchanged; the digest ignores it either way.
            cmd.args(["--host-threads", &host_threads.to_string()]);
        }
        if spec.checkpoint_every > 0 {
            // Durability knob: checkpoints land in the job's scratch
            // directory, so a crashed child leaves its images behind
            // for post-mortem while a clean run tidies them away with
            // the rest of the scratch. The digest ignores the cadence;
            // results are byte-identical either way.
            cmd.args(["--checkpoint-every", &spec.checkpoint_every.to_string()]);
            cmd.arg("--checkpoint-dir").arg(scratch.join("checkpoints"));
        }
        cmd.arg("--write-golden").arg("--golden-dir").arg(&scratch);
        cmd.stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());

        let run = run_child(cmd, spec, progress, cancelled);
        let payload = match run {
            Ok(()) => read_scratch_golden(&scratch),
            Err(e) => Err(e),
        };
        let _ = std::fs::remove_dir_all(&scratch);
        payload
    }
}

/// Spawn the child, stream its stderr as progress events, and poll
/// for exit and cancellation.
fn run_child(
    mut cmd: Command,
    spec: &JobSpec,
    progress: &dyn Fn(u64, u64, &str),
    cancelled: &AtomicBool,
) -> Result<(), String> {
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("launch {}: {e}", spec.experiment))?;
    let stderr = child.stderr.take().ok_or("child stderr not captured")?;
    // `progress` is not Send, so a helper thread forwards stderr lines
    // over a channel and the executor thread relays them as events
    // while polling exit status and the cancel flag.
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                return;
            }
        }
    });

    let mut cells_done: u64 = 0;
    let mut tail: VecDeque<String> = VecDeque::new();
    let mut relay = |line: String, progress: &dyn Fn(u64, u64, &str)| {
        if line.contains(" cycles ") {
            cells_done += 1;
        }
        tail.push_back(line.clone());
        if tail.len() > 25 {
            tail.pop_front();
        }
        progress(cells_done, 0, &line);
    };

    let status = loop {
        while let Ok(line) = rx.try_recv() {
            relay(line, progress);
        }
        if cancelled.load(Ordering::Relaxed) {
            let _ = child.kill();
            let _ = child.wait();
            let _ = reader.join();
            return Err("cancelled".to_string());
        }
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => {
                let _ = child.kill();
                return Err(format!("wait for {}: {e}", spec.experiment));
            }
        }
    };
    let _ = reader.join();
    while let Ok(line) = rx.try_recv() {
        relay(line, progress);
    }
    if !status.success() {
        let tail: Vec<String> = tail.into_iter().collect();
        return Err(format!(
            "{} exited with {status}; stderr tail:\n{}",
            spec.experiment,
            tail.join("\n")
        ));
    }
    Ok(())
}

/// The payload is the single golden JSON file the harness wrote into
/// the scratch directory.
fn read_scratch_golden(scratch: &std::path::Path) -> Result<String, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scratch)
        .map_err(|e| format!("read scratch dir: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    match files.as_slice() {
        [one] => std::fs::read_to_string(one).map_err(|e| format!("read golden payload: {e}")),
        [] => Err("harness wrote no golden file".to_string()),
        many => Err(format!(
            "harness wrote {} golden files, expected 1",
            many.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_specs() {
        let ok = JobSpec::new("table1", "tiny");
        assert!(BinExecutor::validate(&ok).is_ok());

        let mut bad = ok.clone();
        bad.experiment = "rm_rf".into();
        assert!(BinExecutor::validate(&bad).is_err());

        let mut bad = ok.clone();
        bad.scale = "huge".into();
        assert!(BinExecutor::validate(&bad).is_err());

        let mut bad = ok.clone();
        bad.cols = 8; // rows left 0
        assert!(BinExecutor::validate(&bad).is_err());

        let mut bad = ok.clone();
        bad.seed = 3;
        assert!(BinExecutor::validate(&bad).is_err());

        // Workload filters: fine on sweep experiments (the fleet
        // gateway's fan-out path), refused everywhere else.
        let mut filtered = ok.clone();
        filtered.workload = "cilksort".into();
        assert!(BinExecutor::validate(&filtered).is_ok());

        let mut bad = ok.clone();
        bad.experiment = "trace_run".into();
        bad.workload = "cilksort".into();
        assert!(BinExecutor::validate(&bad).is_err());

        let mut faulted = ok.clone();
        faulted.faults = "seed=7,horizon=1000,freeze=2x100".into();
        assert!(BinExecutor::validate(&faulted).is_ok());

        let mut bad = ok.clone();
        bad.faults = "not a plan".into();
        assert!(BinExecutor::validate(&bad).is_err());
    }

    #[test]
    fn catalog_matches_the_committed_goldens() {
        for exp in EXPERIMENTS {
            let path = format!("{}/../../results/golden/", env!("CARGO_MANIFEST_DIR"));
            let dir = std::fs::read_dir(path).expect("results/golden exists");
            assert!(
                dir.filter_map(|e| e.ok())
                    .any(|e| e.file_name().to_string_lossy().starts_with(exp)),
                "no committed golden for experiment {exp}"
            );
        }
    }
}
