#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # mosaic-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (one binary per experiment; see `src/bin/`), plus
//! Criterion benches over the runtime and simulator substrate.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 (DI and cycles, 6 configs x all workloads) |
//! | `fig05_heatmap` | Fig. 5 remote-SPM latency heatmap |
//! | `fig06_rd_duplication` | Fig. 6 read-only duplication, per kernel |
//! | `fig07_fib_microbench` | Fig. 7 Fib / Fib-S placement study |
//! | `fig09_speedup` | Fig. 9 speedup over the static baseline |
//! | `fig10_dynamic` | Fig. 10 CilkSort + MatrixTranspose variants |
//! | `fig11_scaling` | Fig. 11 scaling 1 to 128 cores |
//! | `ablation_*` | design-choice ablations (grain, victim, ruche, dealing) |
//! | `trace_run` | Perfetto/Chrome trace export (counter tracks + steal flows under `--profile`) |
//! | `chaos_sweep` | fault-injection invariants (timing-only plans, detected bit flips) |
//! | `profile` | Fig. 5 hot-spot story from `mosaic-prof` cycle attribution (see [`prof`]) |
//!
//! Every binary accepts `--scale tiny|small|full` and `--cols N
//! --rows N` to trade fidelity against wall-clock time (defaults keep
//! a full sweep in the minutes range on a laptop), plus the shared
//! observer/gating flags: `--jobs`, `--sanitize`, `--faults SPEC`,
//! `--profile`, `--prof-out DIR`, and
//! `--check-golden`/`--write-golden`.
//!
//! Two non-experiment binaries front the `mosaic-serve` subsystem:
//! `serve` (the simulation-as-a-service daemon; see [`service`]) and
//! `mosaic-client` (its CLI). `reproduce_all --via-server ADDR`
//! routes the whole reproduction through a running daemon.

pub mod chaos;
pub mod cli;
pub mod fleet;
pub mod golden;
pub mod prof;
pub mod sanitize;
pub mod service;
pub mod sweep;
pub mod table;

pub use cli::{GoldenMode, Options, CALIBRATION_PATH};
pub use fleet::SweepFanout;
pub use golden::{GoldenCell, GoldenCounter, GoldenFile};
pub use sanitize::{SanCell, SanitizeGate};
pub use service::{BinExecutor, EXPERIMENTS};
pub use sweep::{
    run_cells, run_sweep, run_sweep_backend, run_sweep_jobs, ConfigResult, SweepRow, SweepTiming,
};
pub use table::Table;
