//! Golden-number regression subsystem.
//!
//! Every reproduction binary can serialize its results as
//! machine-readable JSON under [`GOLDEN_DIR`] (one file per
//! experiment × scale × machine shape) and later *verify* a fresh run
//! against the committed file with **exact equality** — the simulator
//! is bit-deterministic, so any cycle drift is a real behavior change,
//! not noise. A failed check renders a per-cell diff table and exits
//! nonzero, which is what turns `reproduce_all --check-golden` into a
//! CI reproduction gate.
//!
//! The JSON codec is the workspace-shared [`jsonlite`] (the build
//! container cannot fetch serde): a strict writer plus a small
//! recursive-descent parser that accepts exactly what the writer emits
//! (objects, arrays, strings, unsigned integers, booleans). This file
//! only keeps the golden-specific canonical *layout* (stable key
//! order, one cell per line) so committed files diff cleanly.

use crate::table::Table;
use jsonlite::{escape, Json};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directory (relative to the repo root) holding committed goldens.
pub const GOLDEN_DIR: &str = "results/golden";

/// One measured cell: a (workload, config) point and its exact counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenCell {
    /// Workload display name (e.g. `PR-email`).
    pub workload: String,
    /// Configuration label (e.g. `ws/spm-stack/spm-q`, or an
    /// experiment-specific axis like `64c` for scaling columns).
    pub config: String,
    /// Simulated cycles (exact).
    pub cycles: u64,
    /// Dynamic instructions (exact).
    pub instructions: u64,
    /// Whether the run verified against the host reference.
    pub verified: bool,
}

/// One named profiler counter attached to a golden file (a bucket
/// total, a heatmap cell, a traffic count — anything `mosaic-prof`
/// measured that the experiment wants gated exactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenCounter {
    /// Counter name, e.g. `dup-off/steal_search`.
    pub name: String,
    /// Exact value.
    pub value: u64,
}

/// All cells of one experiment at one scale on one machine shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenFile {
    /// Experiment name (the binary name, e.g. `table1`).
    pub experiment: String,
    /// Scale preset name (`tiny`/`small`/`full`).
    pub scale: String,
    /// Mesh columns of the simulated machine.
    pub cols: u16,
    /// Mesh core rows of the simulated machine.
    pub rows: u16,
    /// Measured cells, in deterministic experiment order.
    pub cells: Vec<GoldenCell>,
    /// Profiler counters, in deterministic order. Serialized only when
    /// non-empty, so goldens of experiments that don't profile are
    /// byte-identical to the pre-profiler format.
    pub counters: Vec<GoldenCounter>,
}

impl GoldenFile {
    /// An empty golden file with the given identity.
    pub fn new(experiment: &str, scale: &str, cols: u16, rows: u16) -> Self {
        GoldenFile {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            cols,
            rows,
            cells: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Append one measured cell.
    pub fn push(
        &mut self,
        workload: impl Into<String>,
        config: impl Into<String>,
        cycles: u64,
        instructions: u64,
        verified: bool,
    ) {
        self.cells.push(GoldenCell {
            workload: workload.into(),
            config: config.into(),
            cycles,
            instructions,
            verified,
        });
    }

    /// Append one named profiler counter.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push(GoldenCounter {
            name: name.into(),
            value,
        });
    }

    /// Append every cell of a Table-1-style sweep, in sweep order.
    pub fn push_sweep(&mut self, rows: &[crate::sweep::SweepRow]) {
        for row in rows {
            for r in row.results.iter().flatten() {
                self.push(&row.name, r.config, r.cycles, r.instructions, r.verified);
            }
        }
    }

    /// The canonical file name: `{experiment}_{scale}_{cols}x{rows}.json`.
    pub fn file_name(&self) -> String {
        format!(
            "{}_{}_{}x{}.json",
            self.experiment, self.scale, self.cols, self.rows
        )
    }

    /// Serialize to the canonical JSON form (stable key order, one cell
    /// per line, trailing newline) so files diff cleanly in review.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"experiment\": {},", escape(&self.experiment));
        let _ = writeln!(s, "  \"scale\": {},", escape(&self.scale));
        let _ = writeln!(
            s,
            "  \"machine\": {{\"cols\": {}, \"rows\": {}}},",
            self.cols, self.rows
        );
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": {}, \"config\": {}, \"cycles\": {}, \"instructions\": {}, \"verified\": {}}}",
                escape(&c.workload),
                escape(&c.config),
                c.cycles,
                c.instructions,
                c.verified
            );
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]");
        if !self.counters.is_empty() {
            s.push_str(",\n  \"profile\": [\n");
            for (i, c) in self.counters.iter().enumerate() {
                let _ = write!(
                    s,
                    "    {{\"counter\": {}, \"value\": {}}}",
                    escape(&c.name),
                    c.value
                );
                s.push_str(if i + 1 < self.counters.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("  ]");
        }
        s.push_str("\n}\n");
        s
    }

    /// Parse the canonical JSON form back.
    pub fn parse(text: &str) -> Result<GoldenFile, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object("top level")?;
        let machine = obj.get("machine", "top level")?.as_object("machine")?;
        let mut file = GoldenFile {
            experiment: obj.get("experiment", "top level")?.as_string()?,
            scale: obj.get("scale", "top level")?.as_string()?,
            cols: machine.get("cols", "machine")?.as_u64()? as u16,
            rows: machine.get("rows", "machine")?.as_u64()? as u16,
            cells: Vec::new(),
            counters: Vec::new(),
        };
        for (i, cell) in obj
            .get("cells", "top level")?
            .as_array("cells")?
            .iter()
            .enumerate()
        {
            let c = cell.as_object(&format!("cells[{i}]"))?;
            file.cells.push(GoldenCell {
                workload: c.get("workload", "cell")?.as_string()?,
                config: c.get("config", "cell")?.as_string()?,
                cycles: c.get("cycles", "cell")?.as_u64()?,
                instructions: c.get("instructions", "cell")?.as_u64()?,
                verified: c.get("verified", "cell")?.as_bool()?,
            });
        }
        if let Some(profile) = obj.opt("profile") {
            for (i, counter) in profile.as_array("profile")?.iter().enumerate() {
                let c = counter.as_object(&format!("profile[{i}]"))?;
                file.counters.push(GoldenCounter {
                    name: c.get("counter", "profile entry")?.as_string()?,
                    value: c.get("value", "profile entry")?.as_u64()?,
                });
            }
        }
        Ok(file)
    }

    /// Cell-by-cell differences of `fresh` against `self` (the
    /// committed golden), as diff-table rows. Empty means identical.
    pub fn diff(&self, fresh: &GoldenFile) -> Vec<[String; 5]> {
        let mut out = Vec::new();
        let mut meta = |field: &str, golden: String, fresh: String| {
            if golden != fresh {
                out.push([
                    "-".to_string(),
                    "-".to_string(),
                    field.to_string(),
                    golden,
                    fresh,
                ]);
            }
        };
        meta(
            "experiment",
            self.experiment.clone(),
            fresh.experiment.clone(),
        );
        meta("scale", self.scale.clone(), fresh.scale.clone());
        meta(
            "machine",
            format!("{}x{}", self.cols, self.rows),
            format!("{}x{}", fresh.cols, fresh.rows),
        );

        let key = |c: &GoldenCell| (c.workload.clone(), c.config.clone());
        let fresh_by_key: std::collections::HashMap<_, _> =
            fresh.cells.iter().map(|c| (key(c), c)).collect();
        let golden_keys: std::collections::HashSet<_> = self.cells.iter().map(key).collect();

        for g in &self.cells {
            match fresh_by_key.get(&key(g)) {
                None => out.push([
                    g.workload.clone(),
                    g.config.clone(),
                    "cell".into(),
                    "present".into(),
                    "MISSING".into(),
                ]),
                Some(f) => {
                    let mut field = |name: &str, gv: String, fv: String| {
                        if gv != fv {
                            out.push([g.workload.clone(), g.config.clone(), name.into(), gv, fv]);
                        }
                    };
                    field("cycles", g.cycles.to_string(), f.cycles.to_string());
                    field(
                        "instructions",
                        g.instructions.to_string(),
                        f.instructions.to_string(),
                    );
                    field("verified", g.verified.to_string(), f.verified.to_string());
                }
            }
        }
        for f in &fresh.cells {
            if !golden_keys.contains(&key(f)) {
                out.push([
                    f.workload.clone(),
                    f.config.clone(),
                    "cell".into(),
                    "MISSING".into(),
                    "present".into(),
                ]);
            }
        }

        let fresh_counters: std::collections::HashMap<&str, u64> = fresh
            .counters
            .iter()
            .map(|c| (c.name.as_str(), c.value))
            .collect();
        let golden_names: std::collections::HashSet<&str> =
            self.counters.iter().map(|c| c.name.as_str()).collect();
        for g in &self.counters {
            match fresh_counters.get(g.name.as_str()) {
                None => out.push([
                    "profile".into(),
                    g.name.clone(),
                    "counter".into(),
                    "present".into(),
                    "MISSING".into(),
                ]),
                Some(&v) if v != g.value => out.push([
                    "profile".into(),
                    g.name.clone(),
                    "value".into(),
                    g.value.to_string(),
                    v.to_string(),
                ]),
                Some(_) => {}
            }
        }
        for f in &fresh.counters {
            if !golden_names.contains(f.name.as_str()) {
                out.push([
                    "profile".into(),
                    f.name.clone(),
                    "counter".into(),
                    "MISSING".into(),
                    "present".into(),
                ]);
            }
        }
        out
    }
}

/// Write `fresh` under [`GOLDEN_DIR`]; returns the path written.
pub fn write(fresh: &GoldenFile) -> std::io::Result<String> {
    write_in(Path::new(GOLDEN_DIR), fresh)
}

/// Write `fresh` under an explicit directory; returns the path written.
pub fn write_in(dir: &Path, fresh: &GoldenFile) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(fresh.file_name());
    std::fs::write(&path, fresh.to_json())?;
    Ok(path.display().to_string())
}

/// Check `fresh` against the committed golden under [`GOLDEN_DIR`].
/// `Ok(cells)` on an exact match; `Err(report)` with a rendered diff
/// table (or load error) otherwise.
pub fn check(fresh: &GoldenFile) -> Result<usize, String> {
    check_in(Path::new(GOLDEN_DIR), fresh)
}

/// Check `fresh` against the golden in an explicit directory.
pub fn check_in(dir: &Path, fresh: &GoldenFile) -> Result<usize, String> {
    let path: PathBuf = dir.join(fresh.file_name());
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden check FAILED: cannot read {} ({e}); run with --write-golden to bless",
            path.display()
        )
    })?;
    let golden = GoldenFile::parse(&text)
        .map_err(|e| format!("golden check FAILED: {} is malformed: {e}", path.display()))?;
    let diffs = golden.diff(fresh);
    if diffs.is_empty() {
        return Ok(golden.cells.len());
    }
    let mut table = Table::new(&["workload", "config", "field", "golden", "fresh"]);
    for d in &diffs {
        table.row(d.to_vec());
    }
    Err(format!(
        "golden check FAILED: {} differs from {} in {} cell field(s):\n{}\
         (if this change is intentional, re-bless with --write-golden)",
        "fresh run",
        path.display(),
        diffs.len(),
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GoldenFile {
        let mut g = GoldenFile::new("table1", "tiny", 8, 4);
        g.push("MatMul-48", "static/spm-stack", 12345, 6789, true);
        g.push("PR-\"email\"", "ws/spm-stack/spm-q", 999, 888, true);
        g
    }

    #[test]
    fn json_round_trips_exactly() {
        let g = sample();
        let parsed = GoldenFile::parse(&g.to_json()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn file_name_encodes_identity() {
        assert_eq!(sample().file_name(), "table1_tiny_8x4.json");
    }

    #[test]
    fn identical_files_have_no_diff() {
        assert!(sample().diff(&sample()).is_empty());
    }

    #[test]
    fn cycle_drift_is_reported_per_cell() {
        let golden = sample();
        let mut fresh = sample();
        fresh.cells[0].cycles += 1;
        let d = golden.diff(&fresh);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0][2], "cycles");
        assert_eq!(d[0][3], "12345");
        assert_eq!(d[0][4], "12346");
    }

    #[test]
    fn missing_and_extra_cells_are_reported() {
        let golden = sample();
        let mut fresh = sample();
        fresh.cells.remove(0);
        fresh.push("NewBench", "ws/spm-stack/spm-q", 1, 1, true);
        let d = golden.diff(&fresh);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|r| r[4] == "MISSING"));
        assert!(d.iter().any(|r| r[3] == "MISSING"));
    }

    #[test]
    fn check_in_write_in_round_trip() {
        let dir = std::env::temp_dir().join(format!("golden-test-{}", std::process::id()));
        let g = sample();
        write_in(&dir, &g).unwrap();
        assert_eq!(check_in(&dir, &g), Ok(2));
        let mut drift = g.clone();
        drift.cells[1].instructions = 0;
        let err = check_in(&dir, &drift).unwrap_err();
        assert!(err.contains("instructions"), "{err}");
        assert!(err.contains("888"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_golden_file_is_a_check_failure() {
        let dir = std::env::temp_dir().join("golden-test-nonexistent-dir");
        let err = check_in(&dir, &sample()).unwrap_err();
        assert!(err.contains("--write-golden"), "{err}");
    }

    #[test]
    fn counters_round_trip_and_diff() {
        let mut g = sample();
        g.push_counter("dup-off/steal_search", 992);
        g.push_counter("dup-off/core0_inbound", 4096);
        let parsed = GoldenFile::parse(&g.to_json()).unwrap();
        assert_eq!(parsed, g);
        assert!(g.diff(&parsed).is_empty());
        let mut drift = g.clone();
        drift.counters[0].value = 991;
        drift.counters.pop();
        let d = g.diff(&drift);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d
            .iter()
            .any(|r| r[1] == "dup-off/steal_search" && r[4] == "991"));
        assert!(d
            .iter()
            .any(|r| r[1] == "dup-off/core0_inbound" && r[4] == "MISSING"));
    }

    #[test]
    fn empty_counters_keep_the_legacy_format() {
        // Experiments that don't profile must emit byte-identical JSON
        // to the pre-profiler golden format.
        assert!(!sample().to_json().contains("profile"));
        assert!(sample().to_json().ends_with("  ]\n}\n"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(GoldenFile::parse("{").is_err());
        assert!(GoldenFile::parse("{}").is_err());
        assert!(GoldenFile::parse("[1, 2]").is_err());
    }
}
