//! `profile` — drive the `mosaic-prof` cycle-attribution profiler and
//! retell the paper's Fig. 5 hot-spot story from profiler counters
//! alone: one steal-heavy PageRank iteration runs twice, with
//! read-only data duplication off and on, and the per-core NoC traffic
//! heatmap shows the spawning core's router collapsing from the
//! machine hot-spot to an ordinary node once captured state is
//! duplicated.
//!
//! Also the reference consumer for the profiler's invariants, checked
//! on every run:
//!
//! - per-core bucket totals sum *exactly* to each core's elapsed
//!   cycles (no unattributed or double-counted time);
//! - steal-search cycles are nonzero under work-stealing;
//! - the spawning core's share of core-incident NoC flits drops when
//!   duplication is turned on.
//!
//! `--write-golden`/`--check-golden` gate the bucket totals and
//! traffic counters exactly (the simulator is bit-deterministic);
//! `--prof-out DIR` additionally writes one profile JSON per config
//! (see `docs/observability.md` for the schema).

use mosaic_bench::{prof, Options, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::{Bucket, MachineProfile};
use mosaic_workloads::pagerank::{GraphKind, PageRank};
use mosaic_workloads::{Benchmark, Scale};

/// Fraction (percent) of all core-incident inbound flits that land on
/// `core`.
fn inbound_share_pct(p: &MachineProfile, core: usize) -> f64 {
    let all: u64 = p.core_inbound_flits.iter().sum();
    100.0 * p.core_inbound_flits[core] as f64 / all.max(1) as f64
}

fn main() {
    let opts = Options::parse(Scale::Tiny, 4, 2);
    opts.cycle_only("profile");
    opts.no_workload_filter("profile");
    let n = match opts.scale {
        Scale::Tiny => 1024,
        Scale::Small => 8192,
        Scale::Full => 16384,
    };
    let pr = PageRank {
        n,
        kind: GraphKind::PowerLaw,
        iters: 1,
        seed: 0x96,
    };
    let variants = [("dup-off", false), ("dup-on", true)];
    let mut golden = opts.golden_file("profile");
    let mut table = Table::new(&[
        "config",
        "cycles",
        "compute%",
        "steal%",
        "idle%",
        "core0 in%",
    ]);
    let mut profiles: Vec<(&'static str, MachineProfile)> = Vec::new();

    for (label, dup) in variants {
        let cfg = RuntimeConfig {
            rd_duplication: dup,
            ..RuntimeConfig::work_stealing()
        };
        // The profiler is always on in this binary; `--profile` on the
        // shared CLI exists for every *other* experiment.
        let mut machine = opts.machine();
        machine.profile = true;
        let out = pr.run(machine, cfg);
        out.assert_verified();
        let p = out
            .report
            .profile
            .as_ref()
            .expect("profiler was enabled")
            .clone();

        // Invariant: attribution is span-complete on every core.
        if let Some((core, attributed, elapsed)) = p.accounting_error() {
            eprintln!(
                "profile accounting FAILED ({label}): core {core} attributed \
                 {attributed} of {elapsed} elapsed cycles"
            );
            std::process::exit(1);
        }
        let totals = p.totals();
        let all: u64 = totals.iter().sum::<u64>().max(1);
        let pct = |b: Bucket| 100.0 * totals[b.index()] as f64 / all as f64;
        table.row(vec![
            label.to_string(),
            format!("{}", out.report.cycles),
            format!("{:.1}", pct(Bucket::Compute)),
            format!("{:.1}", pct(Bucket::StealSearch)),
            format!("{:.1}", pct(Bucket::Idle)),
            format!("{:.1}", inbound_share_pct(&p, 0)),
        ]);

        golden.push(
            format!("PageRank-pl({n})"),
            label,
            out.report.cycles,
            out.report.instructions(),
            true,
        );
        for b in Bucket::ALL {
            golden.push_counter(format!("{label}/{}", b.name()), totals[b.index()]);
        }
        golden.push_counter(
            format!("{label}/core0_inbound_flits"),
            p.core_inbound_flits[0],
        );
        golden.push_counter(format!("{label}/total_link_flits"), p.total_link_flits);

        if let Some(dir) = &opts.prof_out {
            let name = format!(
                "profile_{}_{}x{}_{label}",
                opts.scale_name(),
                opts.cols,
                opts.rows
            );
            let path = prof::write_profile(dir, &name, &p).expect("write profile JSON");
            eprintln!("wrote {path}");
        }
        profiles.push((label, p));
    }

    println!(
        "profile: PageRank (power-law, n={n}) under work-stealing, {} cores, profiler attached",
        opts.cores()
    );
    println!("{table}");
    for (label, p) in &profiles {
        println!("[{label}] cycles by bucket:");
        print!("{}", p.render_totals());
        println!("[{label}] core-inbound NoC flits (row-major heatmap, 1.00 = hottest core):");
        print!("{}", p.render_inbound_heatmap());
        print!("[{label}]{}", p.render_llc_banks());
        println!();
    }

    let (off, on) = (&profiles[0].1, &profiles[1].1);
    let steal_off = off.bucket_total(Bucket::StealSearch);
    assert!(
        steal_off > 0,
        "work-stealing run must spend cycles in steal search"
    );
    let share_off = inbound_share_pct(off, 0);
    let share_on = inbound_share_pct(on, 0);
    println!(
        "spawning core's share of core-incident inbound flits: {share_off:.1}% without \
         duplication -> {share_on:.1}% with it (Fig. 5 hot-spot, from profiler counters alone)"
    );
    assert!(
        share_on < share_off,
        "read-only duplication must shrink the spawning core's NoC hot-spot \
         ({share_off:.1}% -> {share_on:.1}%)"
    );

    opts.finish_golden(&golden);
}
