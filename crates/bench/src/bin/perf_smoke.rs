//! CI performance smoke for the window-parallel engine: run a small
//! fixed workload set on the paper-shaped 16x8 mesh at
//! `--host-threads 1` and at the parallel setting (default 4), assert
//! the reports are byte-identical, and record the wall-clock speedup
//! under `results/perf/ci_speedup.json`.
//!
//! Identity is a hard failure (exit 1): the whole point of the
//! conservative-lookahead engine is that host parallelism cannot move
//! a single simulated cycle. The speedup target (1.5x in CI, 2x on an
//! unloaded host) is advisory only — shared CI runners make wall-clock
//! noisy, so a shortfall prints a prominent warning but exits 0; the
//! JSON artifact keeps the trend auditable across runs.

use mosaic_bench::Options;
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::{cilksort, uts, Benchmark, Scale};
use std::time::Instant;

/// Advisory wall-clock target: parallel sweep at least this much
/// faster than sequential before CI stops warning.
const SPEEDUP_TARGET: f64 = 1.5;

fn main() {
    let opts = Options::parse(Scale::Tiny, 16, 8);
    opts.cycle_only("perf_smoke");
    opts.no_workload_filter("perf_smoke");
    // `--host-threads` names the parallel setting under test; the
    // sequential baseline is always 1.
    let par_threads = if opts.host_threads > 1 {
        opts.host_threads
    } else {
        4
    };

    // A deliberately small, spawn-heavy subset: UTS and CilkSort lean
    // hardest on the engine's event loop (fine-grained tasks, lots of
    // SPM traffic), which is exactly what the window-parallel path
    // accelerates. The full table sweeps stay in reproduce_all.
    let mut benches: Vec<Box<dyn Benchmark>> = Vec::new();
    benches.extend(uts::instances(opts.scale));
    benches.extend(cilksort::instances(opts.scale));

    let (seq_fp, seq_secs) = sweep(&benches, &opts, 1);
    let (par_fp, par_secs) = sweep(&benches, &opts, par_threads);

    if seq_fp != par_fp {
        eprintln!("PERF SMOKE FAILED: reports differ between --host-threads 1 and {par_threads}");
        for (a, b) in seq_fp.iter().zip(&par_fp) {
            if a != b {
                eprintln!("  sequential: {a}");
                eprintln!("  parallel:   {b}");
            }
        }
        std::process::exit(1);
    }

    let speedup = seq_secs / par_secs.max(1e-9);
    println!(
        "perf smoke: {} benches, 16x8 {}: {:.2}s at --host-threads 1, {:.2}s at --host-threads {par_threads} => {:.2}x",
        benches.len(),
        opts.scale_name(),
        seq_secs,
        par_secs,
        speedup
    );

    // Record the host budget alongside the numbers: a shortfall on a
    // saturated or single-core runner is expected, not a regression.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    std::fs::create_dir_all("results/perf").expect("mkdir results/perf");
    let json = jsonlite::Json::obj()
        .field("host_cores", host_cores as u64)
        .field("cols", opts.cols as u64)
        .field("rows", opts.rows as u64)
        .field("scale", opts.scale_name())
        .field("benches", benches.len() as u64)
        .field("host_threads", par_threads as u64)
        .field("seq_secs", format!("{seq_secs:.3}").as_str())
        .field("par_secs", format!("{par_secs:.3}").as_str())
        .field("speedup", format!("{speedup:.3}").as_str())
        .field("target", format!("{SPEEDUP_TARGET:.1}").as_str())
        .field("identical", true)
        .build();
    std::fs::write("results/perf/ci_speedup.json", json.write()).expect("write speedup json");
    println!("wrote results/perf/ci_speedup.json");

    if speedup < SPEEDUP_TARGET {
        eprintln!(
            "WARNING: speedup {speedup:.2}x below the {SPEEDUP_TARGET:.1}x target on a \
             {host_cores}-core host (advisory: shared runners are noisy and a window-parallel \
             engine cannot beat sequential without spare cores; results were byte-identical)"
        );
    }
}

/// Run every bench sequentially (one simulation at a time, so the
/// engine's own threads are the only parallelism) at the given
/// host-thread count. Returns per-bench report fingerprints and the
/// total wall-clock seconds.
fn sweep(
    benches: &[Box<dyn Benchmark>],
    opts: &Options,
    host_threads: usize,
) -> (Vec<String>, f64) {
    let mut fingerprints = Vec::with_capacity(benches.len());
    let start = Instant::now();
    for bench in benches {
        let mut machine = opts.machine();
        machine.host_threads = host_threads;
        let out = bench.run(machine, RuntimeConfig::work_stealing());
        out.assert_verified();
        let r = &out.report;
        fingerprints.push(format!(
            "{}: {} cycles, {} instructions, totals {:?}",
            bench.name(),
            r.cycles,
            r.instructions(),
            r.totals()
        ));
    }
    (fingerprints, start.elapsed().as_secs_f64())
}
