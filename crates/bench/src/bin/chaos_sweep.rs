//! Chaos sweep: fault injection as a first-class, golden-gated
//! experiment.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin chaos_sweep -- --scale tiny
//! ```
//!
//! Two modes:
//!
//! - **Default (no `--faults`)**: run each chaos workload fault-free
//!   and under a *fixed* timing-only plan (`FaultPlan::timing(7)`),
//!   assert the key invariant — a timing-only plan leaves payloads
//!   bit-identical while shifting cycle counts — and record all cells
//!   in a golden file. Both halves are deterministic, so
//!   `--check-golden` gates this in CI like any other experiment.
//! - **`--faults SPEC`**: run the given plan through
//!   `mosaic_chaos::DivergenceChecker` (faulted run, then a fault-free
//!   rerun, payload diff). Timing-only plans report identical results
//!   and exit 0; plans with bit flips report `DIVERGED` and exit 1 —
//!   corruption is surfaced, never silently absorbed.

use mosaic_bench::{chaos, Options, Table};
use mosaic_chaos::{DivergenceChecker, FaultPlan};
use mosaic_workloads::Scale;

fn main() {
    let opts = Options::parse(Scale::Tiny, 4, 2);
    opts.cycle_only("chaos_sweep");
    opts.no_workload_filter("chaos_sweep");
    if let Some(plan) = opts.faults.clone() {
        check_user_plan(&opts, &plan);
        return;
    }

    let mut timing = FaultPlan::timing(7);
    // Tiny chaos runs finish in a few thousand cycles; pull the
    // window-placement horizon down so the plan's stalls and freezes
    // actually overlap the run at every scale.
    timing.horizon = 2_000;
    let plans: [(&str, Option<&FaultPlan>); 2] = [("clean", None), ("timing-seed7", Some(&timing))];
    let mut table = Table::new(&["workload", "plan", "cycles", "payload", "verified"]);
    let mut golden = opts.golden_file("chaos_sweep");
    let (fib_n, scan_len) = chaos::params(opts.scale);

    for wl in chaos::WORKLOADS {
        let mut clean_payload = 0u64;
        let mut clean_cycles = 0u64;
        for (label, plan) in plans {
            let mut machine = opts.machine();
            machine.faults = plan.cloned();
            let run = chaos::run(wl, machine, opts.scale);
            assert!(
                run.digest.verified,
                "{wl}/{label} failed verification: {:?}",
                run.error
            );
            match label {
                "clean" => {
                    clean_payload = run.digest.payload;
                    clean_cycles = run.digest.cycles;
                }
                _ => {
                    // The tentpole invariant: timing faults reshuffle
                    // the schedule (different cycle counts) but never
                    // the computed words.
                    assert_eq!(
                        run.digest.payload, clean_payload,
                        "{wl}: timing-only plan changed the results"
                    );
                    assert_ne!(
                        run.digest.cycles, clean_cycles,
                        "{wl}: timing plan had no timing effect"
                    );
                }
            }
            table.row(vec![
                wl.to_string(),
                label.to_string(),
                format!("{}", run.digest.cycles),
                format!("{:016x}", run.digest.payload),
                format!("{}", run.digest.verified),
            ]);
            golden.push(
                *wl,
                label,
                run.digest.cycles,
                run.instructions,
                run.digest.verified,
            );
        }
    }

    println!(
        "Chaos sweep: fib({fib_n}) + scan({scan_len}) on {} cores, clean vs timing plan {}",
        opts.cores(),
        timing.to_spec()
    );
    println!("{table}");
    println!("timing-only invariant held: payloads bit-identical, cycle counts shifted");
    opts.finish_golden(&golden);
}

/// `--faults SPEC` mode: divergence-check the user's plan on every
/// chaos workload; exit 1 if any workload's payload diverges.
///
/// Results are also recorded in a golden file under the distinct
/// experiment name `chaos_sweep_user` (so a `--write-golden` here —
/// which is how the serve executor collects structured output — can
/// never clobber the committed default-mode `chaos_sweep` golden).
fn check_user_plan(opts: &Options, plan: &FaultPlan) {
    let mut diverged = 0usize;
    let mut golden = opts.golden_file("chaos_sweep_user");
    for wl in chaos::WORKLOADS {
        // The checker runs the faulted leg first, then the clean one.
        let mut runs: Vec<mosaic_bench::chaos::ChaosRun> = Vec::new();
        let report = DivergenceChecker::check(plan, |p| {
            let mut machine = opts.machine();
            machine.faults = p.cloned();
            let run = chaos::run(wl, machine, opts.scale);
            let digest = run.digest;
            runs.push(run);
            digest
        });
        println!("{wl}: {report}");
        for (leg, run) in ["faulted", "clean"].iter().zip(&runs) {
            if let Some(e) = &run.error {
                println!("{wl}: {leg} run died: {e}");
            }
            golden.push(
                *wl,
                *leg,
                run.digest.cycles,
                run.instructions,
                run.digest.verified,
            );
        }
        if report.diverged() {
            diverged += 1;
        }
    }
    opts.finish_golden(&golden);
    if diverged > 0 {
        eprintln!(
            "chaos_sweep: {diverged} of {} workloads DIVERGED under plan {}",
            chaos::WORKLOADS.len(),
            plan.to_spec()
        );
        std::process::exit(1);
    }
    println!(
        "chaos_sweep: no divergence under plan {} ({})",
        plan.to_spec(),
        if plan.is_timing_only() {
            "timing-only, as expected"
        } else {
            "flips landed on dead words or cancelled out"
        }
    );
}
