//! Regenerate **Figure 9**: speedup of every configuration over the
//! static-scheduler-with-SPM-stack baseline, for all workloads that
//! have a static baseline.
//!
//! The paper's headline: work-stealing gives 1.2-28.5x on workloads
//! that benefit and costs no more than ~10% on those that don't, and
//! the SPM data-placement optimizations add up to ~25% more.

use mosaic_bench::{sweep, Options, SanitizeGate, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::Scale;

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    eprintln!(
        "Fig. 9 sweep: scale {:?}, {} cores",
        opts.scale,
        opts.cores()
    );
    let cells =
        mosaic_workloads::table1_benchmarks(opts.scale).len() * RuntimeConfig::table1_sweep().len();
    let rows = sweep::table1_sweep_filtered(
        opts.scale,
        &opts.machine(),
        opts.backend().as_ref(),
        opts.effective_jobs(cells),
        &opts.workload,
    );
    let configs: Vec<&str> = RuntimeConfig::table1_sweep()
        .iter()
        .map(|(l, _)| *l)
        .collect();

    let mut header = vec!["workload"];
    header.extend(configs.iter().copied());
    let mut table = Table::new(&header);
    for row in rows.iter().filter(|r| r.has_static_baseline) {
        let base = row
            .static_baseline_cycles()
            .expect("baseline must exist for rows with a static scheduler");
        let mut cells = vec![row.name.clone()];
        for c in &configs {
            match row.cycles_of(c) {
                Some(cy) => cells.push(format!("{:.2}", base as f64 / cy as f64)),
                None => cells.push("-".into()),
            }
        }
        table.row(cells);
    }
    println!("Fig. 9: speedup over static/spm-stack (higher is better)");
    println!("{table}");

    let mut golden = opts.golden_file("fig09_speedup");
    golden.push_sweep(&rows);
    opts.finish_golden(&golden);

    let mut gate = SanitizeGate::new(opts.sanitize);
    gate.record_rows(&rows);
    gate.finish();
}
