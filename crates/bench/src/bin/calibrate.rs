//! Calibrate the analytic backend against the cycle-accurate engine.
//!
//! Runs every (workload, config) family of the Table-1 sweep through
//! **both** backends across a three-shape mesh grid — the base shape
//! (`--cols x --rows`, default 4x2) where the family's traffic demand
//! is measured under the profiler, plus the doubled and quadrupled
//! shapes (8x4, 16x8). A single measured shape cannot identify a
//! workload's critical path (any span between `T - W/P` and `T` is
//! consistent with it), so calibration fits a per-family work/span
//! decomposition from the grid — the span split anchored on the outer
//! shapes, the distance exponent chosen by minimax residual — and
//! fits one multiplicative correction on top. The worst residual
//! relative error after correction is recorded per family.
//!
//! The result is `results/model/calibration.json`, a golden-style
//! artifact: byte-reproducible, committed, and regenerated + diffed by
//! the `model-smoke` CI job. The run **hard-fails** when any family's
//! residual exceeds the acceptance bound (10%), so a model regression
//! cannot be blessed into the artifact.
//!
//! Modes mirror the golden flags: plain run prints the fit, `--write-
//! golden` blesses the artifact, `--check-golden` diffs against the
//! committed bytes and exits 1 on drift.

use mosaic_bench::{run_cells, Options, Table, CALIBRATION_PATH};
use mosaic_model::{
    AnalyticModel, CalFamily, CalPoint, CalibrationTable, MachineParams, WorkloadDemand, PPM,
};
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::{demand_from_profile, machine_params, MachineConfig};
use mosaic_workloads::Scale;

/// Acceptance bound on every family's residual: 10% relative error.
const BOUND_PPM: u64 = 100_000;

/// Raw analytic estimate for `demand` with its span terms replaced,
/// at one mesh shape (pre-resolved [`MachineParams`] — resolving them
/// from a `MachineConfig` builds the whole mesh, far too heavy for
/// the fit's inner loop).
fn estimate_with_spans(demand: &WorkloadDemand, fit: &SpanFit, params: &MachineParams) -> u64 {
    let mut d = demand.clone();
    d.span = fit.span;
    d.span_hop = fit.span_hop;
    d.span_hop_exp2 = fit.span_hop_exp2;
    AnalyticModel::new(params.clone()).estimate(&d).cycles
}

/// A candidate critical-path decomposition: shape-independent span,
/// distance-dependent span, and the distance exponent (half units).
#[derive(Debug, Clone, Copy)]
struct SpanFit {
    span: u64,
    span_hop: u64,
    span_hop_exp2: u64,
}

/// Post-correction minimax residual (in ppm) of a candidate span
/// decomposition across the whole grid — the quantity the fit
/// minimizes and the table records.
fn residual_ppm(
    demand: &WorkloadDemand,
    grid: &[((u16, u16), MachineParams)],
    measured: &[u64],
    fit: &SpanFit,
) -> u64 {
    let mut family = CalFamily {
        workload: String::new(),
        config: String::new(),
        scale: String::new(),
        demand: demand.clone(),
        points: grid
            .iter()
            .zip(measured)
            .map(|(((c, r), params), &m)| CalPoint {
                cols: *c as u64,
                rows: *r as u64,
                measured: m,
                estimated: estimate_with_spans(demand, fit, params),
            })
            .collect(),
        correction_ppm: PPM,
        max_err_ppm: 0,
    };
    family.fit();
    family.max_err_ppm
}

/// Fit span, span_hop, *and* the distance exponent against the grid.
///
/// Neither span component is observable from one profiled run (any
/// split of the non-busy slack is consistent with it), and families
/// differ in how sharply their critical path degrades with mesh
/// diameter (near-linear for serialized launch loops, super-linear
/// when coordination both lengthens and slows). So calibration
/// searches: for each candidate half-step exponent in 0.5x..4.0x, a
/// deterministic coarse-to-fine integer grid search over
/// (span, span_hop) minimizes the post-correction minimax residual
/// across all grid shapes, and the exponent keeping the smallest
/// residual wins. Ties keep the earlier (smaller) candidate, so the
/// result is bit-stable.
fn fit_spans(
    demand: &WorkloadDemand,
    grid: &[((u16, u16), MachineParams)],
    measured: &[u64],
) -> SpanFit {
    let m_s = measured[0];
    let m_l = *measured.last().expect("grid has measurements");
    let mut best: Option<(u64, SpanFit)> = None;
    for exp2 in 1..=8 {
        // Coarse-to-fine search over the physical range: neither the
        // shape-independent span nor the doubled-mesh distance charge
        // (which is what span_hop is, whatever the exponent) can
        // exceed the elapsed time measured at those scales.
        let (mut s_lo, mut s_hi) = (0u64, m_s.max(1));
        let (mut h_lo, mut h_hi) = (0u64, m_l.max(1));
        let mut local: Option<(u64, u64, u64)> = None;
        for _round in 0..4 {
            let s_step = ((s_hi - s_lo) / 16).max(1);
            let h_step = ((h_hi - h_lo) / 16).max(1);
            local = None;
            for si in 0..=16u64 {
                for hi in 0..=16u64 {
                    let cand = SpanFit {
                        span: s_lo + s_step * si,
                        span_hop: h_lo + h_step * hi,
                        span_hop_exp2: exp2,
                    };
                    let err = residual_ppm(demand, grid, measured, &cand);
                    if local.is_none() || err < local.expect("some").0 {
                        local = Some((err, cand.span, cand.span_hop));
                    }
                }
            }
            let (_, bs, bh) = local.expect("grid search is nonempty");
            s_lo = bs.saturating_sub(s_step);
            s_hi = bs + s_step;
            h_lo = bh.saturating_sub(h_step);
            h_hi = bh + h_step;
        }
        let (err, span, span_hop) = local.expect("grid search is nonempty");
        let better = match best {
            None => true,
            Some((e, _)) => err < e,
        };
        if better {
            best = Some((
                err,
                SpanFit {
                    span,
                    span_hop,
                    span_hop_exp2: exp2,
                },
            ));
        }
    }
    best.expect("candidate exponents are nonempty").1
}

fn main() {
    let opts = Options::parse(Scale::Tiny, 4, 2);
    opts.cycle_only("calibrate");
    opts.no_workload_filter("calibrate");
    let shapes = [
        (opts.cols, opts.rows),
        (opts.cols * 2, opts.rows * 2),
        (opts.cols * 4, opts.rows * 4),
    ];
    eprintln!(
        "calibrate: scale {}, grid {}x{} (measure) + {}x{} (validate) + {}x{} (fit span)",
        opts.scale_name(),
        shapes[0].0,
        shapes[0].1,
        shapes[1].0,
        shapes[1].1,
        shapes[2].0,
        shapes[2].1
    );

    let benches = mosaic_workloads::table1_benchmarks(opts.scale);
    let configs = RuntimeConfig::table1_sweep();
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for (bi, b) in benches.iter().enumerate() {
        for (ci, (label, _)) in configs.iter().enumerate() {
            if label.starts_with("static") && !b.has_static_baseline() {
                continue;
            }
            cells.push((bi, ci));
        }
    }

    // Run every (cell, shape) pair cycle-accurately; the base shape
    // carries the profiler so the family's demand can be extracted.
    let total = cells.len() * shapes.len();
    let mut measured: Vec<(u64, Option<WorkloadDemand>)> = Vec::with_capacity(total);
    run_cells(
        total,
        opts.effective_jobs(total),
        |i| {
            let (bi, ci) = cells[i / shapes.len()];
            let (c, r) = shapes[i % shapes.len()];
            let mut m = MachineConfig::small(c, r);
            m.host_threads = opts.host_threads.max(1);
            m.profile = i % shapes.len() == 0;
            let out = benches[bi].run(m, configs[ci].1.clone());
            assert!(
                out.verified,
                "{} / {} failed verification during calibration",
                benches[bi].name(),
                configs[ci].0
            );
            let demand = out
                .report
                .profile
                .as_ref()
                .map(|p| demand_from_profile(p, &out.report.counters, out.report.cycles));
            (out.report.cycles, demand)
        },
        |i, r| {
            eprintln!(
                "  {:<18} {:<22} {:>2}x{:<2} {:>10} cycles",
                benches[cells[i / shapes.len()].0].name(),
                configs[cells[i / shapes.len()].1].0,
                shapes[i % shapes.len()].0,
                shapes[i % shapes.len()].1,
                r.0
            );
            measured.push(r);
        },
    );

    // Fit: critical-path decomposition from the scaling grid, then
    // estimate every shape from the fitted base demand alone.
    let grid: Vec<((u16, u16), MachineParams)> = shapes
        .iter()
        .map(|&(c, r)| ((c, r), machine_params(&MachineConfig::small(c, r))))
        .collect();
    let mut table = CalibrationTable::new(BOUND_PPM);
    for (cell_i, &(bi, ci)) in cells.iter().enumerate() {
        let mut demand = measured[cell_i * shapes.len()]
            .1
            .clone()
            .expect("base-shape run was profiled");
        let cycles: Vec<u64> = (0..shapes.len())
            .map(|si| measured[cell_i * shapes.len() + si].0)
            .collect();
        let fit = fit_spans(&demand, &grid, &cycles);
        demand.span = fit.span;
        demand.span_hop = fit.span_hop;
        demand.span_hop_exp2 = fit.span_hop_exp2;
        let points: Vec<CalPoint> = grid
            .iter()
            .zip(&cycles)
            .map(|(((c, r), params), &m)| CalPoint {
                cols: *c as u64,
                rows: *r as u64,
                measured: m,
                estimated: estimate_with_spans(&demand, &fit, params),
            })
            .collect();
        eprintln!(
            "  fit {:<18} {:<22} span {:>8} hop {:>8} exp2 {} est {:?} meas {:?}",
            benches[bi].name(),
            configs[ci].0,
            fit.span,
            fit.span_hop,
            fit.span_hop_exp2,
            points.iter().map(|p| p.estimated).collect::<Vec<_>>(),
            cycles
        );
        table.families.push(CalFamily {
            workload: benches[bi].name(),
            config: configs[ci].0.to_string(),
            scale: opts.scale_name().to_string(),
            demand,
            points,
            correction_ppm: PPM,
            max_err_ppm: 0,
        });
    }
    table.fit();
    // Both sweep experiments draw from every family of this scale.
    table.bind_experiment("table1", opts.scale_name());
    table.bind_experiment("fig09_speedup", opts.scale_name());

    let mut summary = Table::new(&["workload", "config", "correction", "max err"]);
    for f in &table.families {
        summary.row(vec![
            f.workload.clone(),
            f.config.clone(),
            format!("{:.3}x", f.correction_ppm as f64 / PPM as f64),
            format!("{:.2}%", f.max_err_ppm as f64 / 10_000.0),
        ]);
    }
    println!("{summary}");
    for e in &table.experiments {
        println!(
            "experiment {} @ {}: calibrated to {:.2}% worst-case error",
            e.experiment,
            e.scale,
            e.max_err_ppm as f64 / 10_000.0
        );
    }

    let violations = table.violations();
    if !violations.is_empty() {
        eprintln!("calibration FAILED the {BOUND_PPM}ppm acceptance bound:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    let path = opts
        .golden_dir
        .clone()
        .map(|d| d.join("calibration.json"))
        .unwrap_or_else(|| std::path::PathBuf::from(CALIBRATION_PATH));
    let fresh = table.render();
    match opts.golden {
        mosaic_bench::GoldenMode::Run => {
            eprintln!(
                "calibration ok ({} families); not written (use --write-golden)",
                table.families.len()
            );
        }
        mosaic_bench::GoldenMode::Write => {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("create calibration dir");
            }
            std::fs::write(&path, &fresh).expect("write calibration table");
            eprintln!("blessed {}", path.display());
        }
        mosaic_bench::GoldenMode::Check => {
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read committed calibration {}: {e}", path.display());
                std::process::exit(1);
            });
            if committed != fresh {
                eprintln!(
                    "calibration drift against {} — regenerate with --write-golden \
                     and review the diff",
                    path.display()
                );
                std::process::exit(1);
            }
            eprintln!(
                "calibration check ok: {} families match {}",
                table.families.len(),
                path.display()
            );
        }
    }
}
