//! WS self-relative scaling probe.
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::spmv::{MatrixKind, SpMV};
use mosaic_workloads::Benchmark;

fn main() {
    let s = SpMV {
        n: 1024,
        kind: MatrixKind::PowerLaw,
        seed: 0x51,
    };
    let mut t1 = 0;
    for (cols, rows) in [(1u16, 1u16), (2, 2), (4, 2), (8, 4), (16, 8)] {
        let cores = cols as u64 * rows as u64;
        let out = s.run(
            MachineConfig::small(cols, rows),
            RuntimeConfig::work_stealing(),
        );
        assert!(out.verified);
        if cores == 1 {
            t1 = out.report.cycles;
        }
        let tstat = s.run(
            MachineConfig::small(cols, rows),
            RuntimeConfig::static_loops(mosaic_runtime::Placement::Spm),
        );
        println!(
            "cores={cores:3}  ws={:>8}  speedup={:.1}  static={:>8}  ws/static={:.2}",
            out.report.cycles,
            t1 as f64 / out.report.cycles as f64,
            tstat.report.cycles,
            tstat.report.cycles as f64 / out.report.cycles as f64
        );
    }
}
