//! Probe input skew: in-degree distribution and static-chunk imbalance.
use mosaic_workloads::gen::graph::{rmat, RMAT_G500, RMAT_SKEWED};

fn main() {
    for (name, probs, scale, ef) in [
        ("g500 s9 ef8", RMAT_G500, 9u32, 8u32),
        ("skew s9 ef8", RMAT_SKEWED, 9, 8),
        ("skew s11 ef8", RMAT_SKEWED, 11, 8),
        ("skew s11 ef16", RMAT_SKEWED, 11, 16),
        ("skew s12 ef8", RMAT_SKEWED, 12, 8),
    ] {
        let g = rmat(scale, ef, probs, 0x96);
        let t = g.transpose();
        let n = g.n;
        let nnz = t.nnz() as u32;
        let mut indeg: Vec<u32> = (0..n).map(|v| t.degree(v)).collect();
        // static chunk imbalance over 32 contiguous chunks
        let p = 32u32;
        let mut chunk_work = vec![0u64; p as usize];
        for v in 0..n {
            let c = (v as u64 * p as u64 / n as u64) as usize;
            chunk_work[c] += indeg[v as usize] as u64;
        }
        let maxc = *chunk_work.iter().max().unwrap();
        let avgc = chunk_work.iter().sum::<u64>() / p as u64;
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "{name:14} n={n} nnz={nnz} top-indeg={:?} chunk max/avg={:.1}",
            &indeg[..5],
            maxc as f64 / avgc as f64
        );
    }
}
