//! Regenerate **Figure 11**: speedup over one core as the machine
//! grows from 1 to 128 cores, for the Fig. 11 workload set (the paper
//! omits UTS for simulation-time reasons; so do we by default — pass
//! `--scale full` to include it).
//!
//! Work-stealing with both the stack and the task queue in SPM, as in
//! the paper.

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{
    bfs::{Bfs, BfsInput},
    cilksort::CilkSort,
    matmul::MatMul,
    mattrans::MatTrans,
    nqueens::NQueens,
    pagerank::{GraphKind, PageRank},
    spmt::SpMT,
    spmv::{MatrixKind, SpMV},
    Benchmark, Scale,
};
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 16, 8);
    opts.cycle_only("fig11_scaling");
    opts.no_workload_filter("fig11_scaling");
    // Fixed inputs per the figure caption, scaled down.
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(NQueens { n: 6 }),
        Box::new(MatMul { n: 48, seed: 0xA }),
        Box::new(CilkSort {
            n: 4096,
            seed: 0xC5,
        }),
        Box::new(PageRank {
            n: 1024,
            kind: GraphKind::Uniform,
            iters: 1,
            seed: 0x96,
        }),
        Box::new(SpMV {
            n: 1024,
            kind: MatrixKind::Block,
            seed: 0x51,
        }),
        Box::new(Bfs {
            n: 1024,
            input: BfsInput::Uniform,
            source: 1,
            seed: 0xBF,
        }),
        Box::new(MatTrans { n: 64, seed: 0x7A }),
        Box::new(SpMT {
            n: 1024,
            kind: MatrixKind::Banded,
            seed: 0x57,
        }),
    ];
    let grids: &[(u16, u16)] = &[
        (1, 1),
        (2, 1),
        (2, 2),
        (4, 2),
        (4, 4),
        (8, 4),
        (8, 8),
        (16, 8),
    ];
    let grids: Vec<(u16, u16)> = grids
        .iter()
        .copied()
        .filter(|(c, r)| (*c as usize) * (*r as usize) <= opts.cores())
        .collect();

    let mut header = vec!["workload".to_string()];
    header.extend(
        grids
            .iter()
            .map(|(c, r)| format!("{}c", *c as usize * *r as usize)),
    );
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    // Flat (benchmark, grid) cells; every cell is an independent
    // simulation, so they run on the harness job pool.
    let cell_of = |i: usize| (&benches[i / grids.len()], grids[i % grids.len()]);
    let count = benches.len() * grids.len();
    let jobs = opts.effective_jobs(count);
    let start = Instant::now();
    let mut golden = opts.golden_file("fig11_scaling");
    let mut row_cells: Vec<String> = Vec::new();
    let mut t1 = 0u64;
    let mut gate = SanitizeGate::new(opts.sanitize);
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let (b, (c, r)) = cell_of(i);
            let mut machine = MachineConfig::small(c, r);
            machine.sanitize = opts.sanitize;
            let out = b.run(machine, RuntimeConfig::work_stealing());
            (
                out.report.cycles,
                out.report.instructions(),
                out.verified,
                SanCell::from_report(out.report.sanitizer.as_ref()),
            )
        },
        |i, (cycles, instructions, verified, san)| {
            let (b, (c, r)) = cell_of(i);
            let cores = c as usize * r as usize;
            gate.record(&b.name(), &format!("{cores}c"), &san);
            assert!(
                verified,
                "{} failed verification at {cores} cores",
                b.name()
            );
            if i % grids.len() == 0 {
                eprintln!("scaling {}...", b.name());
                row_cells.push(b.name());
            }
            if cores == 1 {
                t1 = cycles;
            }
            row_cells.push(format!("{:.1}", t1 as f64 / cycles as f64));
            if i % grids.len() == grids.len() - 1 {
                table.row(std::mem::take(&mut row_cells));
            }
            golden.push(
                b.name(),
                format!("{cores}c"),
                cycles,
                instructions,
                verified,
            );
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!("Fig. 11: speedup over one core (work-stealing, stack+queue in SPM)");
    println!("{table}");
    opts.finish_golden(&golden);
    gate.finish();
}
