//! Regenerate **Figure 11**: speedup over one core as the machine
//! grows from 1 to 128 cores, for the Fig. 11 workload set (the paper
//! omits UTS for simulation-time reasons; so do we by default — pass
//! `--scale full` to include it).
//!
//! Work-stealing with both the stack and the task queue in SPM, as in
//! the paper.

use mosaic_bench::{Options, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{
    bfs::{Bfs, BfsInput},
    cilksort::CilkSort,
    matmul::MatMul,
    mattrans::MatTrans,
    nqueens::NQueens,
    pagerank::{GraphKind, PageRank},
    spmt::SpMT,
    spmv::{MatrixKind, SpMV},
    Benchmark, Scale,
};

fn main() {
    let opts = Options::parse(Scale::Small, 16, 8);
    // Fixed inputs per the figure caption, scaled down.
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(NQueens { n: 6 }),
        Box::new(MatMul { n: 48, seed: 0xA }),
        Box::new(CilkSort {
            n: 4096,
            seed: 0xC5,
        }),
        Box::new(PageRank {
            n: 1024,
            kind: GraphKind::Uniform,
            iters: 1,
            seed: 0x96,
        }),
        Box::new(SpMV {
            n: 1024,
            kind: MatrixKind::Block,
            seed: 0x51,
        }),
        Box::new(Bfs {
            n: 1024,
            input: BfsInput::Uniform,
            source: 1,
            seed: 0xBF,
        }),
        Box::new(MatTrans { n: 64, seed: 0x7A }),
        Box::new(SpMT {
            n: 1024,
            kind: MatrixKind::Banded,
            seed: 0x57,
        }),
    ];
    let grids: &[(u16, u16)] = &[
        (1, 1),
        (2, 1),
        (2, 2),
        (4, 2),
        (4, 4),
        (8, 4),
        (8, 8),
        (16, 8),
    ];
    let grids: Vec<(u16, u16)> = grids
        .iter()
        .copied()
        .filter(|(c, r)| (*c as usize) * (*r as usize) <= opts.cores())
        .collect();

    let mut header = vec!["workload".to_string()];
    header.extend(
        grids
            .iter()
            .map(|(c, r)| format!("{}c", *c as usize * *r as usize)),
    );
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for b in &benches {
        eprintln!("scaling {}...", b.name());
        let mut t1 = 0u64;
        let mut cells = vec![b.name()];
        for &(c, r) in &grids {
            let out = b.run(MachineConfig::small(c, r), RuntimeConfig::work_stealing());
            out.assert_verified();
            if c as usize * r as usize == 1 {
                t1 = out.report.cycles;
            }
            cells.push(format!("{:.1}", t1 as f64 / out.report.cycles as f64));
        }
        table.row(cells);
    }
    println!("Fig. 11: speedup over one core (work-stealing, stack+queue in SPM)");
    println!("{table}");
}
