//! Per-kernel static-vs-WS timing for PageRank.
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::pagerank::{GraphKind, PageRank};
use mosaic_workloads::Benchmark;

fn main() {
    let mcfg = MachineConfig::small(8, 4);
    let pr = PageRank {
        n: 4096,
        kind: GraphKind::PowerLaw,
        iters: 1,
        seed: 0x96,
    };
    for (label, cfg) in [
        (
            "static/spm-stack",
            RuntimeConfig::static_loops(mosaic_runtime::Placement::Spm),
        ),
        ("ws/spm/spm", RuntimeConfig::work_stealing()),
    ] {
        let out = pr.run(mcfg.clone(), cfg);
        assert!(out.verified);
        let _marks = &out.report.marks;
        print!("{label:18} total={:>8}  ", out.report.cycles);
        let labels = [
            "iter0:K1",
            "iter0:K2",
            "iter0:K3",
            "iter0:K4",
            "iter0:K5",
            "iter0:K6",
            "iter0:end",
        ];
        for w in labels.windows(2) {
            let s = out.report.span(w[0], w[1]);
            print!("{}={:>7} ", &w[0][6..], s);
        }
        let t = out.report.totals();
        println!(
            " steals={} fails={} spawns={}",
            t.steals, t.failed_steals, t.spawns
        );
    }
}
