//! RD micro-probe with diagnostics.
use mosaic_runtime::{Mosaic, RuntimeConfig};
use mosaic_sim::MachineConfig;

fn main() {
    for env_words in [0u32, 4] {
        let cfg = RuntimeConfig::work_stealing();
        let sys = Mosaic::new(MachineConfig::small(16, 8), cfg);
        let report = sys.run(move |ctx| {
            ctx.parallel_for(0, 16384, 32, env_words, |ctx, _i| {
                ctx.compute(4, 4);
            });
        });
        println!(
            "env_words={env_words} cycles={} stall/core={}",
            report.cycles,
            report.counters.total_mem_stall() / 128
        );
    }
    for rd in [false, true] {
        let cfg = RuntimeConfig {
            rd_duplication: rd,
            ..RuntimeConfig::work_stealing()
        };
        let sys = Mosaic::new(MachineConfig::small(16, 8), cfg);
        let report = sys.run(move |ctx| {
            ctx.parallel_for(0, 16384, 32, 4, |ctx, _i| {
                ctx.compute(4, 4);
            });
        });
        let stall: u64 = report.counters.total_mem_stall();
        let instr = report.counters.total_instructions();
        let t = report.totals();
        println!(
            "rd={rd:5} cycles={} instr={} stall={} stall/core={} steals={} fails={} spawns={}",
            report.cycles,
            instr,
            stall,
            stall / 128,
            t.steals,
            t.failed_steals,
            t.spawns
        );
        // busiest core vs least busy (instructions)
        let mut v: Vec<u64> = report.counters.iter().map(|c| c.instructions).collect();
        v.sort_unstable();
        println!(
            "        instr/core min={} med={} max={}",
            v[0], v[64], v[127]
        );
    }
}
