//! Ablation: steal policies. Victim selection (random — the paper's
//! choice — vs round-robin vs mesh-nearest) crossed with steal amount
//! (one task vs half the victim's queue).

use mosaic_bench::{Options, Table};
use mosaic_runtime::{RuntimeConfig, StealAmount, VictimPolicy};
use mosaic_workloads::{uts, Scale};

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    let benches = uts::instances(opts.scale);
    let mut table = Table::new(&["workload", "victim", "amount", "cycles", "steals", "failed"]);
    for b in &benches {
        for (vname, policy) in [
            ("random", VictimPolicy::Random),
            ("round-robin", VictimPolicy::RoundRobin),
            ("nearest", VictimPolicy::Nearest),
        ] {
            for (aname, amount) in [("one", StealAmount::One), ("half", StealAmount::Half)] {
                let cfg = RuntimeConfig {
                    victim: policy,
                    steal_amount: amount,
                    ..RuntimeConfig::work_stealing()
                };
                let out = b.run(opts.machine(), cfg);
                out.assert_verified();
                let t = out.report.totals();
                table.row(vec![
                    b.name(),
                    vname.into(),
                    aname.into(),
                    format!("{}", out.report.cycles),
                    format!("{}", t.steals),
                    format!("{}", t.failed_steals),
                ]);
            }
        }
    }
    println!("Steal-policy ablation on {} cores", opts.cores());
    println!("{table}");
}
