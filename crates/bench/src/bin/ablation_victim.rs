//! Ablation: steal policies. Victim selection (random — the paper's
//! choice — vs round-robin vs mesh-nearest) crossed with steal amount
//! (one task vs half the victim's queue).

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_runtime::{RuntimeConfig, StealAmount, VictimPolicy};
use mosaic_workloads::{uts, Scale};
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    opts.cycle_only("ablation_victim");
    opts.no_workload_filter("ablation_victim");
    let benches = uts::instances(opts.scale);
    let victims = [
        ("random", VictimPolicy::Random),
        ("round-robin", VictimPolicy::RoundRobin),
        ("nearest", VictimPolicy::Nearest),
    ];
    let amounts = [("one", StealAmount::One), ("half", StealAmount::Half)];

    // Flat (bench, victim, amount) cells for the job pool.
    let per_bench = victims.len() * amounts.len();
    let count = benches.len() * per_bench;
    let jobs = opts.effective_jobs(count);
    let mut table = Table::new(&["workload", "victim", "amount", "cycles", "steals", "failed"]);
    let mut golden = opts.golden_file("ablation_victim");
    let mut gate = SanitizeGate::new(opts.sanitize);
    let start = Instant::now();
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let b = &benches[i / per_bench];
            let (_, policy) = victims[(i % per_bench) / amounts.len()];
            let (_, amount) = amounts[i % amounts.len()];
            let cfg = RuntimeConfig {
                victim: policy,
                steal_amount: amount,
                ..RuntimeConfig::work_stealing()
            };
            let out = b.run(opts.machine(), cfg);
            out.assert_verified();
            let t = out.report.totals();
            (
                out.report.cycles,
                out.report.instructions(),
                t.steals,
                t.failed_steals,
                SanCell::from_report(out.report.sanitizer.as_ref()),
            )
        },
        |i, (cycles, instructions, steals, failed, san)| {
            let b = &benches[i / per_bench];
            let (vname, _) = victims[(i % per_bench) / amounts.len()];
            let (aname, _) = amounts[i % amounts.len()];
            gate.record(&b.name(), &format!("{vname}/{aname}"), &san);
            table.row(vec![
                b.name(),
                vname.into(),
                aname.into(),
                format!("{cycles}"),
                format!("{steals}"),
                format!("{failed}"),
            ]);
            golden.push(
                b.name(),
                format!("{vname}/{aname}"),
                cycles,
                instructions,
                true,
            );
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!("Steal-policy ablation on {} cores", opts.cores());
    println!("{table}");
    opts.finish_golden(&golden);
    gate.finish();
}
