//! One-command reproduction: run every table/figure harness at the
//! given scale and write the outputs under `results/`.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin reproduce_all -- --scale small
//! ```
//!
//! All flags are passed through to each harness, so
//! `reproduce_all --scale tiny --check-golden --jobs 2` verifies the
//! whole reproduction against the committed golden numbers, and
//! `--write-golden` re-blesses them. Failures (including golden
//! mismatches) are collected and reported together at the end instead
//! of aborting on the first one.

use std::process::Command;

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    std::fs::create_dir_all("results").expect("mkdir results");
    let bins = [
        "table1",
        "fig05_heatmap",
        "fig06_rd_duplication",
        "fig07_fib_microbench",
        "fig09_speedup",
        "fig10_dynamic",
        "fig11_scaling",
        "ablation_grain",
        "ablation_victim",
        "ablation_ruche",
        "ablation_dealing",
        "trace_run",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures: Vec<String> = Vec::new();
    for bin in bins {
        eprintln!("==> {bin}");
        let out = match Command::new(exe_dir.join(bin)).args(&passthrough).output() {
            Ok(out) => out,
            Err(e) => {
                eprintln!("    FAILED to launch: {e}");
                failures.push(format!("{bin}: failed to launch ({e})"));
                continue;
            }
        };
        if !out.status.success() {
            eprintln!(
                "    FAILED ({}):\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            );
            failures.push(format!("{bin}: exit {}", out.status));
            continue;
        }
        let path = format!("results/{bin}.txt");
        std::fs::write(&path, &out.stdout).expect("write result");
        eprintln!("    wrote {path}");
    }
    if failures.is_empty() {
        eprintln!("all experiments reproduced under results/");
    } else {
        eprintln!("{} of {} experiments FAILED:", failures.len(), bins.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
