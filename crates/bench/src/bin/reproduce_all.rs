//! One-command reproduction: run every table/figure harness at the
//! given scale and write the outputs under `results/`.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin reproduce_all -- --scale small
//! ```

use std::process::Command;

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    std::fs::create_dir_all("results").expect("mkdir results");
    let bins = [
        "table1",
        "fig05_heatmap",
        "fig06_rd_duplication",
        "fig07_fib_microbench",
        "fig09_speedup",
        "fig10_dynamic",
        "fig11_scaling",
        "ablation_grain",
        "ablation_victim",
        "ablation_ruche",
        "ablation_dealing",
        "trace_run",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        eprintln!("==> {bin}");
        let out = Command::new(exe_dir.join(bin))
            .args(&passthrough)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let path = format!("results/{bin}.txt");
        std::fs::write(&path, &out.stdout).expect("write result");
        eprintln!("    wrote {path}");
    }
    eprintln!("all experiments reproduced under results/");
}
