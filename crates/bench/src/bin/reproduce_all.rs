//! One-command reproduction: run every table/figure harness at the
//! given scale and write the outputs under `results/`.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin reproduce_all -- --scale small
//! ```
//!
//! All flags are passed through to each harness, so
//! `reproduce_all --scale tiny --check-golden --jobs 2` verifies the
//! whole reproduction against the committed golden numbers, and
//! `--write-golden` re-blesses them. Failures (including golden
//! mismatches) are collected and reported together at the end instead
//! of aborting on the first one.
//!
//! With `--via-server ADDR` the experiments are not run locally:
//! every spec is submitted to a running serve daemon (see the `serve`
//! binary), results come back over the wire as golden-format JSON,
//! and `--check-golden` / `--write-golden` are applied locally to the
//! returned cells. Resubmitting the same sweep is answered from the
//! daemon's content-addressed cache — the closing metrics snapshot
//! shows the hit count.
//!
//! `--via-fleet ADDR` is the same wire conversation pointed at a
//! fleet gateway (see the `gateway` binary) instead of a single
//! daemon: the gateway shards singleton jobs across its workers by
//! digest, fans the sweep experiments out into per-workload subjobs,
//! and merges the parts in canonical order — so `--check-golden`
//! passes against the same committed goldens as a single-node run.

use mosaic_bench::golden::{self, GoldenFile};
use mosaic_bench::service::EXPERIMENTS;
use mosaic_serve::{Client, JobSpec, JobState, RetryPolicy, SubmitReply};
use std::process::Command;

fn main() {
    let mut passthrough: Vec<String> = std::env::args().skip(1).collect();
    // `--via-fleet` is the same client conversation as `--via-server`
    // (a gateway speaks the daemon protocol); the split exists so
    // scripts and logs say which topology they exercised.
    for via in ["--via-server", "--via-fleet"] {
        if let Some(i) = passthrough.iter().position(|a| a == via) {
            passthrough.remove(i);
            if i >= passthrough.len() {
                eprintln!("{via} needs an ADDR (host:port of a running daemon or gateway)");
                std::process::exit(2);
            }
            let addr = passthrough.remove(i);
            via_server(&addr, &passthrough);
            return;
        }
    }
    run_local(&passthrough);
}

/// The original mode: run each harness as a local child process.
fn run_local(passthrough: &[String]) {
    std::fs::create_dir_all("results").expect("mkdir results");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures: Vec<String> = Vec::new();
    for bin in EXPERIMENTS {
        eprintln!("==> {bin}");
        let out = match Command::new(exe_dir.join(bin)).args(passthrough).output() {
            Ok(out) => out,
            Err(e) => {
                eprintln!("    FAILED to launch: {e}");
                failures.push(format!("{bin}: failed to launch ({e})"));
                continue;
            }
        };
        if !out.status.success() {
            eprintln!(
                "    FAILED ({}):\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            );
            failures.push(format!("{bin}: exit {}", out.status));
            continue;
        }
        let path = format!("results/{bin}.txt");
        std::fs::write(&path, &out.stdout).expect("write result");
        eprintln!("    wrote {path}");
    }
    finish(failures);
}

/// Route the whole reproduction through a serve daemon.
fn via_server(addr: &str, flags: &[String]) {
    // Only the flags that shape a JobSpec are meaningful here; the
    // daemon owns host-parallelism decisions (`--jobs` budgets).
    let mut scale = "small".to_string();
    let mut cols: u16 = 0;
    let mut rows: u16 = 0;
    let mut sanitize = false;
    let mut faults = String::new();
    let mut fidelity = String::new();
    let mut host_threads: usize = 1;
    let mut check = false;
    let mut write = false;
    let mut it = flags.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--scale" => scale = value("--scale"),
            "--cols" => cols = value("--cols").parse().expect("--cols must be an integer"),
            "--rows" => rows = value("--rows").parse().expect("--rows must be an integer"),
            "--paper" => {
                cols = 16;
                rows = 8;
            }
            "--sanitize" => sanitize = true,
            "--faults" => faults = value("--faults"),
            "--fidelity" => fidelity = value("--fidelity"),
            "--host-threads" => {
                host_threads = value("--host-threads")
                    .parse::<usize>()
                    .expect("--host-threads must be an integer")
                    .max(1);
            }
            "--check-golden" => check = true,
            "--write-golden" => write = true,
            "--jobs" => {
                let _ = value("--jobs");
                eprintln!("note: --jobs is decided by the server in --via-server mode");
            }
            "--profile" => {
                eprintln!("note: --profile is local-only; the wire JobSpec carries no profiler");
            }
            "--prof-out" => {
                let _ = value("--prof-out");
                eprintln!("note: --prof-out is local-only; the wire JobSpec carries no profiler");
            }
            other => panic!("unknown option {other:?} for --via-server mode"),
        }
    }
    if !matches!(fidelity.as_str(), "" | "cycle") && (check || write) {
        // Same rule the harnesses enforce locally: committed goldens
        // are cycle-accurate truth; approximate payloads must not be
        // blessed or diffed against them.
        eprintln!(
            "refusing --{}-golden with --fidelity {fidelity}: committed goldens are \
             cycle-accurate only",
            if write { "write" } else { "check" }
        );
        std::process::exit(1);
    }

    // Retry the connect: a freshly launched daemon may still be
    // binding its listener when the reproduction script reaches us.
    let mut client = Client::connect_with_retry(addr, &RetryPolicy::with_attempts(5))
        .unwrap_or_else(|e| {
            eprintln!("cannot connect to serve daemon at {addr}: {e}");
            std::process::exit(1);
        });

    // Submit everything up front so the daemon's queue and worker
    // pool see the whole sweep, then collect in deterministic order.
    let mut failures: Vec<String> = Vec::new();
    let mut submitted: Vec<(&str, String)> = Vec::new();
    for bin in EXPERIMENTS {
        let mut spec = JobSpec::new(bin, &scale);
        spec.cols = cols;
        spec.rows = rows;
        spec.sanitize = sanitize;
        spec.faults = faults.clone();
        spec.fidelity = fidelity.clone();
        spec.host_threads = host_threads;
        // An `auto` submission to a daemon without a calibration table
        // comes back as an `error` response — collected as a per-
        // experiment failure below, like any other rejection.
        match client.submit(&spec) {
            Ok(SubmitReply::Accepted { id, state, cached }) => {
                eprintln!(
                    "==> {bin} submitted as {id} ({}{})",
                    state.as_str(),
                    if cached { ", cached" } else { "" }
                );
                submitted.push((bin, id));
            }
            Ok(SubmitReply::Overloaded { depth, cap }) => {
                failures.push(format!("{bin}: rejected, queue depth {depth} at cap {cap}"));
            }
            Ok(SubmitReply::Draining) => failures.push(format!("{bin}: server draining")),
            Err(e) => failures.push(format!("{bin}: submit failed ({e})")),
        }
    }

    for (bin, id) in &submitted {
        match client.wait_result(id) {
            Ok(res) if res.state == JobState::Done => {
                let payload = res.payload.unwrap_or_default();
                match GoldenFile::parse(&payload) {
                    Ok(fresh) => {
                        eprintln!("    {bin}: {} cells from server", fresh.cells.len());
                        if write {
                            match golden::write(&fresh) {
                                Ok(path) => eprintln!("    blessed {path}"),
                                Err(e) => failures.push(format!("{bin}: bless failed ({e})")),
                            }
                        }
                        if check {
                            match golden::check(&fresh) {
                                Ok(cells) => eprintln!(
                                    "    golden check ok: {cells} cells match {}",
                                    fresh.file_name()
                                ),
                                Err(report) => {
                                    eprintln!("{report}");
                                    failures.push(format!("{bin}: golden mismatch"));
                                }
                            }
                        }
                    }
                    Err(e) => failures.push(format!("{bin}: malformed payload ({e})")),
                }
            }
            Ok(res) => failures.push(format!(
                "{bin}: job ended {} ({})",
                res.state.as_str(),
                res.error.unwrap_or_default()
            )),
            Err(e) => failures.push(format!("{bin}: result failed ({e})")),
        }
    }

    match client.metrics() {
        Ok(snap) => eprintln!("server metrics: {}", snap.write()),
        Err(e) => eprintln!("server metrics unavailable: {e}"),
    }
    finish(failures);
}

fn finish(failures: Vec<String>) {
    if failures.is_empty() {
        eprintln!("all experiments reproduced");
    } else {
        eprintln!(
            "{} of {} experiments FAILED:",
            failures.len(),
            EXPERIMENTS.len()
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
