//! Shape check: does the model reproduce the paper's orderings?
use mosaic_bench::Options;
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::{fib::Fib, pagerank, uts, Benchmark, Scale};

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4); // 32 cores
    opts.cycle_only("shape_check");
    opts.no_workload_filter("shape_check");
    let mcfg = opts.machine();
    let scale = opts.scale;
    println!("=== Fib(12), 4 WS variants (paper Fig 7 ordering) ===");
    for (label, cfg) in RuntimeConfig::table1_sweep() {
        if label.starts_with("static") {
            continue;
        }
        let out = Fib { n: 12 }.run(mcfg.clone(), cfg);
        out.assert_verified();
        let t = out.report.totals();
        println!(
            "{label:24} cycles={:>9} DI={:>9} steals={} fails={} ovf={}",
            out.report.cycles,
            out.report.instructions(),
            t.steals,
            t.failed_steals,
            t.stack_overflows
        );
    }
    println!("=== UTS-t3 ({}) static vs WS ===", opts.scale_name());
    let u = &uts::instances(scale)[1];
    for (label, cfg) in RuntimeConfig::table1_sweep() {
        let out = u.run(mcfg.clone(), cfg);
        out.assert_verified();
        println!(
            "{label:24} cycles={:>9} DI={:>9}",
            out.report.cycles,
            out.report.instructions()
        );
    }
    println!(
        "=== PageRank-email ({}) static vs WS ===",
        opts.scale_name()
    );
    let pr = &pagerank::instances(scale)[1];
    for (label, cfg) in RuntimeConfig::table1_sweep() {
        let out = pr.run(mcfg.clone(), cfg);
        out.assert_verified();
        println!(
            "{label:24} cycles={:>9} DI={:>9}",
            out.report.cycles,
            out.report.instructions()
        );
    }
}
