//! Run one workload with tracing enabled and export a Chrome/Perfetto
//! trace (`results/trace.json`) plus a utilization summary — visual
//! inspection of how the work-stealing schedule unfolds across the
//! mesh.
//!
//! Open the output at <https://ui.perfetto.dev> (rows = cores; "local"
//! vs "stolen" task spans are color-categorized; steal instants carry
//! flow arrows from victim to thief; user marks are flagged). With
//! `--profile`, the trace additionally carries a "cycles by bucket"
//! counter track sampled once per profiler window (see
//! `docs/observability.md`).

use mosaic_bench::{Options, SanCell, SanitizeGate};
use mosaic_runtime::{trace, RuntimeConfig};
use mosaic_workloads::{uts, Scale};

fn main() {
    let opts = Options::parse(Scale::Tiny, 8, 4);
    opts.cycle_only("trace_run");
    opts.no_workload_filter("trace_run");
    let bench = &uts::instances(opts.scale)[1]; // UTS-t3: the showcase
    let cfg = RuntimeConfig {
        trace: true,
        ..RuntimeConfig::work_stealing()
    };
    let out = bench.run(opts.machine(), cfg);
    out.assert_verified();
    let r = &out.report;
    let json = trace::to_chrome_json_with_profile(&r.trace, r.profile.as_ref());
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/trace.json", &json).expect("write trace");
    let t = r.totals();
    println!(
        "{}: {} cycles, {} tasks ({} stolen), mean utilization {:.0}%",
        bench.name(),
        r.cycles,
        t.tasks_executed,
        t.steals,
        100.0 * r.mean_utilization()
    );
    println!(
        "wrote results/trace.json ({} events) — open in ui.perfetto.dev",
        r.trace.len()
    );
    let mut golden = opts.golden_file("trace_run");
    golden.push(
        bench.name(),
        "ws/trace",
        r.cycles,
        r.instructions(),
        out.verified,
    );
    opts.finish_golden(&golden);

    let mut gate = SanitizeGate::new(opts.sanitize);
    gate.record(
        &bench.name(),
        "ws/trace",
        &SanCell::from_report(r.sanitizer.as_ref()),
    );
    gate.finish();
}
