//! Node-kill chaos harness for the fleet tier: proves the gateway
//! re-routes journaled subjobs around a dead worker with a
//! byte-identical merged payload, with real processes and a real
//! `abort()`.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin recovery_fleet
//! ```
//!
//! Two phases, each a 3-process fleet (gateway + 2 workers) built from
//! the sibling `gateway` and `serve` binaries:
//!
//! 1. **Golden** — a clean fleet runs the fanned-out `table1` sweep
//!    plus a forwarded singleton; the merged payloads are the
//!    reference.
//! 2. **Node kill** — a fresh fleet where worker B carries
//!    `--chaos-host slow=...,node_kill=...`: the whole process aborts
//!    mid-sweep, `SIGKILL`-style. The gateway must mark B down,
//!    re-route its unfinished subjobs to the survivor (asserted:
//!    `reroutes` nonzero), and deliver payloads **byte-identical** to
//!    phase 1. The survivors must then drain cleanly.
//!
//! Any divergence, missing re-route, or unexpected daemon survival is
//! a hard failure (exit 1) — this is the CI `fleet-smoke` gate.

use mosaic_serve::{Client, JobSpec, JobState, RetryPolicy, SubmitReply};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The submissions: one sweep the gateway fans out per workload, one
/// singleton it forwards whole.
const EXPERIMENTS: &[&str] = &["table1", "fig07_fib_microbench"];

fn fail(msg: &str) -> ! {
    eprintln!("recovery_fleet: FAIL: {msg}");
    std::process::exit(1);
}

struct Daemon {
    child: Child,
    addr: String,
}

fn exe_dir() -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| fail("cannot locate the directory holding the fleet binaries"))
}

/// Scrape the bound address from a daemon's first stdout line (both
/// `serve` and `gateway` print exactly that).
fn scrape_addr(child: &mut Child, what: &str) -> String {
    let stdout = child.stdout.take().expect("daemon stdout captured");
    let mut addr = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut addr)
        .unwrap_or_else(|e| fail(&format!("read {what} address: {e}")));
    let addr = addr.trim().to_string();
    if addr.is_empty() {
        fail(&format!("{what} exited before printing its address"));
    }
    addr
}

/// Spawn a worker daemon on an ephemeral port.
fn spawn_worker(cache: &Path, journal: &Path, peers: &[&str], chaos: Option<&str>) -> Daemon {
    let mut cmd = Command::new(exe_dir().join("serve"));
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--cache-dir")
        .arg(cache)
        .arg("--journal-dir")
        .arg(journal)
        .args(["--workers", "1"]);
    if !peers.is_empty() {
        cmd.args(["--peers", &peers.join(",")]);
    }
    if let Some(spec) = chaos {
        cmd.args(["--chaos-host", spec]);
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd
        .spawn()
        .unwrap_or_else(|e| fail(&format!("launch serve: {e}")));
    let addr = scrape_addr(&mut child, "serve");
    Daemon { child, addr }
}

/// Spawn the gateway on an ephemeral port, fronting `workers`.
fn spawn_gateway(workers: &[&str]) -> Daemon {
    let mut cmd = Command::new(exe_dir().join("gateway"));
    cmd.args(["--addr", "127.0.0.1:0"])
        .args(["--workers", &workers.join(",")]);
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd
        .spawn()
        .unwrap_or_else(|e| fail(&format!("launch gateway: {e}")));
    let addr = scrape_addr(&mut child, "gateway");
    Daemon { child, addr }
}

fn connect(addr: &str) -> Client {
    Client::connect_with_deadline(
        addr,
        &RetryPolicy::with_attempts(20),
        Duration::from_secs(30),
    )
    .unwrap_or_else(|e| fail(&format!("connect to {addr}: {e}")))
}

fn submit_all(client: &mut Client) -> Vec<String> {
    EXPERIMENTS
        .iter()
        .map(|e| {
            let spec = JobSpec::new(e, "tiny");
            match client
                .submit(&spec)
                .unwrap_or_else(|err| fail(&format!("submit {e}: {err}")))
            {
                SubmitReply::Accepted { id, .. } => id,
                other => fail(&format!("submit {e}: {other:?}")),
            }
        })
        .collect()
}

fn collect_payloads(client: &mut Client, ids: &[String]) -> BTreeMap<String, String> {
    ids.iter()
        .map(|id| {
            let res = client
                .wait_result(id)
                .unwrap_or_else(|e| fail(&format!("wait {id}: {e}")));
            if res.state != JobState::Done {
                fail(&format!(
                    "job {id} ended {}: {}",
                    res.state.as_str(),
                    res.error.unwrap_or_default()
                ));
            }
            (id.clone(), res.payload.unwrap_or_default())
        })
        .collect()
}

fn metric(client: &mut Client, name: &str) -> u64 {
    let v = client
        .metrics()
        .unwrap_or_else(|e| fail(&format!("metrics: {e}")));
    let Ok(obj) = v.as_object("metrics") else {
        return 0;
    };
    obj.opt(name).and_then(|f| f.as_u64().ok()).unwrap_or(0)
}

/// Shut a daemon down over the wire and require a clean exit.
fn drain(mut daemon: Daemon, what: &str) {
    connect(&daemon.addr)
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown {what}: {e}")));
    let status = daemon
        .child
        .wait()
        .unwrap_or_else(|e| fail(&format!("wait for {what}: {e}")));
    if !status.success() {
        fail(&format!("{what} exited {status} on a clean drain"));
    }
}

fn main() {
    let mut node_kill_ms: u64 = 2500;
    let mut slow_ms: u64 = 500;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--node-kill-ms" => {
                node_kill_ms = value("--node-kill-ms")
                    .parse()
                    .expect("--node-kill-ms must be an integer");
            }
            "--slow-ms" => {
                slow_ms = value("--slow-ms")
                    .parse()
                    .expect("--slow-ms must be an integer");
            }
            "--help" | "-h" => {
                eprintln!(
                    "fleet node-kill chaos harness\n\
                     options: --node-kill-ms N   abort worker B N ms after it boots (default 2500)\n         \
                     --slow-ms N        per-job injected slowness on worker B so the kill lands mid-sweep (default 500)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown option {other:?} (try --help)"),
        }
    }

    let scratch = std::env::temp_dir().join(format!("mosaic-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let dir = |name: &str| scratch.join(name);

    // Phase 1: fault-free fleet reference. Worker B peers on A (the
    // ephemeral ports force one-directional peering here; CI's
    // fixed-port fleet-smoke exercises the bidirectional mesh).
    eprintln!("recovery_fleet: phase 1: golden (fault-free) fleet");
    let a1 = spawn_worker(&dir("a1-cache"), &dir("a1-journal"), &[], None);
    let b1 = spawn_worker(&dir("b1-cache"), &dir("b1-journal"), &[&a1.addr], None);
    let g1 = spawn_gateway(&[&a1.addr, &b1.addr]);
    let mut client = connect(&g1.addr);
    let ids = submit_all(&mut client);
    let golden = collect_payloads(&mut client, &ids);
    if metric(&mut client, "fanouts") == 0 {
        fail("the gateway never fanned the sweep out — SweepFanout did not split table1");
    }
    drop(client);
    drain(g1, "gateway");
    drain(a1, "worker A");
    drain(b1, "worker B");

    // Phase 2: the same fleet, with worker B doomed to abort
    // node_kill_ms after boot — mid-sweep, given the injected per-job
    // slowness. Spawn B last so its fuse starts just before the
    // submissions land.
    eprintln!(
        "recovery_fleet: phase 2: node-kill fleet (node_kill={node_kill_ms}ms, slow={slow_ms}ms)"
    );
    let chaos = format!("slow={slow_ms},node_kill={node_kill_ms}");
    let a2 = spawn_worker(&dir("a2-cache"), &dir("a2-journal"), &[], None);
    let mut b2 = spawn_worker(
        &dir("b2-cache"),
        &dir("b2-journal"),
        &[&a2.addr],
        Some(&chaos),
    );
    let g2 = spawn_gateway(&[&a2.addr, &b2.addr]);
    let mut client = connect(&g2.addr);
    let chaos_ids = submit_all(&mut client);
    if chaos_ids != ids {
        fail("job ids changed between phases — the spec digest is unstable");
    }
    let recovered = collect_payloads(&mut client, &ids);

    let status = b2
        .child
        .wait()
        .unwrap_or_else(|e| fail(&format!("wait for killed worker: {e}")));
    if status.success() {
        fail("worker B exited cleanly — the node-kill fault never fired");
    }
    eprintln!("recovery_fleet: worker B died as planned ({status})");
    let reroutes = metric(&mut client, "reroutes");
    if reroutes == 0 {
        fail("the gateway re-routed nothing — the kill missed every in-flight subjob");
    }
    eprintln!("recovery_fleet: gateway re-routed {reroutes} subjob(s) to the survivor");

    let mut diverged = 0;
    for id in &ids {
        if golden[id] != recovered[id] {
            eprintln!("recovery_fleet: payload for {id} diverged from the fault-free fleet");
            diverged += 1;
        }
    }
    if diverged > 0 {
        fail(&format!(
            "{diverged} payload(s) diverged after the node kill"
        ));
    }

    // The survivors must still drain cleanly with B gone.
    drop(client);
    drain(g2, "gateway");
    drain(a2, "worker A");
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "recovery_fleet: ok: {} jobs byte-identical after a node kill ({reroutes} re-routed)",
        ids.len()
    );
}
