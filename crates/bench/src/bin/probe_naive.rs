//! Diagnose the naive (all-DRAM) configuration's slowdown composition.
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::pagerank::{GraphKind, PageRank};
use mosaic_workloads::Benchmark;

fn main() {
    let pr = PageRank {
        n: 2048,
        kind: GraphKind::PowerLaw,
        iters: 1,
        seed: 0x96,
    };
    for (label, cfg) in [
        ("naive", RuntimeConfig::work_stealing_naive()),
        ("spm", RuntimeConfig::work_stealing()),
    ] {
        let out = pr.run(MachineConfig::small(8, 4), cfg);
        let r = &out.report;
        let t = r.totals();
        let (h, m, wb) = r.machine.llc_stats();
        let (dr, dw) = r.machine.dram_traffic();
        println!("{label:6} cycles={:>8} instr={:>8} stall={:>9} steals={} fails={} lockretry={} llc h/m/wb={h}/{m}/{wb} dram r/w={dr}/{dw}",
            r.cycles, r.instructions(), r.counters.total_mem_stall(), t.steals, t.failed_steals, t.lock_retries);
        let ls = r.machine.mesh().link_stats();
        let (hot_idx, hot) = ls.hottest_link().unwrap();
        let cfgm = r.machine.mesh().config();
        let (from, to) = cfgm.link_table()[hot_idx];
        println!(
            "       mesh total flits={} hottest link {}->{} carried {} flits ({:.2}/cycle)",
            ls.total_flits(),
            cfgm.coord(from),
            cfgm.coord(to),
            hot,
            hot as f64 / r.cycles as f64
        );
    }
}
