//! The fleet gateway daemon.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin gateway -- \
//!     --addr 127.0.0.1:9200 --workers 127.0.0.1:9201,127.0.0.1:9202
//! ```
//!
//! Speaks the same newline-delimited JSON protocol as a worker daemon
//! (`submit` / `status` / `result` / `watch` / `cancel` / `metrics` /
//! `shutdown`), but runs nothing itself: singleton jobs are forwarded
//! to the worker owning their digest on the consistent-hash ring, the
//! sweep experiments (`table1`, `fig09_speedup`) are fanned out into
//! per-workload subjobs and merged back in canonical order, dead
//! workers are routed around, and per-tenant token-bucket admission
//! (`--tenant-rate`/`--tenant-burst`) rides the `overloaded` response.

use mosaic_bench::SweepFanout;
use mosaic_serve::fleet::ring::DEFAULT_REPLICAS;
use mosaic_serve::{Gateway, GatewayConfig};
use std::sync::Arc;

fn main() {
    let mut cfg = GatewayConfig {
        addr: "127.0.0.1:9200".to_string(),
        workers: Vec::new(),
        replicas: DEFAULT_REPLICAS,
        tenant_rate: 0,
        tenant_burst: 8,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => {
                cfg.workers = value("--workers")
                    .split(',')
                    .map(str::trim)
                    .filter(|w| !w.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--replicas" => {
                cfg.replicas = value("--replicas")
                    .parse()
                    .expect("--replicas must be an integer");
            }
            "--tenant-rate" => {
                cfg.tenant_rate = value("--tenant-rate")
                    .parse()
                    .expect("--tenant-rate must be an integer (tokens/sec)");
            }
            "--tenant-burst" => {
                cfg.tenant_burst = value("--tenant-burst")
                    .parse()
                    .expect("--tenant-burst must be an integer");
            }
            "--help" | "-h" => {
                eprintln!(
                    "mosaic fleet gateway\n\
                     options: --addr HOST:PORT       bind address (default 127.0.0.1:9200; port 0 = ephemeral)\n         \
                     --workers A:P,B:P      worker daemon addresses (required; the hash-ring members)\n         \
                     --replicas N           virtual points per worker on the ring (default 64)\n         \
                     --tenant-rate N        per-tenant admission: tokens per second (default 0 = off)\n         \
                     --tenant-burst N       per-tenant admission: bucket capacity (default 8)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown option {other:?} (try --help)"),
        }
    }
    if cfg.workers.is_empty() {
        eprintln!("gateway: --workers is required (comma-separated daemon addresses)");
        std::process::exit(2);
    }

    eprintln!(
        "gateway: {} workers ({}), {} ring replicas each{}",
        cfg.workers.len(),
        cfg.workers.join(", "),
        cfg.replicas,
        if cfg.tenant_rate > 0 {
            format!(
                ", tenant admission {}t/s burst {}",
                cfg.tenant_rate, cfg.tenant_burst
            )
        } else {
            String::new()
        }
    );
    let gateway = Gateway::start(cfg, Arc::new(SweepFanout)).expect("bind fleet gateway");
    // Stdout carries exactly the bound address so scripts can scrape
    // the ephemeral port; everything else goes to stderr (same
    // contract as the serve daemon).
    println!("{}", gateway.local_addr());
    eprintln!("gateway: listening on {}", gateway.local_addr());
    gateway.join();
    eprintln!("gateway: drained, exiting");
}
