//! Related-work comparison: work-stealing (the paper) vs work-dealing
//! (Zakkak & Pratikakis) vs the static baseline, on representative
//! workloads from each quadrant. The paper argues stealing is the
//! right policy for SPM manycores; this quantifies the gap under an
//! identical substrate and placement configuration.

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_runtime::{Placement, RuntimeConfig};
use mosaic_workloads::{matmul, pagerank, uts, Benchmark, Scale};
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    opts.cycle_only("ablation_dealing");
    opts.no_workload_filter("ablation_dealing");
    let mut benches: Vec<Box<dyn Benchmark>> = Vec::new();
    benches.extend(matmul::instances(opts.scale).into_iter().take(1));
    benches.extend(pagerank::instances(opts.scale).into_iter().skip(1).take(1));
    benches.extend(uts::instances(opts.scale));

    // Flat cell list: schedulers vary per benchmark (no static baseline
    // for the irregular workloads), so enumerate explicitly.
    let mut cells: Vec<(usize, &str)> = Vec::new();
    for (bi, b) in benches.iter().enumerate() {
        if b.has_static_baseline() {
            cells.push((bi, "static"));
        }
        cells.push((bi, "stealing"));
        cells.push((bi, "dealing"));
    }
    let count = cells.len();
    let jobs = opts.effective_jobs(count);
    let mut table = Table::new(&["workload", "scheduler", "cycles", "moved", "vs static"]);
    let mut golden = opts.golden_file("ablation_dealing");
    let mut static_of: Vec<Option<u64>> = vec![None; benches.len()];
    let mut gate = SanitizeGate::new(opts.sanitize);
    let start = Instant::now();
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let (bi, sched) = cells[i];
            let cfg = match sched {
                "static" => RuntimeConfig::static_loops(Placement::Spm),
                "stealing" => RuntimeConfig::work_stealing(),
                _ => RuntimeConfig::work_dealing(),
            };
            let out = benches[bi].run(opts.machine(), cfg);
            out.assert_verified();
            let t = out.report.totals();
            (
                out.report.cycles,
                out.report.instructions(),
                t.steals + t.deals,
                SanCell::from_report(out.report.sanitizer.as_ref()),
            )
        },
        |i, (cycles, instructions, moved, san)| {
            let (bi, sched) = cells[i];
            let b = &benches[bi];
            gate.record(&b.name(), sched, &san);
            if sched == "static" {
                static_of[bi] = Some(cycles);
                table.row(vec![
                    b.name(),
                    "static".into(),
                    format!("{cycles}"),
                    "-".into(),
                    "1.00".into(),
                ]);
            } else {
                let vs = static_of[bi]
                    .map(|sc| format!("{:.2}", sc as f64 / cycles as f64))
                    .unwrap_or_else(|| "-".into());
                table.row(vec![
                    b.name(),
                    sched.into(),
                    format!("{cycles}"),
                    format!("{moved}"),
                    vs,
                ]);
            }
            golden.push(b.name(), sched, cycles, instructions, true);
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!(
        "Scheduler-policy comparison on {} cores (moved = tasks stolen or dealt)",
        opts.cores()
    );
    println!("{table}");
    opts.finish_golden(&golden);
    gate.finish();
}
