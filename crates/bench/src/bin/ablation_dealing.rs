//! Related-work comparison: work-stealing (the paper) vs work-dealing
//! (Zakkak & Pratikakis) vs the static baseline, on representative
//! workloads from each quadrant. The paper argues stealing is the
//! right policy for SPM manycores; this quantifies the gap under an
//! identical substrate and placement configuration.

use mosaic_bench::{Options, Table};
use mosaic_runtime::{Placement, RuntimeConfig};
use mosaic_workloads::{matmul, pagerank, uts, Benchmark, Scale};

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    let mut benches: Vec<Box<dyn Benchmark>> = Vec::new();
    benches.extend(matmul::instances(opts.scale).into_iter().take(1));
    benches.extend(pagerank::instances(opts.scale).into_iter().skip(1).take(1));
    benches.extend(uts::instances(opts.scale));

    let mut table = Table::new(&["workload", "scheduler", "cycles", "moved", "vs static"]);
    for b in &benches {
        let static_cycles = if b.has_static_baseline() {
            let out = b.run(opts.machine(), RuntimeConfig::static_loops(Placement::Spm));
            out.assert_verified();
            Some(out.report.cycles)
        } else {
            None
        };
        if let Some(sc) = static_cycles {
            table.row(vec![
                b.name(),
                "static".into(),
                format!("{sc}"),
                "-".into(),
                "1.00".into(),
            ]);
        }
        for (name, cfg) in [
            ("stealing", RuntimeConfig::work_stealing()),
            ("dealing", RuntimeConfig::work_dealing()),
        ] {
            let out = b.run(opts.machine(), cfg);
            out.assert_verified();
            let t = out.report.totals();
            let moved = t.steals + t.deals;
            let vs = static_cycles
                .map(|sc| format!("{:.2}", sc as f64 / out.report.cycles as f64))
                .unwrap_or_else(|| "-".into());
            table.row(vec![
                b.name(),
                name.into(),
                format!("{}", out.report.cycles),
                format!("{moved}"),
                vs,
            ]);
        }
    }
    println!(
        "Scheduler-policy comparison on {} cores (moved = tasks stolen or dealt)",
        opts.cores()
    );
    println!("{table}");
}
