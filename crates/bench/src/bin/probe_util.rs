//! Utilization probe: who does the work, and when does it stall?
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::spmv::{MatrixKind, SpMV};
use mosaic_workloads::Benchmark;

fn main() {
    let s = SpMV {
        n: 1024,
        kind: MatrixKind::PowerLaw,
        seed: 0x51,
    };
    let out = s.run(MachineConfig::small(8, 4), RuntimeConfig::work_stealing());
    assert!(out.verified);
    let r = &out.report;
    println!("total cycles {}", r.cycles);
    let mut tasks: Vec<u64> = r.worker_stats.iter().map(|w| w.tasks_executed).collect();
    println!("tasks/core: {:?}", tasks);
    tasks.sort_unstable();
    let instr: Vec<u64> = r.counters.iter().map(|c| c.instructions).collect();
    let stall: Vec<u64> = r.counters.iter().map(|c| c.mem_stall_cycles).collect();
    println!(
        "instr: min={} max={} sum={}",
        instr.iter().min().unwrap(),
        instr.iter().max().unwrap(),
        instr.iter().sum::<u64>()
    );
    println!(
        "stall: min={} max={} sum={}",
        stall.iter().min().unwrap(),
        stall.iter().max().unwrap(),
        stall.iter().sum::<u64>()
    );
    let t = r.totals();
    println!(
        "steals={} fails={} spawns={} inline={} lock_retries={}",
        t.steals, t.failed_steals, t.spawns, t.inline_executions, t.lock_retries
    );
}
