//! CLI client for the serve daemon.
//!
//! ```sh
//! mosaic-client --addr 127.0.0.1:9118 submit table1 --scale tiny --wait
//! mosaic-client --addr 127.0.0.1:9118 metrics
//! mosaic-client --addr 127.0.0.1:9118 shutdown
//! ```
//!
//! Responses are printed as JSON, one per line, so output composes
//! with shell pipelines; `submit --wait` additionally prints the
//! result payload (the experiment's golden-format JSON) to stdout.

use mosaic_serve::{Client, JobSpec, JobState, Request, RetryPolicy, SubmitReply};

fn usage() -> ! {
    eprintln!(
        "usage: mosaic-client [--addr HOST:PORT] [--connect-timeout-ms N] COMMAND\n\
         commands:\n  \
         submit EXPERIMENT [--scale tiny|small|full] [--cols N --rows N] [--sanitize] [--faults SPEC]\n                   \
         [--fidelity cycle|analytic|auto] [--tenant NAME] [--wait] [--watch]\n  \
         status ID\n  \
         result ID\n  \
         watch ID\n  \
         cancel ID\n  \
         metrics\n  \
         shutdown"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:9118".to_string();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--addr") {
        args.remove(i);
        if i >= args.len() {
            usage();
        }
        addr = args.remove(i);
    }
    // Overall wall-clock budget for the connect-retry loop; without it
    // the retries are bounded only by attempt count.
    let mut connect_timeout = std::time::Duration::MAX;
    if let Some(i) = args.iter().position(|a| a == "--connect-timeout-ms") {
        args.remove(i);
        if i >= args.len() {
            usage();
        }
        let ms: u64 = args.remove(i).parse().unwrap_or_else(|_| usage());
        connect_timeout = std::time::Duration::from_millis(ms);
    }
    if args.is_empty() {
        usage();
    }
    let command = args.remove(0);
    // Bounded connect retries: tolerates a daemon that is still
    // binding (or being restarted by a supervisor) without hanging —
    // and never longer than --connect-timeout-ms in total.
    let mut client =
        Client::connect_with_deadline(&addr, &RetryPolicy::with_attempts(3), connect_timeout)
            .unwrap_or_else(|e| panic!("cannot connect to serve daemon at {addr}: {e}"));

    let fail = |e: String| -> ! {
        eprintln!("mosaic-client: {e}");
        std::process::exit(1);
    };
    let arg_id = |args: &[String]| -> String { args.first().cloned().unwrap_or_else(|| usage()) };

    match command.as_str() {
        "submit" => {
            if args.is_empty() {
                usage();
            }
            let mut spec = JobSpec::new(&args.remove(0), "small");
            let mut wait = false;
            let mut watch = false;
            // Only meaningful against a gateway with per-tenant
            // admission on; a plain worker daemon ignores it.
            let mut tenant = String::new();
            let mut it = args.into_iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => spec.scale = it.next().unwrap_or_else(|| usage()),
                    "--cols" => {
                        spec.cols = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage());
                    }
                    "--rows" => {
                        spec.rows = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage());
                    }
                    "--sanitize" => spec.sanitize = true,
                    "--faults" => spec.faults = it.next().unwrap_or_else(|| usage()),
                    "--fidelity" => spec.fidelity = it.next().unwrap_or_else(|| usage()),
                    "--tenant" => tenant = it.next().unwrap_or_else(|| usage()),
                    "--wait" => wait = true,
                    "--watch" => watch = true,
                    _ => usage(),
                }
            }
            let reply = client.submit_as(&spec, &tenant).unwrap_or_else(|e| fail(e));
            match reply {
                SubmitReply::Accepted { id, state, cached } => {
                    eprintln!(
                        "accepted {id} ({}{})",
                        state.as_str(),
                        if cached { ", cached" } else { "" }
                    );
                    if watch && !state.is_terminal() {
                        let final_state = client
                            .watch(&id, |done, _total, msg| eprintln!("[{done}] {msg}"))
                            .unwrap_or_else(|e| fail(e));
                        eprintln!("{id}: {}", final_state.as_str());
                    }
                    if wait || watch {
                        let res = client.wait_result(&id).unwrap_or_else(|e| fail(e));
                        match res.state {
                            JobState::Done => {
                                print!("{}", res.payload.unwrap_or_default());
                            }
                            other => fail(format!(
                                "job {id} ended {}: {}",
                                other.as_str(),
                                res.error.unwrap_or_default()
                            )),
                        }
                    } else {
                        println!("{id}");
                    }
                }
                SubmitReply::Overloaded { depth, cap } => {
                    fail(format!("overloaded: queue depth {depth} at cap {cap}"))
                }
                SubmitReply::Draining => fail("server is draining".to_string()),
            }
        }
        "status" => {
            let id = arg_id(&args);
            let v = client
                .request(&Request::Status { id })
                .unwrap_or_else(|e| fail(e));
            println!("{}", v.write());
        }
        "result" => {
            let id = arg_id(&args);
            let res = client.wait_result(&id).unwrap_or_else(|e| fail(e));
            match res.state {
                JobState::Done => print!("{}", res.payload.unwrap_or_default()),
                other => fail(format!(
                    "job ended {}: {}",
                    other.as_str(),
                    res.error.unwrap_or_default()
                )),
            }
        }
        "watch" => {
            let id = arg_id(&args);
            let state = client
                .watch(&id, |done, _total, msg| eprintln!("[{done}] {msg}"))
                .unwrap_or_else(|e| fail(e));
            println!("{}", state.as_str());
        }
        "cancel" => {
            let id = arg_id(&args);
            let state = client.cancel(&id).unwrap_or_else(|e| fail(e));
            println!("{}", state.as_str());
        }
        "metrics" => {
            let v = client.metrics().unwrap_or_else(|e| fail(e));
            // Human summary of the fast-mode split on stderr; the full
            // snapshot (including latency_by_fidelity percentiles)
            // stays on stdout for pipelines.
            if let Ok(obj) = v.as_object("metrics") {
                let count = |name: &str| -> u64 {
                    obj.opt(name).and_then(|f| f.as_u64().ok()).unwrap_or(0)
                };
                eprintln!(
                    "fast mode: {} analytic, {} escalated to cycle",
                    count("fast_jobs"),
                    count("escalations")
                );
                // Keys this client predates get a sorted "other"
                // section instead of being silently dropped — a newer
                // daemon's counters (a worker's `steals`, a gateway's
                // `forwards`/`remote_cache_hits`, ...) stay visible
                // without a client upgrade.
                let known = [
                    "type",
                    "accepted",
                    "rejected",
                    "completed",
                    "failed",
                    "timed_out",
                    "cancelled",
                    "retries",
                    "worker_deaths",
                    "replayed_jobs",
                    "fast_jobs",
                    "escalations",
                    "cache_hits",
                    "cache_misses",
                    "queue_depth",
                    "busy_workers",
                    "latency_ms",
                    "latency_by_fidelity",
                    "profiled_jobs",
                    "profile",
                ];
                let mut other: Vec<String> = obj
                    .keys()
                    .filter(|k| !known.contains(k))
                    .map(|k| {
                        let val = obj
                            .opt(k)
                            .map(|v| v.write())
                            .unwrap_or_else(|| "null".to_string());
                        format!("  {k}: {val}")
                    })
                    .collect();
                if !other.is_empty() {
                    other.sort();
                    eprintln!("other counters:");
                    for line in other {
                        eprintln!("{line}");
                    }
                }
            }
            println!("{}", v.write());
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            eprintln!("server draining");
        }
        _ => usage(),
    }
}
