//! Regenerate **Figure 5**: normalized remote-scratchpad load latency
//! of every core toward core 0 on the mesh, while all cores load from
//! core 0's SPM simultaneously — the congestion pattern that motivated
//! read-only data duplication (X-Y routing makes Y-bandwidth toward
//! the hot node the scarce resource).

use mosaic_bench::{Options, SanCell, SanitizeGate};
use mosaic_mesh::TrafficMatrix;
use mosaic_sim::{Engine, Machine};
use mosaic_workloads::Scale;

fn main() {
    let opts = Options::parse(Scale::Small, 16, 8);
    opts.cycle_only("fig05_heatmap");
    opts.no_workload_filter("fig05_heatmap");
    let mut machine = Machine::new(opts.machine());
    machine.enable_latency_probe();
    let map = machine.addr_map().clone();
    let loads_per_core = 200u32;

    let mut report = Engine::run(machine, move |core| {
        let map = map.clone();
        Box::new(move |api| {
            if core == 0 {
                // The victim: sit still while everyone reads our SPM.
                api.charge(1, 20_000);
                return;
            }
            let target = map.spm_addr(0, ((core as u32 * 4) % 1024) & !3);
            for i in 0..loads_per_core {
                api.load(target);
                // Think time between remote reads (the profiled kernels
                // do real work between captured-state loads); keeps the
                // hot SPM port just below saturation so latency reflects
                // position rather than one global FCFS queue.
                api.charge(8, 170 + (core as u64 * 7 + i as u64 * 3) % 61);
            }
        })
    });

    let san = report.machine.take_sanitizer_report();
    let probe = report
        .machine
        .latency_probe()
        .expect("latency probe enabled");
    let col = probe.normalized_column(0);
    println!("Fig. 5: remote-SPM load latency toward core 0, normalized to the slowest core");
    println!(
        "(grid = {} cols x {} rows of cores; core 0 at the top-left)",
        opts.cols, opts.rows
    );
    print!(
        "{}",
        TrafficMatrix::render_grid(&col, report.machine.mesh().config())
    );
    // The paper's qualitative claims, checked quantitatively:
    let cols = opts.cols as usize;
    let rows = opts.rows as usize;
    let bottom_mean: f64 = col[(rows - 1) * cols..].iter().sum::<f64>() / cols as f64;
    let top_mean: f64 = col[1..cols].iter().sum::<f64>() / (cols - 1) as f64;
    println!("\nmean normalized latency: top row {top_mean:.2} vs bottom row {bottom_mean:.2}");
    assert!(
        bottom_mean > top_mean,
        "farther rows must see longer latency (Y-bandwidth scarcity)"
    );
    let mut golden = opts.golden_file("fig05_heatmap");
    golden.push(
        "hotspot-probe",
        "all-to-one",
        report.cycles,
        report.instructions(),
        bottom_mean > top_mean,
    );
    opts.finish_golden(&golden);

    let mut gate = SanitizeGate::new(opts.sanitize);
    gate.record(
        "hotspot-probe",
        "all-to-one",
        &SanCell::from_report(san.as_ref()),
    );
    gate.finish();
}
