//! Regenerate **Figure 6**: execution time of the six parallel kernels
//! in one PageRank iteration with and without read-only data
//! duplication.
//!
//! The magnitude of the benefit grows with the ratio of captured-state
//! reads to other memory traffic, i.e. with input size and core count;
//! at the default reduced scale the win is smaller than the paper's
//! 1.57x but the same kernels improve. Run with `--paper --scale full`
//! for the strongest effect this model produces.

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::pagerank::{GraphKind, PageRank};
use mosaic_workloads::{Benchmark, Scale};
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 16, 8);
    opts.cycle_only("fig06_rd_duplication");
    opts.no_workload_filter("fig06_rd_duplication");
    let n = match opts.scale {
        Scale::Tiny => 1024,
        Scale::Small => 8192,
        Scale::Full => 16384,
    };
    let pr = PageRank {
        n,
        kind: GraphKind::PowerLaw,
        iters: 1,
        seed: 0x96,
    };
    let kernels = ["K1", "K2", "K3", "K4", "K5", "K6"];
    let variants = [false, true];
    let mut table = Table::new(&["config", "K1", "K2", "K3", "K4", "K5", "K6", "total"]);
    let mut golden = opts.golden_file("fig06_rd_duplication");
    let mut totals = Vec::new();
    let mut gate = SanitizeGate::new(opts.sanitize);
    let count = variants.len();
    let jobs = opts.effective_jobs(count);
    let start = Instant::now();
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let cfg = RuntimeConfig {
                rd_duplication: variants[i],
                ..RuntimeConfig::work_stealing()
            };
            let out = pr.run(opts.machine(), cfg);
            out.assert_verified();
            let spans: Vec<u64> = (0..kernels.len())
                .map(|k| {
                    let from = format!("iter0:K{}", k + 1);
                    let to = if k == 5 {
                        "iter0:end".to_string()
                    } else {
                        format!("iter0:K{}", k + 2)
                    };
                    out.report.span(&from, &to)
                })
                .collect();
            let san = SanCell::from_report(out.report.sanitizer.as_ref());
            (out.report.cycles, out.report.instructions(), spans, san)
        },
        |i, (cycles, instructions, spans, san)| {
            let rd = variants[i];
            let label = if rd { "w/ RD" } else { "w/o RD" };
            gate.record(&format!("PageRank-pl({n})"), label, &san);
            let mut cells = vec![label.to_string()];
            cells.extend(spans.iter().map(|s| format!("{s}")));
            cells.push(format!("{cycles}"));
            totals.push(cycles);
            table.row(cells);
            golden.push(
                format!("PageRank-pl({n})"),
                label,
                cycles,
                instructions,
                true,
            );
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!(
        "Fig. 6: PageRank (email-like, n={n}) kernel times, {} cores",
        opts.cores()
    );
    println!("{table}");
    println!(
        "read-only duplication speedup: {:.2}x (paper: 1.57x at full scale)",
        totals[0] as f64 / totals[1] as f64
    );
    opts.finish_golden(&golden);
    gate.finish();
}
