//! Regenerate **Figure 6**: execution time of the six parallel kernels
//! in one PageRank iteration with and without read-only data
//! duplication.
//!
//! The magnitude of the benefit grows with the ratio of captured-state
//! reads to other memory traffic, i.e. with input size and core count;
//! at the default reduced scale the win is smaller than the paper's
//! 1.57x but the same kernels improve. Run with `--paper --scale full`
//! for the strongest effect this model produces.

use mosaic_bench::{Options, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::pagerank::{GraphKind, PageRank};
use mosaic_workloads::{Benchmark, Scale};

fn main() {
    let opts = Options::parse(Scale::Small, 16, 8);
    let n = match opts.scale {
        Scale::Tiny => 1024,
        Scale::Small => 8192,
        Scale::Full => 16384,
    };
    let pr = PageRank {
        n,
        kind: GraphKind::PowerLaw,
        iters: 1,
        seed: 0x96,
    };
    let kernels = ["K1", "K2", "K3", "K4", "K5", "K6"];
    let mut table = Table::new(&["config", "K1", "K2", "K3", "K4", "K5", "K6", "total"]);
    let mut totals = Vec::new();
    for rd in [false, true] {
        let cfg = RuntimeConfig {
            rd_duplication: rd,
            ..RuntimeConfig::work_stealing()
        };
        let out = pr.run(opts.machine(), cfg);
        out.assert_verified();
        let mut cells = vec![if rd {
            "w/ RD".to_string()
        } else {
            "w/o RD".to_string()
        }];
        for (i, _) in kernels.iter().enumerate() {
            let from = format!("iter0:K{}", i + 1);
            let to = if i == 5 {
                "iter0:end".to_string()
            } else {
                format!("iter0:K{}", i + 2)
            };
            cells.push(format!("{}", out.report.span(&from, &to)));
        }
        cells.push(format!("{}", out.report.cycles));
        totals.push(out.report.cycles);
        table.row(cells);
    }
    println!(
        "Fig. 6: PageRank (email-like, n={n}) kernel times, {} cores",
        opts.cores()
    );
    println!("{table}");
    println!(
        "read-only duplication speedup: {:.2}x (paper: 1.57x at full scale)",
        totals[0] as f64 / totals[1] as f64
    );
}
