//! Kill-and-recover chaos harness: proves the serve stack's crash
//! story end to end, with real processes and a real `abort()`.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin recovery_sweep
//! ```
//!
//! Three phases, all against the sibling `serve` binary:
//!
//! 1. **Golden** — a clean daemon runs the experiment set; payloads
//!    are collected as the fault-free reference.
//! 2. **Chaos** — a fresh daemon with `--chaos-host kill=AFTER_MS`
//!    (plus slowness so the kill lands mid-job) gets the same
//!    submissions, then aborts itself `SIGKILL`-style mid-sweep.
//! 3. **Recover** — the daemon restarts on the same cache and journal
//!    directories, replays the journal (asserted: `replayed_jobs` and
//!    `worker_deaths` nonzero), finishes the lost jobs, and every
//!    payload must be **byte-identical** to the golden reference.
//!
//! Any divergence, missing replay, or unexpected daemon survival is a
//! hard failure (exit 1) — this is the CI `crash-recovery` gate.

use mosaic_serve::{Client, JobSpec, JobState, RetryPolicy, SubmitReply};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The sweep: cheap tiny-scale experiments with distinct harnesses.
const EXPERIMENTS: &[&str] = &["fig07_fib_microbench", "chaos_sweep", "profile"];

fn fail(msg: &str) -> ! {
    eprintln!("recovery_sweep: FAIL: {msg}");
    std::process::exit(1);
}

struct Daemon {
    child: Child,
    addr: String,
}

/// Spawn the sibling `serve` binary on an ephemeral port and scrape
/// the bound address from its stdout.
fn spawn_serve(cache: &Path, journal: &Path, chaos: Option<&str>) -> Daemon {
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| fail("cannot locate the directory holding the serve binary"));
    let mut cmd = Command::new(exe_dir.join("serve"));
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--cache-dir")
        .arg(cache)
        .arg("--journal-dir")
        .arg(journal)
        .args(["--workers", "1"]);
    if let Some(spec) = chaos {
        cmd.args(["--chaos-host", spec]);
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd
        .spawn()
        .unwrap_or_else(|e| fail(&format!("launch serve: {e}")));
    let stdout = child.stdout.take().expect("serve stdout captured");
    let mut addr = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut addr)
        .unwrap_or_else(|e| fail(&format!("read serve address: {e}")));
    let addr = addr.trim().to_string();
    if addr.is_empty() {
        fail("serve exited before printing its address");
    }
    Daemon { child, addr }
}

fn connect(addr: &str) -> Client {
    // The daemon already printed its address, so it is up; the
    // deadline is pure paranoia against a wedged accept loop.
    Client::connect_with_deadline(
        addr,
        &RetryPolicy::with_attempts(20),
        Duration::from_secs(30),
    )
    .unwrap_or_else(|e| fail(&format!("connect to serve at {addr}: {e}")))
}

fn specs() -> Vec<JobSpec> {
    EXPERIMENTS
        .iter()
        .map(|e| JobSpec::new(e, "tiny"))
        .collect()
}

fn submit_all(client: &mut Client) -> Vec<String> {
    specs()
        .iter()
        .map(|spec| {
            match client
                .submit(spec)
                .unwrap_or_else(|e| fail(&format!("submit {}: {e}", spec.experiment)))
            {
                SubmitReply::Accepted { id, .. } => id,
                other => fail(&format!("submit {}: {other:?}", spec.experiment)),
            }
        })
        .collect()
}

fn collect_payloads(client: &mut Client, ids: &[String]) -> BTreeMap<String, String> {
    ids.iter()
        .map(|id| {
            let res = client
                .wait_result(id)
                .unwrap_or_else(|e| fail(&format!("wait {id}: {e}")));
            if res.state != JobState::Done {
                fail(&format!(
                    "job {id} ended {}: {}",
                    res.state.as_str(),
                    res.error.unwrap_or_default()
                ));
            }
            (id.clone(), res.payload.unwrap_or_default())
        })
        .collect()
}

fn metric(client: &mut Client, name: &str) -> u64 {
    let v = client
        .metrics()
        .unwrap_or_else(|e| fail(&format!("metrics: {e}")));
    let Ok(obj) = v.as_object("metrics") else {
        return 0;
    };
    obj.opt(name).and_then(|f| f.as_u64().ok()).unwrap_or(0)
}

fn drain(mut client: Client, mut daemon: Daemon) {
    client
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    let status = daemon
        .child
        .wait()
        .unwrap_or_else(|e| fail(&format!("wait for serve: {e}")));
    if !status.success() {
        fail(&format!("serve exited {status} on a clean drain"));
    }
}

fn main() {
    let mut kill_after_ms: u64 = 800;
    let mut slow_ms: u64 = 3000;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--kill-after-ms" => {
                kill_after_ms = value("--kill-after-ms")
                    .parse()
                    .expect("--kill-after-ms must be an integer");
            }
            "--slow-ms" => {
                slow_ms = value("--slow-ms")
                    .parse()
                    .expect("--slow-ms must be an integer");
            }
            "--help" | "-h" => {
                eprintln!(
                    "kill-and-recover chaos harness\n\
                     options: --kill-after-ms N   abort the daemon N ms after its first job starts (default 800)\n         \
                     --slow-ms N         per-job injected slowness so the kill lands mid-job (default 3000)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown option {other:?} (try --help)"),
        }
    }
    if slow_ms <= kill_after_ms {
        fail("--slow-ms must exceed --kill-after-ms or the kill may miss every running job");
    }

    let scratch = std::env::temp_dir().join(format!("mosaic-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let golden_cache = scratch.join("golden-cache");
    let golden_journal = scratch.join("golden-journal");
    let cache = scratch.join("cache");
    let journal = scratch.join("journal");

    // Phase 1: fault-free golden reference.
    eprintln!("recovery_sweep: phase 1: golden (fault-free) sweep");
    let daemon = spawn_serve(&golden_cache, &golden_journal, None);
    let mut client = connect(&daemon.addr);
    let ids = submit_all(&mut client);
    let golden = collect_payloads(&mut client, &ids);
    drain(client, daemon);

    // Phase 2: the same sweep, murdered mid-flight.
    eprintln!("recovery_sweep: phase 2: chaos sweep (kill={kill_after_ms}ms, slow={slow_ms}ms)");
    let chaos = format!("slow={slow_ms},kill={kill_after_ms}");
    let mut daemon = spawn_serve(&cache, &journal, Some(&chaos));
    let mut client = connect(&daemon.addr);
    let chaos_ids = submit_all(&mut client);
    if chaos_ids != ids {
        fail("job ids changed between phases — the spec digest is unstable");
    }
    let status = daemon
        .child
        .wait()
        .unwrap_or_else(|e| fail(&format!("wait for killed serve: {e}")));
    if status.success() {
        fail("the chaos daemon exited cleanly — the kill fault never fired");
    }
    eprintln!("recovery_sweep: daemon died as planned ({status})");

    // Phase 3: restart on the same directories and converge.
    eprintln!("recovery_sweep: phase 3: restart and recover");
    let daemon = spawn_serve(&cache, &journal, None);
    let mut client = connect(&daemon.addr);
    let replayed = metric(&mut client, "replayed_jobs");
    let deaths = metric(&mut client, "worker_deaths");
    if replayed == 0 {
        fail("restart replayed no jobs — the journal lost the sweep");
    }
    if deaths == 0 {
        fail("no worker death recorded — the kill missed every running job");
    }
    eprintln!("recovery_sweep: journal replayed {replayed} jobs ({deaths} caught mid-run)");
    // Resubmitting coalesces with the re-admitted jobs (or hits the
    // cache for anything that completed before the kill).
    let recovered_ids = submit_all(&mut client);
    let recovered = collect_payloads(&mut client, &recovered_ids);
    drain(client, daemon);

    let mut diverged = 0;
    for id in &ids {
        if golden[id] != recovered[id] {
            eprintln!("recovery_sweep: payload for {id} diverged from the fault-free run");
            diverged += 1;
        }
    }
    if diverged > 0 {
        fail(&format!("{diverged} payload(s) diverged after recovery"));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "recovery_sweep: ok: {} jobs byte-identical after kill-and-recover \
         ({replayed} replayed, {deaths} worker deaths)",
        ids.len()
    );
}
