//! Regenerate **Figure 10**: CilkSort and MatrixTranspose (the
//! spawn-and-sync workloads with no static baseline) across the four
//! work-stealing variants, normalized to both-stack-and-queue-in-SPM
//! as in the paper (note the paper's X axis starts at 0.5).

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::{cilksort, mattrans, Scale};
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    opts.cycle_only("fig10_dynamic");
    opts.no_workload_filter("fig10_dynamic");
    let ws_configs: Vec<(&str, RuntimeConfig)> = RuntimeConfig::table1_sweep()
        .into_iter()
        .filter(|(l, _)| l.starts_with("ws"))
        .collect();
    let mut benches = mattrans::instances(opts.scale);
    benches.extend(cilksort::instances(opts.scale));

    let mut header = vec!["workload"];
    header.extend(ws_configs.iter().map(|(l, _)| *l));
    let mut table = Table::new(&header);
    let mut golden = opts.golden_file("fig10_dynamic");

    let count = benches.len() * ws_configs.len();
    let jobs = opts.effective_jobs(count);
    let start = Instant::now();
    let mut row: Vec<(u64, u64)> = Vec::new();
    let mut gate = SanitizeGate::new(opts.sanitize);
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let b = &benches[i / ws_configs.len()];
            let (_, cfg) = &ws_configs[i % ws_configs.len()];
            let out = b.run(opts.machine(), cfg.clone());
            out.assert_verified();
            (
                out.report.cycles,
                out.report.instructions(),
                SanCell::from_report(out.report.sanitizer.as_ref()),
            )
        },
        |i, (cycles, instructions, san)| {
            let (label, _) = &ws_configs[i % ws_configs.len()];
            gate.record(&benches[i / ws_configs.len()].name(), label, &san);
            row.push((cycles, instructions));
            if row.len() == ws_configs.len() {
                let b = &benches[i / ws_configs.len()];
                let best = row[3].0; // ws/spm-stack/spm-q is last in sweep order
                let mut cells = vec![b.name()];
                for ((label, _), (cycles, instructions)) in ws_configs.iter().zip(row.drain(..)) {
                    cells.push(format!("{:.2}", best as f64 / cycles as f64));
                    golden.push(b.name(), *label, cycles, instructions, true);
                }
                table.row(cells);
            }
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!(
        "Fig. 10: speedup normalized to ws/spm-stack/spm-q, {} cores",
        opts.cores()
    );
    println!("{table}");
    opts.finish_golden(&golden);
    gate.finish();
}
