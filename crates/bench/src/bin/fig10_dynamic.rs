//! Regenerate **Figure 10**: CilkSort and MatrixTranspose (the
//! spawn-and-sync workloads with no static baseline) across the four
//! work-stealing variants, normalized to both-stack-and-queue-in-SPM
//! as in the paper (note the paper's X axis starts at 0.5).

use mosaic_bench::{Options, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::{cilksort, mattrans, Scale};

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    let ws_configs: Vec<(&str, RuntimeConfig)> = RuntimeConfig::table1_sweep()
        .into_iter()
        .filter(|(l, _)| l.starts_with("ws"))
        .collect();
    let mut benches = mattrans::instances(opts.scale);
    benches.extend(cilksort::instances(opts.scale));

    let mut header = vec!["workload"];
    header.extend(ws_configs.iter().map(|(l, _)| *l));
    let mut table = Table::new(&header);
    for b in &benches {
        let mut cycles = Vec::new();
        for (_, cfg) in &ws_configs {
            let out = b.run(opts.machine(), cfg.clone());
            out.assert_verified();
            cycles.push(out.report.cycles);
        }
        let best = cycles[3]; // ws/spm-stack/spm-q is last in sweep order
        let mut cells = vec![b.name()];
        for cy in &cycles {
            cells.push(format!("{:.2}", best as f64 / *cy as f64));
        }
        table.row(cells);
    }
    println!(
        "Fig. 10: speedup normalized to ws/spm-stack/spm-q, {} cores",
        opts.cores()
    );
    println!("{table}");
}
