//! Ablation: `parallel_for` grain size. Too fine pays task overhead;
//! too coarse recreates static imbalance (hub rows stuck in one leaf).

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_runtime::{Mosaic, RuntimeConfig};
use mosaic_workloads::gen::{graph, upload_csr, upload_f32};
use mosaic_workloads::spmv::MatrixKind;
use mosaic_workloads::Scale;
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    opts.cycle_only("ablation_grain");
    opts.no_workload_filter("ablation_grain");
    let m = MatrixKind::PowerLaw.generate(1024, 0x51);
    let n = m.n;
    let vals: Vec<f32> = (0..m.nnz())
        .map(|k| graph::value_of(0x51, k as u64))
        .collect();
    let x: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();

    let grains = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let count = grains.len();
    let jobs = opts.effective_jobs(count);
    let mut table = Table::new(&["grain", "cycles", "spawns", "steals"]);
    let mut golden = opts.golden_file("ablation_grain");
    let mut gate = SanitizeGate::new(opts.sanitize);
    let start = Instant::now();
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let grain = grains[i];
            let mut sys = Mosaic::new(opts.machine(), RuntimeConfig::work_stealing());
            let d = upload_csr(sys.machine_mut(), &m);
            let dv = upload_f32(sys.machine_mut(), &vals);
            let dx = upload_f32(sys.machine_mut(), &x);
            let dy = sys.machine_mut().dram_alloc_words(n as u64);
            let report = sys.run(move |ctx| {
                ctx.parallel_for(0, n, grain, 5, move |ctx, i| {
                    let s = ctx.load(d.row_ptr.offset_words(i as u64));
                    let e = ctx.load(d.row_ptr.offset_words(i as u64 + 1));
                    let mut acc = 0.0f32;
                    for k in s..e {
                        let c = ctx.load(d.col.offset_words(k as u64));
                        let v = ctx.loadf(dv.offset_words(k as u64));
                        let xv = ctx.loadf(dx.offset_words(c as u64));
                        acc += v * xv;
                        ctx.compute(3, 2);
                    }
                    ctx.storef(dy.offset_words(i as u64), acc);
                });
            });
            let t = report.totals();
            let san = SanCell::from_report(report.sanitizer.as_ref());
            (
                report.cycles,
                report.instructions(),
                t.spawns,
                t.steals,
                san,
            )
        },
        |i, (cycles, instructions, spawns, steals, san)| {
            let grain = grains[i];
            gate.record(&format!("SpMV-pl({n})"), &format!("grain-{grain}"), &san);
            table.row(vec![
                format!("{grain}"),
                format!("{cycles}"),
                format!("{spawns}"),
                format!("{steals}"),
            ]);
            golden.push(
                format!("SpMV-pl({n})"),
                format!("grain-{grain}"),
                cycles,
                instructions,
                true,
            );
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!(
        "Grain ablation: SpMV (email-like, n={n}) on {} cores",
        opts.cores()
    );
    println!("{table}");
    opts.finish_golden(&golden);
    gate.finish();
}
