//! Regenerate **Table 1**: dynamic instruction counts (DI, millions)
//! and simulated cycles (C, thousands) for every workload/input across
//! the six runtime configurations.
//!
//! Absolute magnitudes differ from the paper (scaled-down inputs on a
//! software model); the columns' *relative* structure is the result.

use mosaic_bench::{sweep, Options, SanitizeGate, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::Scale;

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    eprintln!(
        "Table 1 sweep: scale {:?}, {} cores ({}x{})",
        opts.scale,
        opts.cores(),
        opts.cols,
        opts.rows
    );
    let cells =
        mosaic_workloads::table1_benchmarks(opts.scale).len() * RuntimeConfig::table1_sweep().len();
    let rows = sweep::table1_sweep_filtered(
        opts.scale,
        &opts.machine(),
        opts.backend().as_ref(),
        opts.effective_jobs(cells),
        &opts.workload,
    );

    let configs: Vec<&str> = RuntimeConfig::table1_sweep()
        .iter()
        .map(|(l, _)| *l)
        .collect();
    let mut header = vec!["Cat", "Name"];
    let mut sub = Vec::new();
    for c in &configs {
        sub.push(format!("{c} DI(K)"));
        sub.push(format!("{c} C(K)"));
    }
    header.extend(sub.iter().map(|s| s.as_str()));
    let mut table = Table::new(&header);
    let mut all_verified = true;
    for row in &rows {
        let mut cells = vec![row.category.to_string(), row.name.clone()];
        for r in &row.results {
            match r {
                Some(r) => {
                    all_verified &= r.verified;
                    cells.push(format!("{}", r.instructions / 1000));
                    cells.push(format!("{}", r.cycles / 1000));
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        table.row(cells);
    }
    println!("{table}");
    println!(
        "verification: {}",
        if all_verified {
            "all runs match host references"
        } else {
            "SOME RUNS FAILED"
        }
    );
    assert!(all_verified);

    let mut golden = opts.golden_file("table1");
    golden.push_sweep(&rows);
    opts.finish_golden(&golden);

    let mut gate = SanitizeGate::new(opts.sanitize);
    gate.record_rows(&rows);
    gate.finish();
}
