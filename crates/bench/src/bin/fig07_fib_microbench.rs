//! Regenerate **Figure 7**: the Fib micro-benchmark across the four
//! work-stealing data-placement variants, for both the hardware
//! overflow co-design ("Fib") and the estimated 2-instruction software
//! scheme ("Fib-S"). Speedups are normalized to the naive
//! both-in-DRAM configuration, as in the paper.

use mosaic_bench::{Options, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::fib::Fib;
use mosaic_workloads::{Benchmark, Scale};

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    let n = match opts.scale {
        Scale::Tiny => 10,
        Scale::Small => 13,
        Scale::Full => 16,
    };
    let fib = Fib { n };
    let ws_configs: Vec<(&str, RuntimeConfig)> = RuntimeConfig::table1_sweep()
        .into_iter()
        .filter(|(l, _)| l.starts_with("ws"))
        .collect();

    let mut table = Table::new(&["variant", "config", "cycles", "speedup", "overflows"]);
    for (variant, penalty) in [("Fib", 0u64), ("Fib-S", 2)] {
        let mut machine = opts.machine();
        machine.sw_overflow_penalty = penalty;
        let mut baseline = None;
        for (label, cfg) in &ws_configs {
            let out = fib.run(machine.clone(), cfg.clone());
            out.assert_verified();
            let cycles = out.report.cycles;
            let base = *baseline.get_or_insert(cycles);
            table.row(vec![
                variant.into(),
                label.to_string(),
                format!("{cycles}"),
                format!("{:.2}x", base as f64 / cycles as f64),
                format!("{}", out.report.totals().stack_overflows),
            ]);
        }
    }
    println!(
        "Fig. 7: fib({n}) on {} cores; speedup normalized to ws/dram-stack/dram-q",
        opts.cores()
    );
    println!("{table}");
}
