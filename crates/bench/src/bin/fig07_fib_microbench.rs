//! Regenerate **Figure 7**: the Fib micro-benchmark across the four
//! work-stealing data-placement variants, for both the hardware
//! overflow co-design ("Fib") and the estimated 2-instruction software
//! scheme ("Fib-S"). Speedups are normalized to the naive
//! both-in-DRAM configuration, as in the paper.

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_runtime::RuntimeConfig;
use mosaic_workloads::fib::Fib;
use mosaic_workloads::{Benchmark, Scale};
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 8, 4);
    opts.cycle_only("fig07_fib_microbench");
    opts.no_workload_filter("fig07_fib_microbench");
    let n = match opts.scale {
        Scale::Tiny => 10,
        Scale::Small => 13,
        Scale::Full => 16,
    };
    let fib = Fib { n };
    let ws_configs: Vec<(&str, RuntimeConfig)> = RuntimeConfig::table1_sweep()
        .into_iter()
        .filter(|(l, _)| l.starts_with("ws"))
        .collect();
    let variants: [(&str, u64); 2] = [("Fib", 0), ("Fib-S", 2)];

    let mut table = Table::new(&["variant", "config", "cycles", "speedup", "overflows"]);
    let mut golden = opts.golden_file("fig07_fib_microbench");
    let count = variants.len() * ws_configs.len();
    let jobs = opts.effective_jobs(count);
    let start = Instant::now();
    let mut baseline = 0u64;
    let mut gate = SanitizeGate::new(opts.sanitize);
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let mut machine = opts.machine();
            machine.sw_overflow_penalty = variants[i / ws_configs.len()].1;
            let out = fib.run(machine, ws_configs[i % ws_configs.len()].1.clone());
            out.assert_verified();
            (
                out.report.cycles,
                out.report.instructions(),
                out.report.totals().stack_overflows,
                SanCell::from_report(out.report.sanitizer.as_ref()),
            )
        },
        |i, (cycles, instructions, overflows, san)| {
            let (variant, _) = variants[i / ws_configs.len()];
            let (label, _) = ws_configs[i % ws_configs.len()];
            gate.record(variant, label, &san);
            if i % ws_configs.len() == 0 {
                baseline = cycles;
            }
            table.row(vec![
                variant.into(),
                label.to_string(),
                format!("{cycles}"),
                format!("{:.2}x", baseline as f64 / cycles as f64),
                format!("{overflows}"),
            ]);
            golden.push(format!("{variant}({n})"), label, cycles, instructions, true);
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!(
        "Fig. 7: fib({n}) on {} cores; speedup normalized to ws/dram-stack/dram-q",
        opts.cores()
    );
    println!("{table}");
    opts.finish_golden(&golden);
    gate.finish();
}
