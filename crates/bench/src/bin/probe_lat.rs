//! Raw load-latency probe.
use mosaic_sim::{Engine, Machine, MachineConfig};

fn main() {
    for active in [1usize, 8, 32] {
        let mut machine = Machine::new(MachineConfig::small(8, 4));
        let data = machine.dram_alloc_words(4096);
        let out = machine.dram_alloc_words(128);
        let report = Engine::run(machine, move |core| {
            Box::new(move |api| {
                if core < active {
                    let t0 = api.now();
                    let mut x = core as u64;
                    for i in 0..1000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                        let idx = x % 4096;
                        api.load(data.offset_words(idx));
                    }
                    let dt = api.now() - t0;
                    api.store(out.offset_words(core as u64), (dt / 1000) as u32);
                }
            })
        });
        let lats: Vec<u32> = (0..active)
            .map(|c| report.machine.peek(out.offset_words(c as u64)))
            .collect();
        let (h, m, _) = report.machine.llc_stats();
        println!(
            "active={active:3} avg-load-latency per core: {:?}... llc hits={h} misses={m}",
            &lats[..active.min(8)]
        );
    }
}
