//! The simulation-as-a-service daemon.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin serve -- --addr 127.0.0.1:9118
//! ```
//!
//! Accepts newline-delimited JSON requests (`submit` / `status` /
//! `result` / `watch` / `cancel` / `metrics` / `shutdown`; see
//! `mosaic-serve`), executes experiments by running the sibling
//! harness binaries, and memoizes results in the content-addressed
//! cache under `results/cache/`. Worker-pool and per-child `--jobs`
//! budgets follow the sweep-pool rule: concurrent simulations times
//! host threads per simulation must not exceed the host's cores.
//!
//! Drains gracefully on a `shutdown` request: new submissions are
//! rejected, queued and running jobs complete, then the process exits.

use mosaic_bench::cli::CALIBRATION_PATH;
use mosaic_bench::service::BinExecutor;
use mosaic_chaos::HostFaultPlan;
use mosaic_model::CalibrationTable;
use mosaic_serve::{Executor, FaultyExecutor, SchedConfig, Server, ServerConfig};
use mosaic_sim::MachineConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut cfg = ServerConfig::default();
    let mut workers: Option<usize> = None;
    let mut child_jobs: Option<usize> = None;
    let mut host_threads: usize = 1;
    let mut chaos_host = HostFaultPlan::default();
    let mut calibration: Option<PathBuf> = None;
    let mut escalate_bound_ppm: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--queue-cap" => {
                cfg.sched.queue_cap = value("--queue-cap")
                    .parse()
                    .expect("--queue-cap must be an integer");
            }
            "--workers" => {
                workers = Some(
                    value("--workers")
                        .parse()
                        .expect("--workers must be an integer"),
                );
            }
            "--child-jobs" => {
                child_jobs = Some(
                    value("--child-jobs")
                        .parse()
                        .expect("--child-jobs must be an integer"),
                );
            }
            "--host-threads" => {
                host_threads = value("--host-threads")
                    .parse::<usize>()
                    .expect("--host-threads must be an integer")
                    .max(1);
            }
            "--timeout-secs" => {
                cfg.sched.job_timeout = Duration::from_secs(
                    value("--timeout-secs")
                        .parse()
                        .expect("--timeout-secs must be an integer"),
                );
            }
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--no-cache-dir" => cfg.cache_dir = None,
            "--journal-dir" => cfg.journal_dir = Some(PathBuf::from(value("--journal-dir"))),
            "--no-journal" => cfg.journal_dir = None,
            "--retries" => {
                let attempts: u32 = value("--retries")
                    .parse()
                    .expect("--retries must be an integer");
                cfg.sched.retry.max_attempts = attempts.max(1);
            }
            "--chaos-host" => {
                let spec = value("--chaos-host");
                chaos_host = HostFaultPlan::parse(&spec)
                    .unwrap_or_else(|e| panic!("bad --chaos-host spec {spec:?}: {e}"));
            }
            "--peers" => {
                cfg.peers = value("--peers")
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--calibration" => calibration = Some(PathBuf::from(value("--calibration"))),
            "--escalate-bound-ppm" => {
                escalate_bound_ppm = Some(
                    value("--escalate-bound-ppm")
                        .parse()
                        .expect("--escalate-bound-ppm must be an integer"),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "mosaic serve daemon\n\
                     options: --addr HOST:PORT      bind address (default 127.0.0.1:9118; port 0 = ephemeral)\n         \
                     --queue-cap N          admission-control queue depth cap (default 64)\n         \
                     --workers N            concurrent jobs (default: host cores / threads-per-sim)\n         \
                     --child-jobs N         --jobs handed to each experiment child (default: fill the budget)\n         \
                     --host-threads N       window-parallel engine threads per simulation (default 1;\n                                \
                     results byte-identical, budget shrinks workers to compensate)\n         \
                     --timeout-secs N       per-job wall-clock timeout (default 600)\n         \
                     --cache-dir PATH       on-disk result cache (default results/cache)\n         \
                     --no-cache-dir         memory-only cache\n         \
                     --journal-dir PATH     crash-safety job journal (default results/journal)\n         \
                     --no-journal           disable the journal (a kill loses queued/running jobs)\n         \
                     --retries N            attempts per job incl. the first (default 1 = no retry)\n         \
                     --chaos-host SPEC      inject host faults, e.g. panics=2,slow=100,kill=500,node_kill=2000\n                                \
                     (testing the isolation/retry/crash-recovery machinery;\n                                \
                     node_kill aborts the whole daemon N ms after boot;\n                                \
                     see mosaic-chaos)\n         \
                     --peers A:P,B:P        fleet peer daemons: steal queued jobs from them when\n                                \
                     idle and answer submissions from their caches\n         \
                     --calibration PATH     calibration table backing auto-fidelity submissions\n                                \
                     (default results/model/calibration.json when present;\n                                \
                     without a table, auto submissions are rejected)\n         \
                     --escalate-bound-ppm N widest calibrated error band still answered\n                                \
                     analytically (default: the table's own bound)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown option {other:?} (try --help)"),
        }
    }

    // Budget concurrent simulations the same way the sweep pool does:
    // each simulation of the default 8x4 experiment mesh occupies
    // cores + host_threads host threads, and workers × child_jobs of
    // them may run at once — so
    // workers × child_jobs × host_threads_per_run ≤ host cores holds
    // whatever the window-parallel setting.
    let mut budget_machine = MachineConfig::small(8, 4);
    budget_machine.host_threads = host_threads;
    let threads_per_sim = budget_machine.host_threads_per_run();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.unwrap_or_else(|| (host / threads_per_sim).max(1));
    let child_jobs = child_jobs.unwrap_or_else(|| (host / (workers * threads_per_sim)).max(1));
    cfg.sched = SchedConfig {
        workers,
        ..cfg.sched
    };

    // Load the calibration table backing `auto` fidelity: an explicit
    // --calibration PATH must parse; the default path is best-effort
    // (a daemon in a checkout that never ran `calibrate` still serves
    // cycle-accurate jobs — it just rejects `auto`).
    let table_path = calibration
        .clone()
        .or_else(|| Some(PathBuf::from(CALIBRATION_PATH)).filter(|p| p.exists()));
    if let Some(path) = &table_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read --calibration {}: {e}", path.display()));
        let table = CalibrationTable::parse(&text)
            .unwrap_or_else(|e| panic!("parse --calibration {}: {e}", path.display()));
        cfg.sched.escalate_bound_ppm = escalate_bound_ppm.unwrap_or(table.bound_ppm);
        eprintln!(
            "serve: calibration loaded from {} ({} families, escalation bound {}ppm)",
            path.display(),
            table.families.len(),
            cfg.sched.escalate_bound_ppm
        );
        cfg.sched.calibration = Some(Arc::new(table));
    } else {
        eprintln!("serve: no calibration table; auto-fidelity submissions will be rejected");
    }

    let mut executor =
        BinExecutor::beside_current_exe(child_jobs, host_threads).expect("locate harness binaries");
    // Analytic children must read the exact table the escalation
    // decisions came from, wherever the daemon was started — forward
    // it absolutized rather than letting each child re-resolve the
    // committed default against its own working directory.
    executor.calibration = table_path.map(|p| std::fs::canonicalize(&p).unwrap_or(p));
    eprintln!(
        "serve: {} workers x {} child jobs x {} engine threads ({} host threads/sim, {} host cores), queue cap {}, timeout {:?}, {} attempts/job",
        workers, child_jobs, host_threads, threads_per_sim, host, cfg.sched.queue_cap,
        cfg.sched.job_timeout, cfg.sched.retry.max_attempts
    );
    let executor: Arc<dyn Executor> = if chaos_host.is_empty() {
        Arc::new(executor)
    } else {
        eprintln!("serve: CHAOS host faults active ({})", chaos_host.to_spec());
        // The whole-node kill is anchored at boot, not at the first
        // job, so it belongs to the daemon, not the executor wrapper.
        chaos_host.arm_node_kill();
        Arc::new(
            FaultyExecutor::new(
                Arc::new(executor),
                chaos_host.panic_attempts,
                Duration::from_millis(chaos_host.slow_ms),
            )
            .kill_after(Duration::from_millis(chaos_host.kill_after_ms)),
        )
    };
    if !cfg.peers.is_empty() {
        eprintln!("serve: fleet peers: {}", cfg.peers.join(", "));
    }
    let server = Server::start(cfg, executor).expect("bind serve daemon");
    // Stdout carries exactly the bound address so scripts can scrape
    // the ephemeral port; everything else goes to stderr.
    println!("{}", server.local_addr());
    eprintln!("serve: listening on {}", server.local_addr());
    server.join();
    eprintln!("serve: drained, exiting");
}
