//! Ablation: ruche (express) links. The paper's OCN is a
//! mesh-with-ruching; this measures what the express links buy on the
//! Fig. 5-style hot-spot pattern and on an all-to-all pattern.

use mosaic_bench::{Options, Table};
use mosaic_sim::{Engine, Machine};
use mosaic_workloads::Scale;

fn main() {
    let opts = Options::parse(Scale::Small, 16, 8);
    let mut table = Table::new(&["ruche", "hotspot cycles", "all-to-all cycles"]);
    for ruche in [0u16, 2, 3, 4] {
        let mut cycles = Vec::new();
        for pattern in ["hotspot", "a2a"] {
            let mut mcfg = opts.machine();
            mcfg.ruche_x = ruche;
            let machine = Machine::new(mcfg);
            let map = machine.addr_map().clone();
            let cores = machine.core_count();
            let pattern_is_hotspot = pattern == "hotspot";
            let report = Engine::run(machine, move |core| {
                let map = map.clone();
                Box::new(move |api| {
                    if core == 0 && pattern_is_hotspot {
                        api.charge(1, 10_000);
                        return;
                    }
                    for i in 0..100u64 {
                        let target = if pattern_is_hotspot {
                            0
                        } else {
                            (core + i as usize * 7 + 1) % cores
                        };
                        let addr = map.spm_addr(target as u32, ((i * 4) % 1024) as u32 & !3);
                        api.load(addr);
                        api.charge(2, 2);
                    }
                })
            });
            cycles.push(report.cycles);
        }
        table.row(vec![
            format!("{ruche}"),
            format!("{}", cycles[0]),
            format!("{}", cycles[1]),
        ]);
    }
    println!("Ruche-factor ablation, {} cores", opts.cores());
    println!("{table}");
}
