//! Ablation: ruche (express) links. The paper's OCN is a
//! mesh-with-ruching; this measures what the express links buy on the
//! Fig. 5-style hot-spot pattern and on an all-to-all pattern.

use mosaic_bench::{sweep, Options, SanCell, SanitizeGate, Table};
use mosaic_sim::{Engine, Machine};
use mosaic_workloads::Scale;
use std::time::Instant;

fn main() {
    let opts = Options::parse(Scale::Small, 16, 8);
    opts.cycle_only("ablation_ruche");
    opts.no_workload_filter("ablation_ruche");
    let ruches = [0u16, 2, 3, 4];
    let patterns = ["hotspot", "a2a"];

    let count = ruches.len() * patterns.len();
    let jobs = opts.effective_jobs(count);
    let mut table = Table::new(&["ruche", "hotspot cycles", "all-to-all cycles"]);
    let mut golden = opts.golden_file("ablation_ruche");
    let mut gate = SanitizeGate::new(opts.sanitize);
    let start = Instant::now();
    let mut row: Vec<u64> = Vec::new();
    let cell_time = sweep::run_cells(
        count,
        jobs,
        |i| {
            let ruche = ruches[i / patterns.len()];
            let pattern_is_hotspot = patterns[i % patterns.len()] == "hotspot";
            let mut mcfg = opts.machine();
            mcfg.ruche_x = ruche;
            let machine = Machine::new(mcfg);
            let map = machine.addr_map().clone();
            let cores = machine.core_count();
            let mut report = Engine::run(machine, move |core| {
                let map = map.clone();
                Box::new(move |api| {
                    if core == 0 && pattern_is_hotspot {
                        api.charge(1, 10_000);
                        return;
                    }
                    for i in 0..100u64 {
                        let target = if pattern_is_hotspot {
                            0
                        } else {
                            (core + i as usize * 7 + 1) % cores
                        };
                        let addr = map.spm_addr(target as u32, ((i * 4) % 1024) as u32 & !3);
                        api.load(addr);
                        api.charge(2, 2);
                    }
                })
            });
            let san = SanCell::from_report(report.machine.take_sanitizer_report().as_ref());
            (report.cycles, report.instructions(), san)
        },
        |i, (cycles, instructions, san)| {
            let ruche = ruches[i / patterns.len()];
            let pattern = patterns[i % patterns.len()];
            gate.record(&format!("ruche-{ruche}"), pattern, &san);
            golden.push(
                format!("ruche-{ruche}"),
                pattern,
                cycles,
                instructions,
                true,
            );
            row.push(cycles);
            if row.len() == patterns.len() {
                table.row(vec![
                    format!("{ruche}"),
                    format!("{}", row[0]),
                    format!("{}", row[1]),
                ]);
                row.clear();
            }
        },
    );
    sweep::SweepTiming {
        cells: count,
        jobs,
        wall: start.elapsed(),
        cell_time,
    }
    .log();
    println!("Ruche-factor ablation, {} cores", opts.cores());
    println!("{table}");
    opts.finish_golden(&golden);
    gate.finish();
}
