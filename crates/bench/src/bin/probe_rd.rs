//! Read-only-duplication on/off probe (Fig. 6 mechanism).
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::pagerank::{GraphKind, PageRank};
use mosaic_workloads::Benchmark;

fn main() {
    let mcfg = MachineConfig::small(16, 8);
    let pr = PageRank {
        n: 8192,
        kind: GraphKind::PowerLaw,
        iters: 1,
        seed: 0x96,
    };
    for rd in [false, true] {
        let cfg = RuntimeConfig {
            rd_duplication: rd,
            ..RuntimeConfig::work_stealing()
        };
        let out = pr.run(mcfg.clone(), cfg);
        assert!(out.verified);
        print!("PR rd={rd:5} total={:>8}  ", out.report.cycles);
        for w in [
            "iter0:K1",
            "iter0:K2",
            "iter0:K3",
            "iter0:K4",
            "iter0:K5",
            "iter0:K6",
            "iter0:end",
        ]
        .windows(2)
        {
            print!("{}={:>7} ", &w[0][6..], out.report.span(w[0], w[1]));
        }
        println!();
    }
}
