//! Host-side aggregation of `mosaic-san` findings across a harness
//! run: every simulation executed under `--sanitize` records its
//! [`SanReport`] here, and [`SanitizeGate::finish`] turns any finding
//! into a nonzero exit after printing the per-cell diagnostics.

use crate::sweep::SweepRow;
use mosaic_san::SanReport;

/// Compact, `Send` summary of one run's sanitizer outcome, so cell
/// closures on the job pool can thread it through result tuples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanCell {
    /// Distinct findings (0 when clean or when the sanitizer was off).
    pub findings: u64,
    /// Memory operations the sanitizer checked.
    pub ops: u64,
    /// Rendered report, empty when clean.
    pub log: String,
}

impl SanCell {
    /// Summarize a run's report (`None` = sanitizer not attached).
    pub fn from_report(report: Option<&SanReport>) -> Self {
        match report {
            None => SanCell::default(),
            Some(r) => SanCell {
                findings: r.total_findings(),
                ops: r.ops,
                log: if r.is_clean() {
                    String::new()
                } else {
                    r.to_string()
                },
            },
        }
    }
}

/// Accumulates sanitizer outcomes across a harness's runs and enforces
/// the zero-findings contract at exit.
#[derive(Debug)]
pub struct SanitizeGate {
    enabled: bool,
    runs: u64,
    ops: u64,
    findings: u64,
    dirty: Vec<(String, String)>,
}

impl SanitizeGate {
    /// A gate; inert unless `enabled` (the `--sanitize` flag).
    pub fn new(enabled: bool) -> Self {
        SanitizeGate {
            enabled,
            runs: 0,
            ops: 0,
            findings: 0,
            dirty: Vec::new(),
        }
    }

    /// Whether `--sanitize` is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one run's outcome under a `workload/config` cell label.
    pub fn record(&mut self, workload: &str, config: &str, cell: &SanCell) {
        if !self.enabled {
            return;
        }
        self.runs += 1;
        self.ops += cell.ops;
        self.findings += cell.findings;
        if cell.findings > 0 {
            eprintln!("sanitizer[{workload} / {config}]:\n{}", cell.log);
            self.dirty.push((
                format!("{workload} / {config}"),
                format!("{} finding(s)", cell.findings),
            ));
        }
    }

    /// Record every populated cell of a Table-1-style sweep.
    pub fn record_rows(&mut self, rows: &[SweepRow]) {
        for row in rows {
            for r in row.results.iter().flatten() {
                let cell = r.sanitizer.clone();
                self.record(&row.name, r.config, &cell);
            }
        }
    }

    /// Print the summary; exit the process with status 1 on any
    /// finding. No-op when the gate is disabled.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        if self.findings == 0 {
            eprintln!(
                "sanitizer: clean across {} run(s) ({} memory ops checked)",
                self.runs, self.ops
            );
            return;
        }
        eprintln!(
            "sanitizer: {} finding(s) across {} of {} run(s):",
            self.findings,
            self.dirty.len(),
            self.runs
        );
        for (cell, count) in &self.dirty {
            eprintln!("  {cell}: {count}");
        }
        std::process::exit(1);
    }
}
