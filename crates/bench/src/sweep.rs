//! Shared sweep driver: run benchmark instances across the six
//! Table-1 runtime configurations (used by `table1` and `fig09`).

use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{Benchmark, Scale};

/// One (workload, config) measurement.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// Config label from [`RuntimeConfig::table1_sweep`].
    pub config: &'static str,
    /// Simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// Whether the run verified against the host reference.
    pub verified: bool,
}

/// One benchmark across all configurations.
#[derive(Debug)]
pub struct SweepRow {
    /// Benchmark display name.
    pub name: String,
    /// Table-1 category abbreviation.
    pub category: &'static str,
    /// Whether the static columns are meaningful for this workload.
    pub has_static_baseline: bool,
    /// Results in `RuntimeConfig::table1_sweep` order (static entries
    /// are `None` for spawn-and-sync workloads).
    pub results: Vec<Option<ConfigResult>>,
}

impl SweepRow {
    /// Cycles of the static/SPM-stack baseline, if present.
    pub fn static_baseline_cycles(&self) -> Option<u64> {
        self.results
            .iter()
            .flatten()
            .find(|r| r.config == "static/spm-stack")
            .map(|r| r.cycles)
    }

    /// Cycles of the given config.
    pub fn cycles_of(&self, config: &str) -> Option<u64> {
        self.results
            .iter()
            .flatten()
            .find(|r| r.config == config)
            .map(|r| r.cycles)
    }
}

/// Run every Table-1 benchmark at `scale` on `machine` across all six
/// configurations, calling `progress` after each run.
pub fn run_sweep(
    benches: &[Box<dyn Benchmark>],
    machine: &MachineConfig,
    mut progress: impl FnMut(&str, &str, &ConfigResult),
) -> Vec<SweepRow> {
    let configs = RuntimeConfig::table1_sweep();
    let mut rows = Vec::new();
    for b in benches {
        let mut results = Vec::new();
        for (label, cfg) in &configs {
            if label.starts_with("static") && !b.has_static_baseline() {
                results.push(None);
                continue;
            }
            let out = b.run(machine.clone(), cfg.clone());
            let r = ConfigResult {
                config: label,
                cycles: out.report.cycles,
                instructions: out.report.instructions(),
                verified: out.verified,
            };
            progress(&b.name(), label, &r);
            results.push(Some(r));
        }
        rows.push(SweepRow {
            name: b.name(),
            category: b.category().abbrev(),
            has_static_baseline: b.has_static_baseline(),
            results,
        });
    }
    rows
}

/// Convenience: the full Table-1 sweep at a scale.
pub fn table1_sweep(scale: Scale, machine: &MachineConfig) -> Vec<SweepRow> {
    let benches = mosaic_workloads::table1_benchmarks(scale);
    run_sweep(&benches, machine, |name, cfg, r| {
        eprintln!(
            "  {name:<18} {cfg:<22} {:>10} cycles  {:>10} instrs  {}",
            r.cycles,
            r.instructions,
            if r.verified { "ok" } else { "FAILED-VERIFY" }
        );
    })
}
