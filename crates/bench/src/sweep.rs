//! Shared sweep driver: run benchmark instances across the six
//! Table-1 runtime configurations (used by `table1` and `fig09`), on a
//! bounded pool of host threads.
//!
//! ## Parallel execution model
//!
//! Every `mosaic-sim` run is deterministic and fully self-contained (no
//! process-global state), so distinct (benchmark, config) cells can run
//! on different host threads without changing any simulated number. The
//! driver enumerates all cells up front, executes them on a bounded
//! pool ([`run_cells`]), and *collects results in deterministic cell
//! order* — progress callbacks fire in exactly the order the old serial
//! driver used, so all output (tables, golden JSON, progress lines) is
//! bit-identical for any `--jobs` value. The pool is bounded because
//! each simulation itself spawns one OS thread per simulated core (see
//! [`MachineConfig::host_threads_per_run`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mosaic_runtime::RuntimeConfig;
use mosaic_sim::{
    Backend, BackendJob, CycleBackend, CycleOutcome, FamilyKey, Fidelity, MachineConfig,
};
use mosaic_workloads::{Benchmark, Scale};

/// One (workload, config) measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigResult {
    /// Config label from [`RuntimeConfig::table1_sweep`].
    pub config: &'static str,
    /// Simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// Whether the run verified against the host reference.
    pub verified: bool,
    /// Sanitizer outcome (default/empty when `--sanitize` is off).
    pub sanitizer: crate::sanitize::SanCell,
}

/// One benchmark across all configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRow {
    /// Benchmark display name.
    pub name: String,
    /// Table-1 category abbreviation.
    pub category: &'static str,
    /// Whether the static columns are meaningful for this workload.
    pub has_static_baseline: bool,
    /// Results in `RuntimeConfig::table1_sweep` order (static entries
    /// are `None` for spawn-and-sync workloads).
    pub results: Vec<Option<ConfigResult>>,
}

impl SweepRow {
    /// Cycles of the static/SPM-stack baseline, if present.
    pub fn static_baseline_cycles(&self) -> Option<u64> {
        self.results
            .iter()
            .flatten()
            .find(|r| r.config == "static/spm-stack")
            .map(|r| r.cycles)
    }

    /// Cycles of the given config.
    pub fn cycles_of(&self, config: &str) -> Option<u64> {
        self.results
            .iter()
            .flatten()
            .find(|r| r.config == config)
            .map(|r| r.cycles)
    }
}

/// Host-side timing of one sweep, for the harness speedup line.
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Cells actually simulated (skipped static cells not counted).
    pub cells: usize,
    /// Host threads the pool used.
    pub jobs: usize,
    /// End-to-end wall-clock of the sweep.
    pub wall: Duration,
    /// Sum of per-cell host times (serial-equivalent work).
    pub cell_time: Duration,
}

impl SweepTiming {
    /// `cell_time / wall`: how many cells effectively ran at once.
    pub fn effective_parallelism(&self) -> f64 {
        if self.wall.is_zero() {
            return self.jobs as f64;
        }
        self.cell_time.as_secs_f64() / self.wall.as_secs_f64()
    }

    /// Log the timing line to stderr (stable, greppable format used by
    /// `BENCH_*.json` snapshots to track harness speedup).
    pub fn log(&self) {
        eprintln!(
            "harness: {} cells in {:.2}s wall ({:.2}s cell time, {:.2}x effective parallelism, jobs={})",
            self.cells,
            self.wall.as_secs_f64(),
            self.cell_time.as_secs_f64(),
            self.effective_parallelism(),
            self.jobs,
        );
    }
}

/// Run `count` independent jobs on at most `jobs` host threads and
/// deliver results **in index order** through `collect`.
///
/// `f(i)` must be a pure function of `i` (all Mosaic simulations are);
/// `collect(i, result)` is called from the current thread for
/// `i = 0, 1, .., count-1` exactly in that order, so any output it
/// produces is identical whatever `jobs` is. Returns the summed
/// per-job host time.
///
/// # Panics
///
/// Propagates a panic from any job.
pub fn run_cells<T, F>(
    count: usize,
    jobs: usize,
    f: F,
    mut collect: impl FnMut(usize, T),
) -> Duration
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut cell_time = Duration::ZERO;
    if count == 0 {
        return cell_time;
    }
    let jobs = jobs.clamp(1, count);
    if jobs == 1 {
        // Serial fast path: no pool, same order.
        for i in 0..count {
            let start = Instant::now();
            let r = f(i);
            cell_time += start.elapsed();
            collect(i, r);
        }
        return cell_time;
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T, Duration)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                let start = Instant::now();
                let r = f(i);
                // The receiver only disconnects if the main thread is
                // already panicking; nothing useful to do then.
                let _ = tx.send((i, r, start.elapsed()));
            });
        }
        drop(tx);

        // Reorder buffer: deliver strictly by index so downstream
        // output is byte-identical to the serial path.
        let mut pending: HashMap<usize, (T, Duration)> = HashMap::new();
        let mut want = 0;
        while want < count {
            if let Some((r, dt)) = pending.remove(&want) {
                cell_time += dt;
                collect(want, r);
                want += 1;
                continue;
            }
            match rx.recv() {
                Ok((i, r, dt)) => {
                    pending.insert(i, (r, dt));
                }
                Err(_) => panic!("sweep worker thread died (job panicked)"),
            }
        }
    });
    cell_time
}

/// Run every Table-1 benchmark at `scale` on `machine` across all six
/// configurations serially, calling `progress` after each run.
///
/// Kept as the compatibility entry point; use [`run_sweep_jobs`] to
/// parallelize across host threads.
pub fn run_sweep(
    benches: &[Box<dyn Benchmark>],
    machine: &MachineConfig,
    progress: impl FnMut(&str, &str, &ConfigResult),
) -> Vec<SweepRow> {
    run_sweep_jobs(benches, machine, 1, progress).0
}

/// Like [`run_sweep`], but executes the (benchmark, config) cells on up
/// to `jobs` host threads. Output is bit-identical for every `jobs`
/// value; `progress` still fires in deterministic cell order.
///
/// Always cycle-accurate ([`CycleBackend`] is a transparent
/// pass-through); use [`run_sweep_backend`] to route cells through a
/// different fidelity.
pub fn run_sweep_jobs(
    benches: &[Box<dyn Benchmark>],
    machine: &MachineConfig,
    jobs: usize,
    progress: impl FnMut(&str, &str, &ConfigResult),
) -> (Vec<SweepRow>, SweepTiming) {
    run_sweep_backend(benches, machine, &CycleBackend, "", jobs, progress)
}

/// One (benchmark, config) cell of the Table-1 sweep, presented to the
/// backend seam: its calibration family plus the cycle-accurate way to
/// run it.
struct SweepCell<'a> {
    bench: &'a dyn Benchmark,
    label: &'static str,
    runtime: &'a RuntimeConfig,
    scale: &'a str,
}

impl BackendJob for SweepCell<'_> {
    fn family(&self) -> FamilyKey {
        FamilyKey {
            workload: self.bench.name(),
            config: self.label.to_string(),
            scale: self.scale.to_string(),
        }
    }

    fn execute(&self, machine: &MachineConfig) -> CycleOutcome {
        let out = self.bench.run(machine.clone(), self.runtime.clone());
        CycleOutcome {
            cycles: out.report.cycles,
            instructions: out.report.instructions(),
            verified: out.verified,
            sanitizer: out.report.sanitizer,
        }
    }
}

/// The general sweep driver: every cell is answered by `backend` —
/// the cycle engine, the calibrated analytic model, or per-family auto
/// escalation. `scale` names the calibration families cells belong to
/// (ignored by [`CycleBackend`]).
///
/// # Panics
///
/// Panics when the backend refuses a cell (e.g. `--fidelity analytic`
/// for a family the calibration table does not cover).
pub fn run_sweep_backend(
    benches: &[Box<dyn Benchmark>],
    machine: &MachineConfig,
    backend: &dyn Backend,
    scale: &str,
    jobs: usize,
    mut progress: impl FnMut(&str, &str, &ConfigResult),
) -> (Vec<SweepRow>, SweepTiming) {
    let configs = RuntimeConfig::table1_sweep();

    // Enumerate runnable cells up front; static configs without a
    // baseline stay `None` without occupying a job slot.
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for (bi, b) in benches.iter().enumerate() {
        for (ci, (label, _)) in configs.iter().enumerate() {
            if label.starts_with("static") && !b.has_static_baseline() {
                continue;
            }
            cells.push((bi, ci));
        }
    }

    let mut rows: Vec<SweepRow> = benches
        .iter()
        .map(|b| SweepRow {
            name: b.name(),
            category: b.category().abbrev(),
            has_static_baseline: b.has_static_baseline(),
            results: vec![None; configs.len()],
        })
        .collect();

    let jobs = jobs.max(1);
    let start = Instant::now();
    let cell_time = run_cells(
        cells.len(),
        jobs,
        |i| {
            let (bi, ci) = cells[i];
            let (label, cfg) = &configs[ci];
            let cell = SweepCell {
                bench: benches[bi].as_ref(),
                label,
                runtime: cfg,
                scale,
            };
            let rep = backend
                .run_cell(machine, &cell)
                .unwrap_or_else(|e| panic!("{}: {e}", cell.family()));
            ConfigResult {
                config: label,
                cycles: rep.cycles,
                instructions: rep.instructions,
                verified: rep.verified,
                sanitizer: crate::sanitize::SanCell::from_report(rep.sanitizer.as_ref()),
            }
        },
        |i, r| {
            let (bi, ci) = cells[i];
            progress(&rows[bi].name, r.config, &r);
            rows[bi].results[ci] = Some(r);
        },
    );
    let timing = SweepTiming {
        cells: cells.len(),
        jobs,
        wall: start.elapsed(),
        cell_time,
    };
    (rows, timing)
}

/// Convenience: the full Table-1 sweep at a scale on `jobs` host
/// threads, answered by `backend`, with the standard progress line and
/// the harness timing line on stderr.
pub fn table1_sweep_backend(
    scale: Scale,
    machine: &MachineConfig,
    backend: &dyn Backend,
    jobs: usize,
) -> Vec<SweepRow> {
    table1_sweep_filtered(scale, machine, backend, jobs, "")
}

/// Like [`table1_sweep_backend`] but restricted to one workload by
/// exact name (`""` = the full table). This is the `--workload` seam
/// the fleet gateway fans sweeps out through: each subjob runs one
/// workload's row, and because [`GoldenFile::push_sweep`] lays cells
/// out workload-major, concatenating the per-workload parts in table
/// order reproduces the unfiltered sweep byte for byte.
///
/// [`GoldenFile::push_sweep`]: crate::golden::GoldenFile::push_sweep
///
/// # Panics
///
/// Panics when `workload` names no benchmark at this scale — a typo
/// must not silently produce an empty (yet "passing") sweep.
pub fn table1_sweep_filtered(
    scale: Scale,
    machine: &MachineConfig,
    backend: &dyn Backend,
    jobs: usize,
    workload: &str,
) -> Vec<SweepRow> {
    let mut benches = mosaic_workloads::table1_benchmarks(scale);
    if !workload.is_empty() {
        let known: Vec<String> = benches.iter().map(|b| b.name()).collect();
        benches.retain(|b| b.name() == workload);
        assert!(
            !benches.is_empty(),
            "--workload {workload:?} names no Table-1 benchmark (have: {})",
            known.join(", ")
        );
    }
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    let (rows, timing) = run_sweep_backend(
        &benches,
        machine,
        backend,
        scale_name,
        jobs,
        |name, cfg, r| {
            eprintln!(
                "  {name:<18} {cfg:<22} {:>10} cycles  {:>10} instrs  {}",
                r.cycles,
                r.instructions,
                if r.verified { "ok" } else { "FAILED-VERIFY" }
            );
        },
    );
    if backend.fidelity() != Fidelity::Cycle {
        eprintln!(
            "fidelity: {} backend answered the sweep",
            backend.fidelity()
        );
    }
    timing.log();
    rows
}

/// Convenience: the full Table-1 sweep at a scale on `jobs` host
/// threads, cycle-accurately.
pub fn table1_sweep_jobs(scale: Scale, machine: &MachineConfig, jobs: usize) -> Vec<SweepRow> {
    table1_sweep_backend(scale, machine, &CycleBackend, jobs)
}

/// Convenience: the full Table-1 sweep at a scale, serially.
pub fn table1_sweep(scale: Scale, machine: &MachineConfig) -> Vec<SweepRow> {
    table1_sweep_jobs(scale, machine, 1)
}
