//! Plain-text table rendering for harness output.

/// A simple right-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = width[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = width[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "val"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("23456"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
