//! Chaos workloads: tiny runs whose outputs live in simulated memory.
//!
//! The `chaos_sweep` harness and the fault-injection tests need
//! workloads with two properties the regular benchmark catalog does
//! not guarantee together: they finish in well under a second at tiny
//! scale (a divergence check runs everything twice), and their entire
//! result lives at *known DRAM word offsets* — user allocations happen
//! before the runtime lays itself out, so the output words sit at the
//! very bottom of DRAM where a `flip=dram:WORD:BIT@end` plan can
//! target them and a [`RunDigest`] can summarize them.
//!
//! Two workloads cover the two scheduling shapes: `fib` (deeply
//! recursive `parallel_invoke`, output = one word at DRAM word 0) and
//! `scan` (a flat `parallel_for` map over `len` words, output = words
//! `len..2*len`).

use mosaic_chaos::{payload_digest, RunDigest, SplitMix64};
use mosaic_runtime::{Mosaic, RuntimeConfig, TaskCtx};
use mosaic_sim::{MachineConfig, SimError};
use mosaic_workloads::Scale;

/// The chaos workload names, in canonical order.
pub const WORKLOADS: &[&str] = &["fib", "scan"];

/// One chaos workload run: the divergence-checkable digest plus the
/// extra counters the golden file wants.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Payload digest, cycle count, and verification flag.
    pub digest: RunDigest,
    /// Dynamic instruction count (0 when the run crashed).
    pub instructions: u64,
    /// The simulation error, if the run did not terminate cleanly
    /// (possible under bit-flip plans that corrupt runtime state).
    pub error: Option<String>,
}

impl ChaosRun {
    /// A run that died with `err`: unverified, zero digest — always
    /// reported as a divergence against a clean run.
    fn crashed(err: SimError) -> ChaosRun {
        ChaosRun {
            digest: RunDigest {
                payload: 0,
                cycles: 0,
                verified: false,
            },
            instructions: 0,
            error: Some(err.to_string()),
        }
    }
}

/// Workload parameters at `scale`: (fib argument, scan length).
pub fn params(scale: Scale) -> (u32, u64) {
    match scale {
        Scale::Tiny => (10, 64),
        Scale::Small => (12, 512),
        Scale::Full => (14, 4096),
    }
}

/// Run workload `name` (one of [`WORKLOADS`]) on `machine` at `scale`.
///
/// # Panics
///
/// Panics on an unknown workload name.
pub fn run(name: &str, machine: MachineConfig, scale: Scale) -> ChaosRun {
    let (fib_n, scan_len) = params(scale);
    match name {
        "fib" => run_fib(machine, fib_n),
        "scan" => run_scan(machine, scan_len),
        other => panic!(
            "unknown chaos workload {other:?} (known: {})",
            WORKLOADS.join(", ")
        ),
    }
}

fn fib_task(ctx: &mut TaskCtx<'_>, n: u32) -> u32 {
    if n < 2 {
        ctx.compute(1, 1);
        return n;
    }
    let (x, y) = ctx.parallel_invoke(
        move |ctx| fib_task(ctx, n - 1),
        move |ctx| fib_task(ctx, n - 2),
    );
    ctx.compute(1, 1);
    x + y
}

/// `fib(n)` by parallel recursion; the result is stored to DRAM word 0.
pub fn run_fib(machine: MachineConfig, n: u32) -> ChaosRun {
    let mut sys = Mosaic::new(machine, RuntimeConfig::work_stealing());
    let out = sys.machine_mut().dram_alloc_words(1);
    let report = match sys.try_run(move |ctx| {
        let f = fib_task(ctx, n);
        ctx.store(out, f);
    }) {
        Ok(r) => r,
        Err(e) => return ChaosRun::crashed(e),
    };
    let word = report.machine.peek(out);
    ChaosRun {
        digest: RunDigest {
            payload: payload_digest(&[word]),
            cycles: report.cycles,
            verified: word == mosaic_workloads::fib::reference(n),
        },
        instructions: report.instructions(),
        error: None,
    }
}

/// A flat `parallel_for` map: `out[i] = in[i] * 3 + 1` over `len`
/// seeded words. Input occupies DRAM words `0..len`, output
/// `len..2*len`.
pub fn run_scan(machine: MachineConfig, len: u64) -> ChaosRun {
    let mut rng = SplitMix64::new(0x00C0_FFEE);
    let input: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();
    let expect: Vec<u32> = input
        .iter()
        .map(|&v| v.wrapping_mul(3).wrapping_add(1))
        .collect();

    let mut sys = Mosaic::new(machine, RuntimeConfig::work_stealing());
    let inp = sys.machine_mut().dram_alloc_init(&input);
    let out = sys.machine_mut().dram_alloc_words(len);
    let hi = len as u32;
    let report = match sys.try_run(move |ctx| {
        ctx.parallel_for(0, hi, 8, 0, move |ctx, i| {
            let v = ctx.load(inp.offset_words(i as u64));
            ctx.compute(2, 2);
            ctx.store(
                out.offset_words(i as u64),
                v.wrapping_mul(3).wrapping_add(1),
            );
        });
    }) {
        Ok(r) => r,
        Err(e) => return ChaosRun::crashed(e),
    };
    let words = report.machine.peek_slice(out, len as usize);
    ChaosRun {
        digest: RunDigest {
            payload: payload_digest(&words),
            cycles: report.cycles,
            verified: words == expect,
        },
        instructions: report.instructions(),
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_workloads_verify_fault_free() {
        for wl in WORKLOADS {
            let r = run(wl, MachineConfig::small(4, 2), Scale::Tiny);
            assert!(r.digest.verified, "{wl} failed verification");
            assert!(r.error.is_none());
            assert!(r.digest.cycles > 0 && r.instructions > 0);
        }
    }

    #[test]
    fn digests_are_reproducible() {
        let a = run_scan(MachineConfig::small(4, 2), 64);
        let b = run_scan(MachineConfig::small(4, 2), 64);
        assert_eq!(a.digest.payload, b.digest.payload);
        assert_eq!(a.digest.cycles, b.digest.cycles);
    }
}
