//! Minimal argument parsing shared by the harness binaries (no
//! external CLI dependency needed for `--scale/--cols/--rows/--jobs`
//! and the golden-number modes).

use crate::golden::{self, GoldenFile};
use mosaic_chaos::FaultPlan;
use mosaic_model::CalibrationTable;
use mosaic_sim::{AnalyticBackend, AutoBackend, Backend, CycleBackend, Fidelity, MachineConfig};
use mosaic_workloads::Scale;

/// Where the committed calibration artifact lives (written by the
/// `calibrate` harness, consumed by `--fidelity analytic|auto` and the
/// serve daemon).
pub const CALIBRATION_PATH: &str = "results/model/calibration.json";

/// What to do with golden (committed reference) numbers this run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GoldenMode {
    /// Just run; don't read or write goldens.
    #[default]
    Run,
    /// After running, diff against the committed golden file and exit
    /// nonzero on any difference (`--check-golden`).
    Check,
    /// After running, (re)write the golden file — "blessing" the
    /// current numbers (`--write-golden`).
    Write,
}

/// Common harness options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Input scale preset.
    pub scale: Scale,
    /// Mesh columns.
    pub cols: u16,
    /// Mesh core rows.
    pub rows: u16,
    /// Host threads for independent simulation cells (`--jobs`);
    /// `None` = pick a default from the host/machine core counts.
    pub jobs: Option<usize>,
    /// Host threads *within* each simulation (`--host-threads`):
    /// `MachineConfig::host_threads` for the window-parallel engine.
    /// Purely a host performance knob — results are byte-identical for
    /// every value (CI diffs goldens and profiles across 1/2/4).
    pub host_threads: usize,
    /// Golden-number mode.
    pub golden: GoldenMode,
    /// Directory for golden files (`--golden-dir`); `None` = the
    /// committed `results/golden/`. The serve executor points this at
    /// a per-job scratch directory to collect results as structured
    /// JSON instead of scraping stdout.
    pub golden_dir: Option<std::path::PathBuf>,
    /// Attach the `mosaic-san` memory-model sanitizer to every run and
    /// exit nonzero on any finding (`--sanitize`). Zero simulated-cycle
    /// cost: reported numbers are identical either way.
    pub sanitize: bool,
    /// Deterministic fault-injection plan (`--faults SPEC`, see
    /// `mosaic_chaos::FaultPlan::parse`); `None` = no injected faults
    /// (zero cost). Timing-only plans change cycle counts but never
    /// results; plans with bit flips corrupt results on purpose —
    /// expect verification failures and golden drift.
    pub faults: Option<FaultPlan>,
    /// Attach the `mosaic-prof` cycle-attribution profiler to every run
    /// (`--profile`). Like the sanitizer, zero simulated-cycle cost:
    /// cycles and instructions are identical either way.
    pub profile: bool,
    /// Directory to write per-run profile JSON into (`--prof-out DIR`);
    /// implies `--profile`. `None` = don't write profile files.
    pub prof_out: Option<std::path::PathBuf>,
    /// Which backend answers runs (`--fidelity cycle|analytic|auto`):
    /// the cycle-accurate engine (default), the calibrated analytic
    /// model, or per-family escalation. Only the sweep experiments
    /// (`table1`, `fig09_speedup`) support non-cycle fidelities; the
    /// rest call [`Options::cycle_only`] and refuse.
    pub fidelity: Fidelity,
    /// Calibration table for the analytic backend
    /// (`--calibration PATH`); `None` = the committed
    /// [`CALIBRATION_PATH`].
    pub calibration: Option<std::path::PathBuf>,
    /// Checkpoint cadence in simulated cycles (`--checkpoint-every N`);
    /// 0 = no checkpoints. Purely a durability knob: results are
    /// byte-identical at every cadence.
    pub checkpoint_every: u64,
    /// Directory for checkpoint images (`--checkpoint-dir PATH`);
    /// `None` = `results/checkpoints/`.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume-verify against a checkpoint image (`--resume-from PATH`):
    /// the run re-executes deterministically from cycle 0 and
    /// hard-fails unless its state at the checkpoint's event boundary
    /// is byte-identical to the image. Applies to *every* cell a
    /// harness runs, so use it with single-run harnesses (trace_run)
    /// or a sweep filtered down to the cell that wrote the image —
    /// other cells correctly fail the verification.
    pub resume_from: Option<std::path::PathBuf>,
    /// Restrict a sweep to one workload by exact name (`--workload
    /// NAME`); empty = run the full table. Only the sweep experiments
    /// (`table1`, `fig09_speedup`) honor it — the fleet gateway uses it
    /// to fan a sweep out into per-workload subjobs whose concatenation
    /// is byte-identical to the unfiltered run. Single-workload
    /// harnesses refuse the flag via [`Options::no_workload_filter`].
    pub workload: String,
}

impl Options {
    /// Parse from `std::env::args`, with the given defaults.
    ///
    /// Recognized flags: `--scale tiny|small|full`, `--cols N`,
    /// `--rows N`, `--paper` (16x8 like the paper), `--jobs N`,
    /// `--check-golden`, `--write-golden`, `--help`.
    ///
    /// # Panics
    ///
    /// Panics (with usage output) on malformed arguments.
    pub fn parse(default_scale: Scale, default_cols: u16, default_rows: u16) -> Options {
        let mut opts = Options {
            scale: default_scale,
            cols: default_cols,
            rows: default_rows,
            jobs: None,
            host_threads: 1,
            golden: GoldenMode::Run,
            golden_dir: None,
            sanitize: false,
            faults: None,
            profile: false,
            prof_out: None,
            fidelity: Fidelity::Cycle,
            calibration: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume_from: None,
            workload: String::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = match v.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "full" => Scale::Full,
                        other => panic!("unknown scale {other:?} (tiny|small|full)"),
                    };
                }
                "--cols" => {
                    opts.cols = args
                        .next()
                        .expect("--cols needs a value")
                        .parse()
                        .expect("--cols must be an integer");
                }
                "--rows" => {
                    opts.rows = args
                        .next()
                        .expect("--rows needs a value")
                        .parse()
                        .expect("--rows must be an integer");
                }
                "--paper" => {
                    opts.cols = 16;
                    opts.rows = 8;
                }
                "--jobs" => {
                    let n: usize = args
                        .next()
                        .expect("--jobs needs a value")
                        .parse()
                        .expect("--jobs must be an integer");
                    opts.jobs = Some(n.max(1));
                }
                "--host-threads" => {
                    let n: usize = args
                        .next()
                        .expect("--host-threads needs a value")
                        .parse()
                        .expect("--host-threads must be an integer");
                    opts.host_threads = n.max(1);
                }
                "--check-golden" => opts.golden = GoldenMode::Check,
                "--write-golden" => opts.golden = GoldenMode::Write,
                "--golden-dir" => {
                    opts.golden_dir = Some(args.next().expect("--golden-dir needs a value").into());
                }
                "--sanitize" => opts.sanitize = true,
                "--profile" => opts.profile = true,
                "--prof-out" => {
                    opts.profile = true;
                    opts.prof_out = Some(args.next().expect("--prof-out needs a DIR value").into());
                }
                "--fidelity" => {
                    let v = args.next().expect("--fidelity needs a value");
                    opts.fidelity =
                        Fidelity::parse(&v).unwrap_or_else(|e| panic!("bad --fidelity: {e}"));
                }
                "--calibration" => {
                    opts.calibration = Some(
                        args.next()
                            .expect("--calibration needs a PATH value")
                            .into(),
                    );
                }
                "--checkpoint-every" => {
                    opts.checkpoint_every = args
                        .next()
                        .expect("--checkpoint-every needs a value")
                        .parse()
                        .expect("--checkpoint-every must be an integer (cycles)");
                }
                "--checkpoint-dir" => {
                    opts.checkpoint_dir = Some(
                        args.next()
                            .expect("--checkpoint-dir needs a PATH value")
                            .into(),
                    );
                }
                "--resume-from" => {
                    opts.resume_from = Some(
                        args.next()
                            .expect("--resume-from needs a PATH value")
                            .into(),
                    );
                }
                "--workload" => {
                    opts.workload = args.next().expect("--workload needs a NAME value");
                }
                "--faults" => {
                    let spec = args.next().expect("--faults needs a SPEC value");
                    let plan = FaultPlan::parse(&spec)
                        .unwrap_or_else(|e| panic!("bad --faults spec {spec:?}: {e}"));
                    opts.faults = (!plan.is_empty()).then_some(plan);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale tiny|small|full   input sizes\n         \
                         --cols N --rows N          mesh dimensions\n         \
                         --paper                    16x8 = 128 cores (paper machine)\n         \
                         --jobs N                   host threads for independent cells\n         \
                         --host-threads N           host threads per simulation (window-parallel\n                                    \
                         engine; results byte-identical for every N)\n         \
                         --check-golden             verify against results/golden/ (exit 1 on drift)\n         \
                         --write-golden             re-bless results/golden/ with this run\n         \
                         --golden-dir PATH          read/write goldens under PATH instead\n         \
                         --sanitize                 run the memory-model sanitizer (exit 1 on findings)\n         \
                         --profile                  attach the cycle-attribution profiler (zero simulated cost)\n         \
                         --prof-out DIR             write per-run profile JSON under DIR (implies --profile)\n         \
                         --fidelity cycle|analytic|auto\n                                    \
                         backend: cycle-accurate engine (default), calibrated\n                                    \
                         analytic model, or per-family escalation\n         \
                         --calibration PATH         calibration table for analytic/auto\n                                    \
                         (default results/model/calibration.json)\n         \
                         --checkpoint-every N       write a machine checkpoint every N simulated cycles\n                                    \
                         (0 = never; results byte-identical either way)\n         \
                         --checkpoint-dir PATH      checkpoint directory (default results/checkpoints)\n         \
                         --resume-from PATH         verify this run against a checkpoint image\n                                    \
                         (applies to every cell; hard-fails on divergence at its boundary)\n         \
                         --workload NAME            restrict a sweep to one workload (table1/fig09_speedup\n                                    \
                         only; the fleet gateway fans sweeps out with it)\n         \
                         --faults SPEC              inject deterministic faults (e.g. seed=7,horizon=100000,links=4x300;\n                                    \
                         timing-only plans shift cycles, flip=... corrupts data on purpose)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option {other:?} (try --help)"),
            }
        }
        opts
    }

    /// The machine these options describe.
    pub fn machine(&self) -> MachineConfig {
        let mut m = MachineConfig::small(self.cols, self.rows);
        m.sanitize = self.sanitize;
        m.faults = self.faults.clone();
        m.profile = self.profile;
        m.host_threads = self.host_threads.max(1);
        m.fidelity = self.fidelity;
        m.checkpoint_every = self.checkpoint_every;
        m.checkpoint_dir = self.checkpoint_dir.clone();
        m.resume_from = self.resume_from.clone();
        m
    }

    /// Refuse non-cycle fidelities for experiments the analytic model
    /// is not calibrated for (everything outside the Table-1 sweep).
    ///
    /// # Panics
    ///
    /// Panics when `--fidelity analytic|auto` was given.
    pub fn cycle_only(&self, experiment: &str) {
        assert!(
            self.fidelity.is_cycle(),
            "{experiment} is cycle-accurate only: --fidelity {} is not supported \
             (the analytic model covers the sweep experiments table1/fig09_speedup)",
            self.fidelity
        );
    }

    /// Refuse `--workload` for experiments that are not multi-workload
    /// sweeps: a silently ignored filter would let a fleet gateway
    /// believe it split a job it actually ran whole.
    ///
    /// # Panics
    ///
    /// Panics when `--workload` was given.
    pub fn no_workload_filter(&self, experiment: &str) {
        assert!(
            self.workload.is_empty(),
            "{experiment} does not support --workload (only the sweep \
             experiments table1/fig09_speedup do)"
        );
    }

    /// Load the calibration table for analytic/auto fidelities from
    /// `--calibration` (default [`CALIBRATION_PATH`]).
    pub fn calibration_table(&self) -> Result<CalibrationTable, String> {
        let path = self
            .calibration
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from(CALIBRATION_PATH));
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "cannot read calibration table {}: {e} (run the calibrate harness \
                 with --write-golden first, or use --fidelity cycle)",
                path.display()
            )
        })?;
        CalibrationTable::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The backend answering this run's cells, per `--fidelity`. Auto
    /// escalates per family past the calibration table's own
    /// acceptance bound.
    ///
    /// # Panics
    ///
    /// Panics when analytic/auto fidelity was requested but the
    /// calibration table is missing or unreadable.
    pub fn backend(&self) -> Box<dyn Backend> {
        match self.fidelity {
            Fidelity::Cycle => Box::new(CycleBackend),
            Fidelity::Analytic | Fidelity::Auto => {
                let table = self
                    .calibration_table()
                    .unwrap_or_else(|e| panic!("--fidelity {}: {e}", self.fidelity));
                let bound = table.bound_ppm;
                match self.fidelity {
                    Fidelity::Analytic => Box::new(AnalyticBackend::new(table)),
                    _ => Box::new(AutoBackend::new(table, bound)),
                }
            }
        }
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// The scale's lowercase name (golden file names, headers).
    pub fn scale_name(&self) -> &'static str {
        match self.scale {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }

    /// Host threads to use for a sweep of `cells` independent cells:
    /// `--jobs` if given, else `min(host_cores / threads_per_run,
    /// cells)` with a floor of 1 — each simulation already spawns one
    /// OS thread per simulated core, so the pool stays bounded by the
    /// host, not oversubscribed by it.
    pub fn effective_jobs(&self, cells: usize) -> usize {
        let cells = cells.max(1);
        match self.jobs {
            Some(n) => n.max(1),
            None => {
                let host = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                (host / self.machine().host_threads_per_run()).clamp(1, cells)
            }
        }
    }

    /// An empty golden file tagged with this run's experiment name,
    /// scale, and machine shape.
    pub fn golden_file(&self, experiment: &str) -> GoldenFile {
        GoldenFile::new(experiment, self.scale_name(), self.cols, self.rows)
    }

    /// Apply the golden mode to a completed run's numbers: no-op in
    /// [`GoldenMode::Run`], write the file under `results/golden/` in
    /// [`GoldenMode::Write`], diff against the committed file in
    /// [`GoldenMode::Check`].
    ///
    /// In check mode a difference (or a missing golden file) prints a
    /// per-cell diff table to stderr and exits the process with status
    /// 1.
    pub fn finish_golden(&self, fresh: &GoldenFile) {
        // Committed goldens are cycle-accurate truth by definition;
        // refuse to bless or check them from an approximate backend.
        // An explicit --golden-dir (e.g. the serve executor's scratch
        // directory) is fine — that is result collection, not truth.
        if !self.fidelity.is_cycle() && self.golden_dir.is_none() && self.golden != GoldenMode::Run
        {
            eprintln!(
                "refusing --{}-golden under --fidelity {}: committed goldens are \
                 cycle-accurate only (pass an explicit --golden-dir to collect \
                 analytic results elsewhere)",
                if self.golden == GoldenMode::Write {
                    "write"
                } else {
                    "check"
                },
                self.fidelity
            );
            std::process::exit(1);
        }
        let dir = self
            .golden_dir
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from(golden::GOLDEN_DIR));
        match self.golden {
            GoldenMode::Run => {}
            GoldenMode::Write => {
                let path = golden::write_in(&dir, fresh).expect("write golden file");
                eprintln!("blessed {path}");
            }
            GoldenMode::Check => match golden::check_in(&dir, fresh) {
                Ok(cells) => eprintln!(
                    "golden check ok: {} cells match {}",
                    cells,
                    fresh.file_name()
                ),
                Err(report) => {
                    eprintln!("{report}");
                    std::process::exit(1);
                }
            },
        }
    }
}
