//! Minimal argument parsing shared by the harness binaries (no
//! external CLI dependency needed for `--scale/--cols/--rows`).

use mosaic_sim::MachineConfig;
use mosaic_workloads::Scale;

/// Common harness options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Input scale preset.
    pub scale: Scale,
    /// Mesh columns.
    pub cols: u16,
    /// Mesh core rows.
    pub rows: u16,
}

impl Options {
    /// Parse from `std::env::args`, with the given defaults.
    ///
    /// Recognized flags: `--scale tiny|small|full`, `--cols N`,
    /// `--rows N`, `--paper` (16x8 like the paper), `--help`.
    ///
    /// # Panics
    ///
    /// Panics (with usage output) on malformed arguments.
    pub fn parse(default_scale: Scale, default_cols: u16, default_rows: u16) -> Options {
        let mut opts = Options {
            scale: default_scale,
            cols: default_cols,
            rows: default_rows,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = match v.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "full" => Scale::Full,
                        other => panic!("unknown scale {other:?} (tiny|small|full)"),
                    };
                }
                "--cols" => {
                    opts.cols = args
                        .next()
                        .expect("--cols needs a value")
                        .parse()
                        .expect("--cols must be an integer");
                }
                "--rows" => {
                    opts.rows = args
                        .next()
                        .expect("--rows needs a value")
                        .parse()
                        .expect("--rows must be an integer");
                }
                "--paper" => {
                    opts.cols = 16;
                    opts.rows = 8;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale tiny|small|full   input sizes\n         \
                         --cols N --rows N          mesh dimensions\n         \
                         --paper                    16x8 = 128 cores (paper machine)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option {other:?} (try --help)"),
            }
        }
        opts
    }

    /// The machine these options describe.
    pub fn machine(&self) -> MachineConfig {
        MachineConfig::small(self.cols, self.rows)
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cols as usize * self.rows as usize
    }
}
