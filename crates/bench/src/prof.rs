//! Profile export: serialize a [`MachineProfile`] as canonical JSON
//! (stable key order, one array per line, trailing newline — the same
//! conventions as the golden files) and write per-run profile files
//! under `--prof-out DIR`.
//!
//! The JSON layout is documented in `docs/observability.md`; the
//! parser side is exercised by `tests/prof.rs` through the workspace
//! [`jsonlite`] codec.

use jsonlite::escape;
use mosaic_sim::{Bucket, MachineProfile};
use std::fmt::Write as _;
use std::path::Path;

/// Render one `u64` slice as a compact JSON array.
fn json_array(values: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

/// Serialize `p` to the canonical profile JSON form. `run` names the
/// run (experiment + config label) and becomes the `"run"` field.
pub fn profile_to_json(run: &str, p: &MachineProfile) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"run\": {},", escape(run));
    let _ = writeln!(
        s,
        "  \"machine\": {{\"cols\": {}, \"rows\": {}}},",
        p.cols, p.rows
    );
    let _ = writeln!(s, "  \"elapsed\": {},", json_array(&p.elapsed));
    s.push_str("  \"buckets\": {\n");
    for b in Bucket::ALL {
        let per_core: Vec<u64> = p.buckets.iter().map(|row| row[b.index()]).collect();
        let _ = write!(s, "    {}: {}", escape(b.name()), json_array(&per_core));
        s.push_str(if b.index() + 1 < mosaic_sim::BUCKET_COUNT {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  },\n");
    let _ = writeln!(
        s,
        "  \"llc_bank_accesses\": {},",
        json_array(&p.llc_bank_accesses)
    );
    let _ = writeln!(s, "  \"spm_served\": {},", json_array(&p.spm_served));
    let _ = writeln!(
        s,
        "  \"core_inbound_flits\": {},",
        json_array(&p.core_inbound_flits)
    );
    let _ = writeln!(
        s,
        "  \"core_outbound_flits\": {},",
        json_array(&p.core_outbound_flits)
    );
    let _ = writeln!(s, "  \"total_link_flits\": {},", p.total_link_flits);
    let _ = writeln!(s, "  \"window_cycles\": {},", p.window_cycles);
    s.push_str("  \"windows\": [\n");
    for (i, w) in p.windows.iter().enumerate() {
        let _ = write!(s, "    {}", json_array(w));
        s.push_str(if i + 1 < p.windows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write `p` as `{run}.json` under `dir` (created if missing); returns
/// the path written.
pub fn write_profile(dir: &Path, run: &str, p: &MachineProfile) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{run}.json"));
    std::fs::write(&path, profile_to_json(run, p))?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sim::BUCKET_COUNT;

    fn sample() -> MachineProfile {
        let mut buckets = vec![[0u64; BUCKET_COUNT]; 2];
        buckets[0][Bucket::Compute.index()] = 75;
        buckets[0][Bucket::Idle.index()] = 25;
        buckets[1][Bucket::StealSearch.index()] = 100;
        MachineProfile {
            cols: 2,
            rows: 1,
            buckets,
            elapsed: vec![100, 100],
            llc_bank_accesses: vec![5, 7],
            spm_served: vec![0, 3],
            core_inbound_flits: vec![11, 2],
            core_outbound_flits: vec![4, 9],
            total_link_flits: 13,
            window_cycles: 1024,
            windows: vec![[1; BUCKET_COUNT], [2; BUCKET_COUNT]],
        }
    }

    #[test]
    fn profile_json_parses_and_keeps_every_bucket() {
        let json = profile_to_json("profile/dup-off", &sample());
        let parsed = jsonlite::Json::parse(&json).expect("valid JSON");
        let obj = parsed.as_object("profile").unwrap();
        assert_eq!(
            obj.get("run", "profile").unwrap().as_string().unwrap(),
            "profile/dup-off"
        );
        let buckets = obj
            .get("buckets", "profile")
            .and_then(|b| b.as_object("buckets"))
            .unwrap();
        for b in Bucket::ALL {
            let row = buckets
                .get(b.name(), "buckets")
                .and_then(|r| r.as_array(b.name()))
                .unwrap();
            assert_eq!(row.len(), 2, "per-core row for {}", b.name());
        }
        assert_eq!(
            obj.get("total_link_flits", "profile")
                .unwrap()
                .as_u64()
                .unwrap(),
            13
        );
        assert_eq!(
            obj.get("windows", "profile")
                .and_then(|w| w.as_array("windows"))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn write_profile_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("prof-test-{}", std::process::id()));
        let path = write_profile(&dir, "unit", &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(jsonlite::Json::parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
