//! The real [`Fanout`] for the fleet gateway: split Table-1-shaped
//! sweeps into one subjob per workload, merge the per-workload golden
//! payloads back byte-identically.
//!
//! Why this is sound: the sweep harnesses lay golden cells out
//! *workload-major* ([`GoldenFile::push_sweep`] walks rows in
//! `table1_benchmarks` order, each row's configs in sweep order), and a
//! `--workload NAME` run emits exactly that workload's row slice. So a
//! merge that keeps the first part's header and concatenates the
//! parts' cells in canonical table order reproduces the unfiltered
//! run's [`GoldenFile::to_json`] bytes exactly — which is what lets
//! `reproduce_all --via-fleet --check-golden` gate a multi-node run
//! against the same committed goldens as a laptop run.

use crate::golden::GoldenFile;
use crate::service::SWEEP_EXPERIMENTS;
use mosaic_serve::{Fanout, JobSpec, SubJob};
use mosaic_workloads::Scale;

/// Gateway fanout for the Table-1 sweep experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepFanout;

/// The canonical per-workload split order: benchmark display names in
/// `table1_benchmarks` order (deduplicated defensively — a duplicate
/// name would double its cells in the merge).
fn workload_names(scale: Scale) -> Vec<String> {
    let mut names = Vec::new();
    for b in mosaic_workloads::table1_benchmarks(scale) {
        let name = b.name();
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names
}

impl Fanout for SweepFanout {
    fn split(&self, spec: &JobSpec) -> Option<Vec<SubJob>> {
        if !SWEEP_EXPERIMENTS.contains(&spec.experiment.as_str()) {
            return None;
        }
        if !spec.workload.is_empty() || !spec.config.is_empty() || spec.seed != 0 {
            // Already filtered (or carrying knobs we don't split on):
            // forward whole and let the worker validate.
            return None;
        }
        let scale = match spec.scale.as_str() {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "full" => Scale::Full,
            // Unknown scale: forward whole so the worker's validation
            // error (not a split panic) reaches the client.
            _ => return None,
        };
        let subs: Vec<SubJob> = workload_names(scale)
            .into_iter()
            .map(|name| {
                let mut sub = spec.clone();
                sub.workload = name.clone();
                SubJob {
                    label: name,
                    spec: sub,
                }
            })
            .collect();
        // A single-workload table would make fan-out pure overhead.
        (subs.len() > 1).then_some(subs)
    }

    fn merge(&self, spec: &JobSpec, parts: &[(String, String)]) -> Result<String, String> {
        let mut merged: Option<GoldenFile> = None;
        for (label, payload) in parts {
            let part = GoldenFile::parse(payload)
                .map_err(|e| format!("subjob {label}: malformed golden payload: {e}"))?;
            match &mut merged {
                None => merged = Some(part),
                Some(m) => {
                    if (
                        part.experiment.as_str(),
                        part.scale.as_str(),
                        part.cols,
                        part.rows,
                    ) != (m.experiment.as_str(), m.scale.as_str(), m.cols, m.rows)
                    {
                        return Err(format!(
                            "subjob {label}: golden identity {}/{}/{}x{} does not match \
                             the sweep's {}/{}/{}x{}",
                            part.experiment,
                            part.scale,
                            part.cols,
                            part.rows,
                            m.experiment,
                            m.scale,
                            m.cols,
                            m.rows
                        ));
                    }
                    m.cells.extend(part.cells);
                    m.counters.extend(part.counters);
                }
            }
        }
        merged
            .map(|m| m.to_json())
            .ok_or_else(|| format!("sweep {} produced no parts to merge", spec.experiment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_sweeps_per_workload_and_nothing_else() {
        let f = SweepFanout;
        let sweep = JobSpec::new("table1", "tiny");
        let subs = f.split(&sweep).expect("table1 must fan out");
        assert!(subs.len() > 1);
        for s in &subs {
            assert_eq!(s.spec.workload, s.label);
            assert_eq!(s.spec.experiment, "table1");
            assert_eq!(s.spec.scale, "tiny");
        }
        // Labels are unique and in canonical (table) order.
        let names = workload_names(Scale::Tiny);
        let labels: Vec<&str> = subs.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, names.iter().map(String::as_str).collect::<Vec<_>>());

        assert!(f.split(&JobSpec::new("trace_run", "tiny")).is_none());
        let mut filtered = sweep.clone();
        filtered.workload = names[0].clone();
        assert!(
            f.split(&filtered).is_none(),
            "an already-filtered sweep must forward whole"
        );
        let mut bad_scale = sweep.clone();
        bad_scale.scale = "huge".into();
        assert!(f.split(&bad_scale).is_none());
    }

    #[test]
    fn merge_reproduces_the_workload_major_layout_byte_for_byte() {
        // Synthesize the "single-node" golden and its per-workload
        // slices; merging the slices must reproduce the whole file's
        // bytes exactly.
        let mut whole = GoldenFile::new("table1", "tiny", 8, 4);
        let mut parts: Vec<(String, String)> = Vec::new();
        for (w, base) in [("MatMul-48", 100u64), ("PR-email", 2000), ("UTS-t1", 30)] {
            let mut slice = GoldenFile::new("table1", "tiny", 8, 4);
            for (c, cfg) in [("static/spm-stack", 0u64), ("ws/spm-stack/spm-q", 7)] {
                whole.push(w, c, base + cfg, base * 2 + cfg, true);
                slice.push(w, c, base + cfg, base * 2 + cfg, true);
            }
            parts.push((w.to_string(), slice.to_json()));
        }
        let merged = SweepFanout
            .merge(&JobSpec::new("table1", "tiny"), &parts)
            .unwrap();
        assert_eq!(merged, whole.to_json());
    }

    #[test]
    fn merge_rejects_mismatched_identities_and_garbage() {
        let f = SweepFanout;
        let spec = JobSpec::new("table1", "tiny");
        assert!(f.merge(&spec, &[]).is_err());
        assert!(f.merge(&spec, &[("w".into(), "not json".into())]).is_err());
        let a = GoldenFile::new("table1", "tiny", 8, 4);
        let b = GoldenFile::new("table1", "small", 8, 4);
        let err = f
            .merge(
                &spec,
                &[("a".into(), a.to_json()), ("b".into(), b.to_json())],
            )
            .unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }
}
