//! Simulated execution time of each Table-1 workload (Tiny inputs,
//! 8 cores) under the best work-stealing configuration. Criterion's
//! time axis is SIMULATED nanoseconds (1 cycle == 1 ns).

use criterion::{criterion_group, criterion_main, Criterion};
use mosaic_runtime::RuntimeConfig;
use mosaic_sim::MachineConfig;
use mosaic_workloads::{table1_benchmarks, Scale};
use std::time::Duration;

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads_sim");
    g.sample_size(10);
    for bench in table1_benchmarks(Scale::Tiny) {
        g.bench_function(bench.name(), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let out = bench.run(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
                    assert!(out.verified);
                    total += Duration::from_nanos(out.report.cycles);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic, so samples can be identical;
    // criterion's plotters backend cannot draw zero-variance data.
    config = Criterion::default().without_plots();
    targets = bench_workloads
}
criterion_main!(benches);
