//! Simulated-cycle costs of the runtime's primitive operations,
//! reported through Criterion by mapping cycles to nanoseconds at the
//! modeled 1 GHz-class clock (1 cycle == 1 ns here): the numbers shown
//! are SIMULATED time, not host time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_runtime::{Mosaic, Placement, RuntimeConfig};
use mosaic_sim::MachineConfig;
use std::time::Duration;

/// Run a closure-per-run simulation and report simulated cycles.
fn sim_cycles(cfg: RuntimeConfig, tasks: u32) -> u64 {
    let sys = Mosaic::new(MachineConfig::small(4, 2), cfg);
    let report = sys.run(move |ctx| {
        for _ in 0..tasks {
            ctx.spawn(|ctx| ctx.compute(8, 8));
        }
        ctx.wait();
    });
    report.cycles
}

fn bench_spawn_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("spawn_join_100_tasks_sim");
    g.sample_size(10);
    for (name, cfg) in [
        ("queue_spm", RuntimeConfig::work_stealing()),
        (
            "queue_dram",
            RuntimeConfig {
                queue: Placement::Dram,
                ..RuntimeConfig::work_stealing()
            },
        ),
        ("all_dram", RuntimeConfig::work_stealing_naive()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += Duration::from_nanos(sim_cycles(cfg.clone(), 100));
                }
                total
            });
        });
    }
    g.finish();
}

fn bench_parallel_for_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_for_1k_iters_sim");
    g.sample_size(10);
    for grain in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::new("grain", grain), &grain, |b, &grain| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let sys =
                        Mosaic::new(MachineConfig::small(4, 2), RuntimeConfig::work_stealing());
                    let report = sys.run(move |ctx| {
                        ctx.parallel_for(0, 1024, grain, 2, |ctx, _i| ctx.compute(4, 4));
                    });
                    total += Duration::from_nanos(report.cycles);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic, so samples can be identical;
    // criterion's plotters backend cannot draw zero-variance data.
    config = Criterion::default().without_plots();
    targets = bench_spawn_join, bench_parallel_for_dispatch
}
criterion_main!(benches);
