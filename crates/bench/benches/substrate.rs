//! Host-time microbenchmarks of the simulator substrate itself: how
//! fast the models run on the host (useful when sizing experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_mem::{AddrMap, DramModel, Llc};
use mosaic_mesh::{Mesh, MeshConfig};
use mosaic_sim::{Engine, Machine, MachineConfig};
use std::hint::black_box;

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    for ruche in [0u16, 3] {
        g.bench_with_input(BenchmarkId::new("traverse", ruche), &ruche, |b, &r| {
            let mut mesh = Mesh::new(MeshConfig::new(16, 8, r));
            let src = mesh.config().core_node(0);
            let dst = mesh.config().core_node(127);
            let mut t = 0u64;
            b.iter(|| {
                t = mesh.traverse(black_box(src), black_box(dst), t, 1);
                t
            });
        });
    }
    g.finish();
}

fn bench_mem(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.bench_function("llc_access_hit", |b| {
        let mut llc = Llc::default();
        let mut dram = DramModel::default();
        llc.access(0, 0, false, &mut dram); // warm the line
        let mut t = 100u64;
        b.iter(|| {
            let a = llc.access(black_box(0), t, false, &mut dram);
            t = a.done;
            a.hit
        });
    });
    g.bench_function("dram_access", |b| {
        let mut dram = DramModel::default();
        let mut t = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 4096) % (1 << 20);
            t = dram.access(black_box(addr), t, false);
            t
        });
    });
    g.bench_function("addr_decode", |b| {
        let map = AddrMap::new(128, 4096);
        let a = map.spm_addr(77, 128);
        b.iter(|| map.decode(black_box(a)));
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    // End-to-end engine throughput: a 8-core machine doing 1000
    // loads/core (~8k simulated events per run).
    c.bench_function("engine_8core_8k_events", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::small(4, 2));
            let data = machine.dram_alloc_words(1024);
            let report = Engine::run(machine, move |core| {
                Box::new(move |api| {
                    for i in 0..1000u64 {
                        api.load(data.offset_words((i * 7 + core as u64) % 1024));
                    }
                })
            });
            report.cycles
        });
    });
}

criterion_group! {
    name = benches;
    // The simulator is deterministic, so samples can be identical;
    // criterion's plotters backend cannot draw zero-variance data.
    config = Criterion::default().without_plots();
    targets = bench_mesh, bench_mem, bench_engine
}
criterion_main!(benches);
