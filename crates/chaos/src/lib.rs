#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # mosaic-chaos
//!
//! Deterministic, seeded fault injection for the Mosaic stack.
//!
//! The paper's core claim is that a work-stealing runtime stays
//! *correct* when timing is unpredictable: steals, SPM overflows, and
//! NoC hot spots are all timing-dependent code paths. A [`FaultPlan`]
//! makes that property testable by scheduling three fault families:
//!
//! - **timing faults** — NoC link stall windows, LLC-bank / DRAM
//!   latency spikes, and per-core freeze (pipeline hiccup) windows.
//!   These perturb *when* things happen, never *what* is computed: any
//!   timing-only plan must leave workload payloads bit-identical to
//!   the fault-free run while cycle counts differ.
//! - **data faults** — single-bit flips in SPM or DRAM words. These
//!   corrupt state and must be *detected*: the [`DivergenceChecker`]
//!   reruns the workload fault-free and diffs the payloads, so a flip
//!   is never silently absorbed into a "passing" run.
//! - **host faults** — executor panics and artificial slowness
//!   injected into the serve stack ([`HostFaultPlan`]), exercising
//!   panic isolation, timeouts, and retry-with-backoff policies.
//!
//! Everything is derived from one seed with a splitmix64 generator, so
//! a plan is fully described by its canonical [spec
//! string](FaultPlan::to_spec) (what `--faults` accepts) and can be
//! digested into a job's cache key: same plan ⇒ byte-identical
//! simulation, same as every other simulation input.

pub mod divergence;
pub mod host;
pub mod plan;
pub mod rng;
pub mod schedule;

pub use divergence::{payload_digest, DivergenceChecker, DivergenceReport, RunDigest};
pub use host::HostFaultPlan;
pub use plan::{BitFlip, FaultBurst, FaultPlan, FlipTarget, SpikeBurst};
pub use rng::SplitMix64;
pub use schedule::{FaultGeometry, FaultSchedule, ScheduledFlip, SpikeWindow, Window};

/// One cycle of simulated time (same unit as `mosaic-sim`).
pub type Cycle = u64;
