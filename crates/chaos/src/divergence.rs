//! Divergence detection for data faults.
//!
//! Timing faults must be invisible in outputs; data faults must be
//! *visible*. The [`DivergenceChecker`] enforces the second half of
//! that contract: it runs a workload once under a fault plan and once
//! fault-free, digests both payloads, and reports any mismatch. A bit
//! flip that lands in a payload word therefore always produces a loud
//! [`DivergenceReport`] — it is never silently absorbed into a
//! "passing" run.

use crate::plan::FaultPlan;

/// FNV-1a 64-bit over a byte slice — the same digest family the serve
/// stack uses for job cache keys, reimplemented here so `mosaic-chaos`
/// stays dependency-free.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest a payload of 32-bit words (little-endian byte order, so the
/// digest is platform-stable).
pub fn payload_digest(words: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// What one run of a workload produced, reduced to the facts the
/// checker compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest {
    /// Digest of the workload's output payload ([`payload_digest`]).
    pub payload: u64,
    /// Cycles the simulation took (reported, never compared — timing
    /// faults are expected to change it).
    pub cycles: u64,
    /// Whether the workload's own self-check passed.
    pub verified: bool,
}

/// The outcome of a divergence check: the two digests plus the plan's
/// spec string for the report text.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Canonical spec of the plan that was injected.
    pub plan: String,
    /// Digest of the faulted run.
    pub faulted: RunDigest,
    /// Digest of the fault-free rerun.
    pub clean: RunDigest,
}

impl DivergenceReport {
    /// Whether the faulted run's *results* differ from clean: payload
    /// mismatch or self-check failure. Cycle deltas alone are not
    /// divergence.
    pub fn diverged(&self) -> bool {
        self.faulted.payload != self.clean.payload || self.faulted.verified != self.clean.verified
    }
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "divergence check for plan [{}]", self.plan)?;
        writeln!(
            f,
            "  faulted: payload {:016x} verified {} cycles {}",
            self.faulted.payload, self.faulted.verified, self.faulted.cycles
        )?;
        writeln!(
            f,
            "  clean:   payload {:016x} verified {} cycles {}",
            self.clean.payload, self.clean.verified, self.clean.cycles
        )?;
        if self.diverged() {
            write!(f, "  verdict: DIVERGED (data fault visible in results)")
        } else {
            write!(
                f,
                "  verdict: identical results (cycle delta {:+})",
                self.faulted.cycles as i128 - self.clean.cycles as i128
            )
        }
    }
}

/// Runs a workload with and without a fault plan and diffs the
/// results. The runner closure owns all simulator knowledge; the
/// checker only sequences the two runs and compares digests.
pub struct DivergenceChecker;

impl DivergenceChecker {
    /// Run `run` twice — first with `Some(plan)`, then fault-free with
    /// `None` — and report. The faulted run goes first so a plan that
    /// hangs or panics fails before the (known-good) baseline spends
    /// time.
    pub fn check<F>(plan: &FaultPlan, mut run: F) -> DivergenceReport
    where
        F: FnMut(Option<&FaultPlan>) -> RunDigest,
    {
        let faulted = run(Some(plan));
        let clean = run(None);
        DivergenceReport {
            plan: plan.to_spec(),
            faulted,
            clean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_digest_is_order_and_value_sensitive() {
        assert_eq!(payload_digest(&[1, 2, 3]), payload_digest(&[1, 2, 3]));
        assert_ne!(payload_digest(&[1, 2, 3]), payload_digest(&[3, 2, 1]));
        assert_ne!(payload_digest(&[1, 2, 3]), payload_digest(&[1, 2]));
    }

    #[test]
    fn identical_runs_do_not_diverge() {
        let plan = FaultPlan::timing(3);
        let report = DivergenceChecker::check(&plan, |_| RunDigest {
            payload: 42,
            cycles: 1000,
            verified: true,
        });
        assert!(!report.diverged());
        assert!(report.to_string().contains("identical results"));
    }

    #[test]
    fn payload_mismatch_diverges() {
        let plan = FaultPlan::parse("flip=dram:0:0@end").unwrap();
        let report = DivergenceChecker::check(&plan, |faults| RunDigest {
            payload: if faults.is_some() { 41 } else { 42 },
            cycles: 1000,
            verified: true,
        });
        assert!(report.diverged());
        assert!(report.to_string().contains("DIVERGED"));
    }

    #[test]
    fn verification_mismatch_diverges_even_with_equal_payloads() {
        let plan = FaultPlan::parse("flip=spm:0:0:0@end").unwrap();
        let report = DivergenceChecker::check(&plan, |faults| RunDigest {
            payload: 42,
            cycles: 1000,
            verified: faults.is_none(),
        });
        assert!(report.diverged());
    }

    #[test]
    fn cycle_deltas_alone_are_not_divergence() {
        let plan = FaultPlan::timing(5);
        let report = DivergenceChecker::check(&plan, |faults| RunDigest {
            payload: 42,
            cycles: if faults.is_some() { 1200 } else { 1000 },
            verified: true,
        });
        assert!(!report.diverged());
        assert!(report.to_string().contains("+200"));
    }
}
